// PROPHET delay-tolerant relay (paper §4.3, second real application): a
// five-node "campus courier" scenario with real mobility.
//
// A student (node S) wants to send a 4 KB note to a lab machine (L) on the
// other side of campus, far out of radio range. Couriers walk predictable
// routes; PROPHET's delivery predictabilities learn who actually meets whom
// and route the message through the best carrier — all context/summary
// exchange rides Omni's lightweight beacons, the note itself moves as
// heavyweight data.
//
//   $ ./examples/dtn_relay
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "apps/prophet.h"
#include "baselines/omni_stack.h"
#include "net/testbed.h"
#include "omni/omni_node.h"

using namespace omni;

int main() {
  net::Testbed bed(/*seed=*/21);
  auto& sim = bed.simulator();

  struct Node {
    std::string name;
    net::Device* device = nullptr;
    std::unique_ptr<OmniNode> omni;
    std::unique_ptr<baselines::OmniStack> stack;
    std::unique_ptr<apps::ProphetNode> prophet;
  };

  // S at the dorm, L at the lab 600 m away; three couriers.
  std::vector<std::pair<std::string, sim::Vec2>> layout = {
      {"student", {0, 0}},
      {"courier-1", {10, 5}},
      {"courier-2", {10, -5}},
      {"courier-3", {300, 0}},
      {"lab", {600, 0}},
  };
  std::vector<Node> nodes(layout.size());
  for (std::size_t i = 0; i < layout.size(); ++i) {
    nodes[i].name = layout[i].first;
    nodes[i].device = &bed.add_device(layout[i].first, layout[i].second);
    nodes[i].omni = std::make_unique<OmniNode>(*nodes[i].device, bed.mesh());
    nodes[i].stack = std::make_unique<baselines::OmniStack>(*nodes[i].omni);
    nodes[i].prophet =
        std::make_unique<apps::ProphetNode>(*nodes[i].stack, sim);
  }

  auto id_of = [&](const std::string& name) -> baselines::D2dStack::PeerId {
    for (auto& n : nodes) {
      if (n.name == name) return n.stack->self();
    }
    return 0;
  };

  TimePoint delivered_time = TimePoint::max();
  nodes[4].prophet->set_delivered_handler(
      [&](std::uint32_t id, baselines::D2dStack::PeerId) {
        delivered_time = sim.now();
        std::printf("[%6.1fs] lab: note %u delivered!\n",
                    sim.now().as_seconds(), id);
      });

  for (auto& n : nodes) n.prophet->start();

  // Courier history: courier-1 regularly visits the lab's side of campus
  // (strong predictability); courier-2 never leaves the dorm area.
  nodes[1].prophet->seed_predictability(id_of("lab"), 0.6);
  nodes[3].prophet->seed_predictability(id_of("lab"), 0.8);

  // t=3s: the student drops the note into the DTN.
  TimePoint originated;
  sim.after(Duration::seconds(3), [&] {
    originated = sim.now();
    std::printf("[%6.1fs] student: originating 4KB note to the lab\n",
                sim.now().as_seconds());
    nodes[0].prophet->originate(id_of("lab"), 4000);
  });

  // Courier walks: courier-1 heads toward courier-3's corner at t=10s
  // (1.5 m/s), then courier-3 walks to the lab at t=120s.
  sim.after(Duration::seconds(10), [&] {
    std::printf("[%6.1fs] courier-1 starts walking across campus\n",
                sim.now().as_seconds());
    bed.world().move_to(nodes[1].device->node(), {305, 5}, 1.5);
  });
  sim.after(Duration::seconds(230), [&] {
    std::printf("[%6.1fs] courier-3 heads to the lab\n",
                sim.now().as_seconds());
    bed.world().move_to(nodes[3].device->node(), {595, 0}, 1.5);
  });

  sim.run_for(Duration::seconds(600));

  std::printf("\n=== courier report ===\n");
  for (auto& n : nodes) {
    std::printf("%-10s buffered=%zu delivered_here=%zu  P(lab)=%.2f\n",
                n.name.c_str(), n.prophet->buffered_messages(),
                n.prophet->delivered_count(),
                n.prophet->predictability(id_of("lab")));
  }
  if (delivered_time != TimePoint::max()) {
    std::printf("\nend-to-end DTN latency: %.1fs (radio range is ~%d m; the "
                "campus is 600 m)\n",
                (delivered_time - originated).as_seconds(), 100);
  } else {
    std::printf("\nnote not delivered within the simulation window\n");
  }
  return 0;
}
