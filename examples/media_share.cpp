// Disseminate-style co-located media sharing (paper §4.3, first real
// application), runnable over Omni or either baseline:
//
//   $ ./examples/media_share            # Omni (default)
//   $ ./examples/media_share sp         # State of the Practice (multicast)
//   $ ./examples/media_share sa         # State of the Art (multi-radio)
//   $ ./examples/media_share omni 1000  # Omni at 1000 KBps infra rate
//
// Four friends at a cafe each download part of a photo album from a slow
// infrastructure link and swap the rest device-to-device.
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "apps/disseminate.h"
#include "baselines/directory.h"
#include "baselines/omni_stack.h"
#include "baselines/sa_node.h"
#include "baselines/sp_wifi_node.h"
#include "net/infra.h"
#include "net/testbed.h"
#include "omni/omni_node.h"

using namespace omni;

int main(int argc, char** argv) {
  std::string mode = argc > 1 ? argv[1] : "omni";
  double rate_kbps = argc > 2 ? std::atof(argv[2]) : 100.0;

  net::Testbed bed(/*seed=*/5);
  net::InfraNetwork infra(bed.simulator(), bed.calibration());
  baselines::Directory directory;

  apps::DisseminateConfig config;
  config.file_bytes = 12'000'000;  // a 12 MB photo album
  config.chunk_bytes = 250'000;
  config.infra_rate_Bps = rate_kbps * 1000;
  config.share_via_broadcast = mode == "sp";

  const int kFriends = 4;
  std::vector<net::Device*> devices;
  std::vector<std::unique_ptr<OmniNode>> omni_nodes;
  std::vector<std::unique_ptr<baselines::D2dStack>> stacks;
  for (int i = 0; i < kFriends; ++i) {
    devices.push_back(
        &bed.add_device("friend-" + std::to_string(i), {i * 3.0, 0}));
    if (mode == "sp") {
      stacks.push_back(
          std::make_unique<baselines::SpWifiNode>(*devices[i], bed.mesh()));
    } else if (mode == "sa") {
      stacks.push_back(std::make_unique<baselines::SaNode>(
          *devices[i], bed.mesh(), directory));
    } else {
      omni_nodes.push_back(std::make_unique<OmniNode>(*devices[i],
                                                      bed.mesh()));
      stacks.push_back(
          std::make_unique<baselines::OmniStack>(*omni_nodes.back()));
    }
  }

  std::uint64_t chunks =
      (config.file_bytes + config.chunk_bytes - 1) / config.chunk_bytes;
  std::uint64_t per = chunks / kFriends;
  std::vector<std::unique_ptr<apps::DisseminateApp>> apps;
  for (int i = 0; i < kFriends; ++i) {
    std::uint64_t first = i * per;
    std::uint64_t count = i == kFriends - 1 ? chunks - first : per;
    apps.push_back(std::make_unique<apps::DisseminateApp>(
        *stacks[i], infra, devices[i]->wifi(), bed.simulator(), config,
        first, count));
    apps.back()->start();
  }

  std::printf("sharing a %.0f MB album among %d friends over %s "
              "(infra %.0f KBps)...\n",
              config.file_bytes / 1e6, kFriends, stacks[0]->name(),
              rate_kbps);

  bed.simulator().run_for(Duration::seconds(600));

  double direct_s =
      static_cast<double>(config.file_bytes) / config.infra_rate_Bps;
  std::printf("\n%-12s %10s %8s %8s %8s %10s\n", "device", "done(s)", "infra",
              "d2d", "dup", "avg mA");
  for (int i = 0; i < kFriends; ++i) {
    const auto& app = *apps[i];
    std::printf("%-12s %10.1f %8llu %8llu %8llu %10.1f\n",
                ("friend-" + std::to_string(i)).c_str(),
                app.complete() ? app.completed_at().as_seconds() : -1.0,
                static_cast<unsigned long long>(app.chunks_from_infra()),
                static_cast<unsigned long long>(app.chunks_from_d2d()),
                static_cast<unsigned long long>(app.duplicate_chunks()),
                devices[i]->meter().average_ma(
                    TimePoint::origin(),
                    app.complete() ? app.completed_at()
                                   : bed.simulator().now()));
  }
  std::printf("\n(direct download alone would take %.0fs per device)\n",
              direct_s);
  return 0;
}
