// The smart-city tourism scenario from paper §2.2 / §3 (Figure 3).
//
// A tour group walks through a digitally enhanced city:
//   * the tour guide's device streams audio metadata to the group;
//   * landmark beacons advertise interactive visualizations as context and
//     stream the visualization itself as heavyweight data over WiFi when a
//     tourist's interest context appears;
//   * tourists walk (mobility!), drifting in and out of landmark range.
//
// Everything below is written against the Omni Developer API only — no
// technology names appear in the application logic.
//
//   $ ./examples/tourist_tour
#include <cstdio>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "net/testbed.h"
#include "omni/omni_node.h"

using namespace omni;

namespace {

Bytes to_bytes(const std::string& s) { return Bytes(s.begin(), s.end()); }
std::string to_string_bytes(const Bytes& b) {
  return std::string(b.begin(), b.end());
}

struct Landmark {
  std::string name;
  net::Device* device = nullptr;
  std::unique_ptr<OmniNode> node;
  std::uint64_t visualization_bytes = 0;
  std::map<OmniAddress, bool> streamed_to;
};

struct Tourist {
  std::string name;
  net::Device* device = nullptr;
  std::unique_ptr<OmniNode> node;
  std::uint64_t media_received = 0;
  std::uint64_t audio_packets = 0;
};

}  // namespace

int main() {
  net::Testbed bed(/*seed=*/11);
  auto& sim = bed.simulator();

  // --- The cast: one guide, two landmarks 80 m apart, three tourists.
  auto& guide_dev = bed.add_device("guide", {0, 0});
  OmniNode guide(guide_dev, bed.mesh());

  std::vector<Landmark> landmarks(2);
  landmarks[0].name = "old-town-hall";
  landmarks[0].device = &bed.add_device(landmarks[0].name, {40, 10});
  landmarks[0].visualization_bytes = 2'000'000;  // 2 MB interactive render
  landmarks[1].name = "cathedral";
  landmarks[1].device = &bed.add_device(landmarks[1].name, {120, -5});
  landmarks[1].visualization_bytes = 3'500'000;

  std::vector<Tourist> tourists(3);
  for (int i = 0; i < 3; ++i) {
    tourists[i].name = "tourist-" + std::to_string(i + 1);
    tourists[i].device =
        &bed.add_device(tourists[i].name, {-5.0 + i * 3, 2.0 * i});
    tourists[i].node =
        std::make_unique<OmniNode>(*tourists[i].device, bed.mesh());
  }
  for (auto& lm : landmarks) {
    lm.node = std::make_unique<OmniNode>(*lm.device, bed.mesh());
  }

  // --- Landmark logic: advertise the visualization service as context;
  // when a tourist's interest context appears, stream the visualization.
  for (auto& lm : landmarks) {
    OmniManager& m = lm.node->manager();
    m.request_context([&lm, &sim](const OmniAddress& source,
                                  const Bytes& context) {
      if (to_string_bytes(context) != "interest:viz") return;
      if (lm.streamed_to[source]) return;  // already served this visitor
      lm.streamed_to[source] = true;
      std::printf("[%6.2fs] %s: streaming %.1f MB visualization to %s\n",
                  sim.now().as_seconds(), lm.name.c_str(),
                  static_cast<double>(lm.visualization_bytes) / 1e6,
                  source.to_string().c_str());
      Bytes viz(lm.visualization_bytes, 0x56);
      viz[0] = 'V';
      lm.node->manager().send_data({source}, std::move(viz), nullptr);
    });
    lm.node->start();
    ContextParams params;
    params.interval = Duration::millis(500);
    m.add_context(params, to_bytes("svc:" + lm.name), nullptr);
  }

  // --- Tourist logic: advertise interest; count media and audio arrivals.
  for (auto& t : tourists) {
    OmniManager& m = t.node->manager();
    m.request_data([&t, &sim](const OmniAddress&, const Bytes& data) {
      if (!data.empty() && data[0] == 'V') {
        t.media_received += data.size();
        std::printf("[%6.2fs] %s: received %.1f MB of visualization\n",
                    sim.now().as_seconds(), t.name.c_str(),
                    static_cast<double>(data.size()) / 1e6);
      } else {
        ++t.audio_packets;
      }
    });
    t.node->start();
    ContextParams params;
    params.interval = Duration::millis(500);
    m.add_context(params, to_bytes("interest:viz"), nullptr);
  }

  // --- Guide logic: periodically push a small "audio frame" to every
  // tourist currently in the peer table (heavier-weight streaming would use
  // larger data packs; this keeps the example output readable).
  guide.start();
  std::function<void()> stream_audio = [&] {
    Bytes frame(400, 0xA0);
    frame[0] = 'A';
    for (OmniAddress peer : guide.manager().peer_table().peers()) {
      guide.manager().send_data({peer}, frame, nullptr);
    }
    sim.after(Duration::seconds(1), stream_audio);
  };
  sim.after(Duration::seconds(2), stream_audio);

  // --- The tour: the group (guide + tourists) walks past both landmarks.
  auto walk_group = [&](sim::Vec2 target, double speed) {
    bed.world().move_to(guide_dev.node(), target, speed);
    for (int i = 0; i < 3; ++i) {
      sim::Vec2 offset{target.x - 5.0 + i * 3, target.y + 2.0 * i};
      bed.world().move_to(tourists[i].device->node(), offset, speed);
    }
  };
  sim.after(Duration::seconds(5), [&] { walk_group({45, 0}, 1.4); });
  sim.after(Duration::seconds(60), [&] { walk_group({125, 0}, 1.4); });

  sim.run_for(Duration::seconds(150));

  // --- Tour report.
  std::printf("\n=== tour report (t=%.0fs) ===\n", sim.now().as_seconds());
  for (const auto& t : tourists) {
    std::printf(
        "%s: %.1f MB visualizations, %llu audio frames, %.1f mA avg draw\n",
        t.name.c_str(), static_cast<double>(t.media_received) / 1e6,
        static_cast<unsigned long long>(t.audio_packets),
        t.device->meter().average_ma(TimePoint::origin(), sim.now()));
  }
  for (const auto& lm : landmarks) {
    std::size_t served = 0;
    for (const auto& [addr, ok] : lm.streamed_to) served += ok ? 1 : 0;
    std::printf("%s: served %zu visitor(s)\n", lm.name.c_str(), served);
  }
  return 0;
}
