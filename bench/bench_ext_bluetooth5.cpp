// Extension bench: Bluetooth 5 extended advertising (paper §5: "Larger
// beacons have the potential to enhance the richness of information in both
// service requests and advertisements, while still maintaining one of the
// key benefits of Omni").
//
// Measures (1) the context payload ceiling, (2) where a Disseminate-style
// holdings bitmap is forced off BLE onto WiFi multicast, and (3) the idle
// energy consequence of that forced migration.
#include <cstdio>
#include <memory>

#include "bench_util.h"
#include "net/testbed.h"
#include "omni/omni_node.h"

namespace omni {
namespace {

struct Sample {
  std::size_t max_context_payload = 0;  // app bytes over BLE
  std::size_t bitmap_limit_mb = 0;      // largest file whose bitmap fits BLE
  double rich_context_energy_ma = 0;    // 120-byte context, idle pair
  bool rich_context_on_ble = false;
};

Sample run(bool extended) {
  radio::Calibration cal = radio::Calibration::defaults();
  cal.ble_extended_advertising = extended;
  net::Testbed bed(321, cal);
  auto& da = bed.add_device("a", {0, 0});
  auto& db = bed.add_device("b", {10, 0});
  OmniNodeOptions options;
  options.wifi_multicast = true;  // fallback carrier for oversized context
  OmniNode a(da, bed.mesh(), options);
  OmniNode b(db, bed.mesh(), options);
  a.start();
  b.start();

  Sample s;
  // App payload ceiling on BLE: advertisement budget minus the broadcast
  // frame byte and the 9-byte packed header.
  std::size_t adv = extended ? cal.ble_extended_adv_payload
                             : cal.ble_legacy_adv_payload;
  s.max_context_payload = adv - 1 - 9;
  // Disseminate bitmap: 1 bit per 250 KB chunk.
  s.bitmap_limit_mb = s.max_context_payload * 8 * 250'000 / 1'000'000;

  // A "rich" 120-byte context (e.g. a service advert with a small schema):
  // fits extended advertising, overflows legacy.
  a.manager().add_context(ContextParams{}, Bytes(120, 0x5A), nullptr);
  bed.simulator().run_for(Duration::seconds(60));
  s.rich_context_on_ble = da.ble().active_advertisements() == 2;
  s.rich_context_energy_ma =
      da.meter().average_ma(TimePoint::origin() + Duration::seconds(10),
                            bed.simulator().now()) -
      cal.wifi_standby_ma;
  return s;
}

}  // namespace
}  // namespace omni

int main() {
  using namespace omni;
  bench::print_heading(
      "Extension: Bluetooth 5 extended advertising (paper SS5)\n"
      "2 devices; one shares a 120-byte 'rich' context pack");

  bench::Table table({"Metric", "Legacy (BT4)", "Extended (BT5)"});
  Sample legacy = run(false);
  Sample bt5 = run(true);
  table.add_row({"max BLE context payload (bytes)",
                 std::to_string(legacy.max_context_payload),
                 std::to_string(bt5.max_context_payload)});
  table.add_row({"largest 250KB-chunk bitmap on BLE (~MB of file)",
                 std::to_string(legacy.bitmap_limit_mb),
                 std::to_string(bt5.bitmap_limit_mb)});
  table.add_row({"120B context carried on BLE?",
                 legacy.rich_context_on_ble ? "yes" : "no (WiFi multicast)",
                 bt5.rich_context_on_ble ? "yes" : "no (WiFi multicast)"});
  table.add_row({"idle energy w/ rich context (mA rel.)",
                 bench::fmt(legacy.rich_context_energy_ma),
                 bench::fmt(bt5.rich_context_energy_ma)});
  table.print();

  std::printf(
      "\nUnder legacy advertising the rich context overflows BLE and the\n"
      "manager re-homes it to WiFi multicast — burning an order of\n"
      "magnitude more energy for the same periodic payload. Bluetooth 5\n"
      "keeps it on BLE, preserving Omni's low-energy context story for\n"
      "richer advertisements, exactly the paper's expectation.\n");
  return 0;
}
