// bench_chaos: resilience metrics for the fault-injection engine and the
// self-healing manager.
//
// Runs the chaos-soak world (a 12-node neighborhood under background
// loss/corruption/latency, WiFi and BLE flap windows, two crash+restart
// cycles, and a transient partition) once per thread count and reports:
//
//   * delivery_ratio          successful sends / sends issued
//   * mean_success_latency_ms mean issue-to-terminal latency of the sends
//                             that succeeded (failover cost shows up here)
//   * ops_leaked              entries left in the manager op tables at the
//                             end of the run (must be 0)
//   * beacon_downtime_s       per-node-summed virtual seconds the BLE
//                             address beacon was down, sampled at 250 ms
//   * digest                  FNV-1a over every deterministic observable;
//                             the bench exits 1 if any thread count
//                             disagrees with the single-threaded digest
//
// Writes BENCH_chaos.json (one row per thread count) so the resilience
// numbers feed the trajectory alongside BENCH_scale.json.
//
//   $ ./bench/bench_chaos            # threads 1, 2, 8
//   $ ./bench/bench_chaos 1 4        # explicit thread counts
//   $ ./bench/bench_chaos 1 --trace chaos.json
//       # additionally record a flight-recorder trace of the first run and
//       # export it as Perfetto JSON (fault windows as labelled spans);
//       # open at https://ui.perfetto.dev
//   $ ./bench/bench_chaos --checkpoint ckpts
//       # snapshot the full run state (sim + managers) every 10 virtual
//       # seconds into ckpts/t<N>/; on a digest mismatch the bench bisects
//       # the checkpoint pairs, names the first divergent 10 s window, and
//       # prints the omnisnap command line that reproduces the comparison
//   $ ./bench/bench_chaos 8 --replay ckpts/t1/ckpt_000020000000.osnap
//       # replay-anchored reproduction: re-run from t=0 with the same
//       # 10 s checkpoint cadence and byte-verify the replayed state
//       # against the file at its capture instant (combine with --trace
//       # for a flight recording of the reproduction)
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "net/testbed.h"
#include "obs/omniscope.h"
#include "obs/perfetto.h"
#include "obs/trace_file.h"
#include "omni/manager_snapshot.h"
#include "omni/omni_node.h"
#include "sim/snapshot.h"

namespace {

using namespace omni;

constexpr int kNodes = 12;
constexpr std::uint64_t kSeed = 20260805;
constexpr double kSimSeconds = 60.0;
constexpr double kBeaconSamplePeriodS = 0.25;
// Checkpoint cadence for --checkpoint / --replay. Checkpoint capture is
// itself an event, so a replay must re-arm the same cadence to land on the
// same capture instants; keep this in lockstep with any snapshot it replays.
constexpr double kCheckpointPeriodS = 10.0;

/// FNV-1a accumulator over 64-bit words.
struct Digest {
  std::uint64_t h = 0xcbf29ce484222325ull;
  void add(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xFF;
      h *= 0x00000100000001B3ull;
    }
  }
};

struct ChaosPoint {
  unsigned threads = 1;
  std::uint64_t digest = 0;
  std::uint64_t events = 0;
  double wall_seconds = 0;
  int ops = 0;
  int sends_ok = 0;
  int sends_failed = 0;
  double mean_success_latency_ms = 0;
  std::size_t ops_leaked = 0;
  double beacon_downtime_s = 0;
  std::uint64_t deadline_failovers = 0;
  std::uint64_t beacon_rearms = 0;
  std::uint64_t quarantines = 0;
  sim::FaultPlan::Stats fault_stats;
  std::vector<std::string> checkpoints;
  bool replay_armed = false;
  bool replay_ok = false;
  std::string replay_error;
};

ChaosPoint run_point(unsigned threads, const std::string& trace_path = "",
                     const std::string& ckpt_dir = "",
                     const std::string& replay_path = "") {
  net::Testbed bed(kSeed, radio::Calibration::defaults(), threads);
  if (!trace_path.empty()) bed.enable_observability(/*ring_capacity=*/1 << 20);
  std::vector<net::Device*> devices;
  std::vector<std::unique_ptr<OmniNode>> nodes;
  for (int i = 0; i < kNodes; ++i) {
    sim::Vec2 pos{15.0 * (i % 6), 20.0 * (i / 6)};
    devices.push_back(&bed.add_device("n" + std::to_string(i), pos));
    nodes.push_back(std::make_unique<OmniNode>(*devices.back(), bed.mesh()));
  }

  auto at = [](double s) {
    return TimePoint::origin() + Duration::seconds(s);
  };
  // Same composite schedule as tests/test_chaos_soak.cpp so the bench and
  // the CI gate measure the same world.
  auto& plan = bed.fault_plan();
  sim::FaultPlan::LinkFault noisy;
  noisy.loss = 0.15;
  noisy.corrupt = 0.01;
  noisy.extra_latency = Duration::millis(2);
  plan.add_link_fault(noisy);
  sim::FaultPlan::Blackout wifi_flap;
  wifi_flap.node = devices[2]->node();
  wifi_flap.radio = sim::FaultRadio::kWifi;
  wifi_flap.start = at(10);
  wifi_flap.end = at(30);
  wifi_flap.period = Duration::seconds(3);
  wifi_flap.off_fraction = 0.5;
  plan.add_blackout(wifi_flap);
  sim::FaultPlan::Blackout ble_flap;
  ble_flap.node = devices[5]->node();
  ble_flap.radio = sim::FaultRadio::kBle;
  ble_flap.start = at(15);
  ble_flap.end = at(35);
  ble_flap.period = Duration::seconds(4);
  ble_flap.off_fraction = 0.4;
  plan.add_blackout(ble_flap);
  sim::FaultPlan::Crash crash1;
  crash1.node = devices[3]->node();
  crash1.at = at(12);
  crash1.restart = at(20);
  plan.add_crash(crash1);
  sim::FaultPlan::Crash crash2;
  crash2.node = devices[8]->node();
  crash2.at = at(25);
  crash2.restart = at(33);
  plan.add_crash(crash2);
  sim::FaultPlan::Partition split;
  split.start = at(20);
  split.end = at(35);
  split.a = 1.0;
  split.b = 0.0;
  split.c = 40.0;
  plan.add_partition(split);
  bed.schedule_faults();

  // Checkpointing and replay share the same capture schedule: a replay only
  // verifies if it recomputes state at the instant the file was captured.
  if (!ckpt_dir.empty() || !replay_path.empty()) {
    bed.add_snapshot_source([&nodes](sim::Snapshot& snap) {
      std::vector<const OmniManager*> managers;
      managers.reserve(nodes.size());
      for (const auto& n : nodes) managers.push_back(&n->manager());
      capture_managers(managers, /*deep=*/true, snap);
    });
    bed.checkpoint_every(Duration::seconds(kCheckpointPeriodS),
                         ckpt_dir.empty() ? "chaos_replay_ckpts" : ckpt_dir);
  }
  if (!replay_path.empty()) {
    auto anchored = bed.resume_from(replay_path);
    if (!anchored.is_ok()) {
      ChaosPoint p;
      p.threads = threads;
      p.replay_armed = true;
      p.replay_error = anchored.error_message();
      return p;
    }
    std::printf("  replaying to t=%.0fs against %s\n",
                anchored.value().at.as_seconds(), replay_path.c_str());
  }

  for (auto& n : nodes) n->start();

  // Ring traffic, two staggered sends per node. Completion callbacks fire
  // on each sender's owner context (concurrently across shards), so each
  // op records into its own pre-sized slot and shared tallies are atomic.
  struct OpRecord {
    TimePoint issued;
    TimePoint completed;
    bool ok = false;
    bool done = false;
  };
  std::vector<OpRecord> records(static_cast<std::size_t>(kNodes) * 2);
  std::atomic<int> sends_ok{0};
  std::atomic<int> sends_failed{0};
  int ops = 0;
  auto& sim = bed.simulator();
  for (int i = 0; i < kNodes; ++i) {
    OmniManager& mgr = nodes[i]->manager();
    OmniAddress dest = nodes[(i + 1) % kNodes]->address();
    for (int round = 0; round < 2; ++round) {
      std::size_t slot = static_cast<std::size_t>(i) * 2 + round;
      double when = (round == 0 ? 8.0 : 28.0) + 1.5 * i;
      std::size_t bytes =
          round == 0 ? ((i % 3 == 0) ? 150'000 : 60 + i) : std::size_t{96};
      sim.at(at(when), [&records, &sim, &sends_ok, &sends_failed, &ops, slot,
                        bytes, dest, &mgr] {
        ++ops;
        records[slot].issued = sim.now();
        mgr.send_data({dest}, Bytes(bytes, 0xC4),
                      [&records, &sim, &sends_ok, &sends_failed,
                       slot](StatusCode code, const ResponseInfo&) {
                        OpRecord& rec = records[slot];
                        rec.completed = sim.now();
                        rec.ok = code == StatusCode::kSendDataSuccess;
                        rec.done = true;
                        if (rec.ok) {
                          sends_ok.fetch_add(1, std::memory_order_relaxed);
                        } else {
                          sends_failed.fetch_add(1, std::memory_order_relaxed);
                        }
                      });
      });
    }
  }

  // Beacon-downtime sampler: global-owner events are serialized against
  // every shard, so reading manager state from here is race-free.
  std::uint64_t beacon_down_samples = 0;
  const int total_samples =
      static_cast<int>(kSimSeconds / kBeaconSamplePeriodS);
  for (int s = 1; s <= total_samples; ++s) {
    sim.at(at(s * kBeaconSamplePeriodS), [&] {
      for (auto& n : nodes) {
        if (!n->manager().technology_beaconing(Technology::kBle)) {
          ++beacon_down_samples;
        }
      }
    });
  }

  auto t0 = std::chrono::steady_clock::now();
  sim.run_for(Duration::seconds(kSimSeconds));
  auto t1 = std::chrono::steady_clock::now();

  ChaosPoint p;
  p.threads = threads;
  p.events = sim.executed_events();
  p.wall_seconds = std::chrono::duration<double>(t1 - t0).count();
  p.ops = ops;
  p.sends_ok = sends_ok.load(std::memory_order_relaxed);
  p.sends_failed = sends_failed.load(std::memory_order_relaxed);
  double latency_sum_ms = 0;
  for (const OpRecord& rec : records) {
    if (rec.done && rec.ok) {
      latency_sum_ms += (rec.completed - rec.issued).as_millis();
    }
  }
  p.mean_success_latency_ms =
      p.sends_ok > 0 ? latency_sum_ms / p.sends_ok : 0;
  p.beacon_downtime_s =
      static_cast<double>(beacon_down_samples) * kBeaconSamplePeriodS;

  Digest d;
  d.add(p.events);
  d.add(sim.now().as_micros());
  for (auto& n : nodes) {
    const ManagerStats& s = n->manager().stats();
    p.ops_leaked += n->manager().pending_data_count() +
                    n->manager().data_attempt_count() +
                    n->manager().context_attempt_count();
    d.add(n->manager().peer_table().size());
    d.add(s.packets_received);
    d.add(s.beacons_received);
    d.add(s.data_received);
    d.add(s.data_sends);
    d.add(s.data_failovers);
    d.add(s.context_failovers);
    d.add(s.engagements);
    d.add(s.disengagements);
    d.add(s.deadline_failovers);
    d.add(s.beacon_rearms);
    d.add(s.quarantines);
    d.add(s.overload_rejections);
    p.deadline_failovers += s.deadline_failovers;
    p.beacon_rearms += s.beacon_rearms;
    p.quarantines += s.quarantines;
  }
  p.fault_stats = plan.stats();
  d.add(p.fault_stats.drops);
  d.add(p.fault_stats.corruptions);
  d.add(p.fault_stats.delays);
  d.add(p.fault_stats.partition_drops);
  d.add(static_cast<std::uint64_t>(p.sends_ok));
  d.add(static_cast<std::uint64_t>(p.sends_failed));
  d.add(beacon_down_samples);
  p.digest = d.h;
  p.checkpoints = bed.checkpoints();
  if (!replay_path.empty()) {
    p.replay_armed = true;
    if (bed.resume_pending()) {
      p.replay_error = "the run never reached the snapshot instant";
    } else if (!bed.resume_verified()) {
      p.replay_error = bed.resume_error();
    } else {
      p.replay_ok = true;
    }
  }

  if (!trace_path.empty()) {
    obs::TraceCapture cap = obs::capture(*bed.observability());
    if (obs::write_perfetto_json(trace_path, cap, bed.export_options())) {
      std::printf("  wrote %s (%zu records, %llu dropped) — open at "
                  "https://ui.perfetto.dev\n",
                  trace_path.c_str(), cap.records.size(),
                  static_cast<unsigned long long>(cap.dropped));
    } else {
      std::fprintf(stderr, "warning: cannot write %s\n", trace_path.c_str());
    }
  }

  for (auto& n : nodes) n->stop();
  sim.run_for(Duration::seconds(1));
  return p;
}

std::string hex64(std::uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(v));
  return buf;
}

// Walk two runs' checkpoint lists in lockstep and report the first pair
// whose state sections differ — the divergence happened inside the 10 s
// window that checkpoint closes. Prints the offline reproduction command.
void bisect_checkpoints(const ChaosPoint& base, const ChaosPoint& bad) {
  const std::size_t n = std::min(base.checkpoints.size(),
                                 bad.checkpoints.size());
  for (std::size_t i = 0; i < n; ++i) {
    auto a = omni::sim::read_snapshot_file(base.checkpoints[i]);
    auto b = omni::sim::read_snapshot_file(bad.checkpoints[i]);
    if (!a.is_ok() || !b.is_ok()) {
      std::fprintf(stderr, "bisect: cannot load checkpoint pair %zu: %s\n", i,
                   (!a.is_ok() ? a : b).error_message().c_str());
      return;
    }
    const std::string diff = omni::sim::diff_snapshots(
        a.value(), b.value(), /*skip_manifest=*/true);
    if (!diff.empty()) {
      std::fprintf(stderr,
                   "bisect: first divergent checkpoint pins the bug to "
                   "(%.0fs, %.0fs]\n%s\nreproduce offline with:\n"
                   "  omnisnap diff --state %s %s\n"
                   "replay the window with a trace:\n"
                   "  ./bench/bench_chaos %u --replay %s --trace replay.json\n",
                   kCheckpointPeriodS * static_cast<double>(i),
                   kCheckpointPeriodS * static_cast<double>(i + 1),
                   diff.c_str(), base.checkpoints[i].c_str(),
                   bad.checkpoints[i].c_str(), bad.threads,
                   i > 0 ? base.checkpoints[i - 1].c_str()
                         : base.checkpoints[i].c_str());
      return;
    }
  }
  std::fprintf(stderr,
               "bisect: all %zu checkpoint pairs identical — the divergence "
               "is after the last checkpoint\n",
               n);
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<unsigned> thread_counts = {1, 2, 8};
  std::string trace_path;
  std::string ckpt_root;
  std::string replay_path;
  std::vector<unsigned> explicit_counts;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--trace" && i + 1 < argc) {
      trace_path = argv[++i];
    } else if (std::string(argv[i]) == "--checkpoint" && i + 1 < argc) {
      ckpt_root = argv[++i];
    } else if (std::string(argv[i]) == "--replay" && i + 1 < argc) {
      replay_path = argv[++i];
    } else {
      explicit_counts.push_back(static_cast<unsigned>(std::atoi(argv[i])));
    }
  }
  if (!explicit_counts.empty()) thread_counts = explicit_counts;

  bench::print_heading("Chaos soak (faults + self-healing, thread sweep)");
  bench::Table table({"threads", "delivery", "latency ms", "leaked",
                      "beacon down s", "failovers", "rearms", "digest"});
  bench::BenchReport report("chaos");
  report.set_meta("nodes", std::to_string(kNodes));
  report.set_meta("sim_seconds", bench::fmt(kSimSeconds, 0));
  report.set_meta("seed", std::to_string(kSeed));
  report.set_meta("beacon_sample_period_s",
                  bench::fmt(kBeaconSamplePeriodS, 2));
  report.set_meta("hardware_threads",
                  std::to_string(std::thread::hardware_concurrency()));

  bool ok = true;
  std::uint64_t digest_1t = 0;
  ChaosPoint baseline;
  for (unsigned threads : thread_counts) {
    // The trace rides the first run only; instrumentation does not change
    // the digest, so the traced run still participates in the invariance
    // check.
    const bool traced = threads == thread_counts.front();
    const std::string ckpt_dir =
        ckpt_root.empty() ? ""
                          : ckpt_root + "/t" + std::to_string(threads);
    ChaosPoint p =
        run_point(threads, traced ? trace_path : "", ckpt_dir, replay_path);
    if (p.replay_armed) {
      if (p.replay_ok) {
        std::printf("  replay verified byte-identical at the snapshot "
                    "instant (%u threads)\n",
                    threads);
      } else {
        std::fprintf(stderr, "REPLAY FAILED at %u threads: %s\n", threads,
                     p.replay_error.c_str());
        ok = false;
        if (p.events == 0) continue;  // refused before the run started
      }
    }
    if (threads == thread_counts.front()) {
      digest_1t = p.digest;
      baseline = p;
    }
    if (p.digest != digest_1t) {
      std::fprintf(stderr,
                   "DETERMINISM VIOLATION: digest %s at %u threads vs %s at "
                   "%u\n",
                   hex64(p.digest).c_str(), threads, hex64(digest_1t).c_str(),
                   thread_counts.front());
      if (!p.checkpoints.empty()) bisect_checkpoints(baseline, p);
      ok = false;
    }
    if (p.ops_leaked != 0) {
      std::fprintf(stderr, "LEAK: %zu op-table entries left at %u threads\n",
                   p.ops_leaked, threads);
      ok = false;
    }
    double delivery =
        p.ops > 0 ? static_cast<double>(p.sends_ok) / p.ops : 0;
    table.add_row({std::to_string(p.threads), bench::fmt(delivery, 3),
                   bench::fmt(p.mean_success_latency_ms, 1),
                   std::to_string(p.ops_leaked),
                   bench::fmt(p.beacon_downtime_s, 2),
                   std::to_string(p.deadline_failovers),
                   std::to_string(p.beacon_rearms), hex64(p.digest)});
    report.add_row()
        .field("threads", static_cast<std::uint64_t>(p.threads))
        .field("sim_seconds", kSimSeconds)
        .field("wall_seconds", p.wall_seconds)
        .field("events", p.events)
        .field("ops", static_cast<std::uint64_t>(p.ops))
        .field("sends_ok", static_cast<std::uint64_t>(p.sends_ok))
        .field("sends_failed", static_cast<std::uint64_t>(p.sends_failed))
        .field("delivery_ratio", delivery)
        .field("mean_success_latency_ms", p.mean_success_latency_ms)
        .field("ops_leaked", static_cast<std::uint64_t>(p.ops_leaked))
        .field("beacon_downtime_s", p.beacon_downtime_s)
        .field("deadline_failovers", p.deadline_failovers)
        .field("beacon_rearms", p.beacon_rearms)
        .field("quarantines", p.quarantines)
        .field("fault_drops", p.fault_stats.drops)
        .field("fault_corruptions", p.fault_stats.corruptions)
        .field("fault_delays", p.fault_stats.delays)
        .field("fault_partition_drops", p.fault_stats.partition_drops)
        .field("digest", hex64(p.digest));
    std::printf("  %u threads: delivery %.3f, mean ok-latency %.1f ms, "
                "%zu leaked, beacon down %.2f s, digest %s\n",
                p.threads, delivery, p.mean_success_latency_ms, p.ops_leaked,
                p.beacon_downtime_s, hex64(p.digest).c_str());
  }

  std::printf("\n");
  table.print();
  report.write_file();
  return ok ? 0 : 1;
}
