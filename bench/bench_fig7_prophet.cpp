// Reproduces Figure 7: PROPHET DTN routing over SP, SA, and Omni.
//
// Paper setup (§4.3): three devices A, B, C. A is out of range of C but must
// deliver a 1 KB file to it. B encounters A, buffers the file, and meets C
// five seconds later. The figure shows energy and end-to-end latency per
// approach; the paper's findings are (1) SP -> SA yields negligible
// improvement, because without integrated neighbor+service discovery every
// encounter pays WiFi network discovery, and (2) under Omni the latency is
// dominated by the 5 s encounter delay itself, with far lower energy.
#include <cstdio>
#include <memory>
#include <optional>

#include "apps/prophet.h"
#include "baselines/directory.h"
#include "baselines/omni_stack.h"
#include "baselines/sa_node.h"
#include "baselines/sp_wifi_node.h"
#include "bench_util.h"
#include "net/testbed.h"
#include "omni/omni_node.h"

namespace omni {
namespace {

enum class Approach { kSp, kSa, kOmni };

struct RunResult {
  bool delivered = false;
  double latency_s = 0;    // message originate -> delivered at C
  double energy_relay_ma = 0;  // relay (B) average over the run
};

RunResult run(Approach approach) {
  net::Testbed bed(2024);
  // A and B colocated; C far away (out of both radio ranges).
  auto& dev_a = bed.add_device("A", {0, 0});
  auto& dev_b = bed.add_device("B", {20, 0});
  auto& dev_c = bed.add_device("C", {400, 0});

  baselines::Directory directory;
  std::vector<std::unique_ptr<OmniNode>> omni_nodes;
  std::vector<std::unique_ptr<baselines::D2dStack>> stacks;
  for (net::Device* dev : {&dev_a, &dev_b, &dev_c}) {
    switch (approach) {
      case Approach::kSp:
        stacks.push_back(
            std::make_unique<baselines::SpWifiNode>(*dev, bed.mesh()));
        break;
      case Approach::kSa:
        stacks.push_back(std::make_unique<baselines::SaNode>(*dev, bed.mesh(),
                                                             directory));
        break;
      case Approach::kOmni: {
        OmniNodeOptions options;
        options.ble = true;
        options.wifi_unicast = true;
        omni_nodes.push_back(
            std::make_unique<OmniNode>(*dev, bed.mesh(), options));
        stacks.push_back(
            std::make_unique<baselines::OmniStack>(*omni_nodes.back()));
        break;
      }
    }
  }

  apps::ProphetConfig config;
  apps::ProphetNode pa(*stacks[0], bed.simulator(), config);
  apps::ProphetNode pb(*stacks[1], bed.simulator(), config);
  apps::ProphetNode pc(*stacks[2], bed.simulator(), config);

  std::optional<TimePoint> delivered_at;
  pc.set_delivered_handler([&](std::uint32_t, baselines::D2dStack::PeerId) {
    delivered_at = bed.simulator().now();
  });

  pa.start();
  pb.start();
  pc.start();
  // B has encountered C before (it is C's likely carrier).
  pb.seed_predictability(stacks[2]->self(), 0.9);

  // Give discovery one beacon round, then originate the 1 KB file at A.
  bed.simulator().run_for(Duration::seconds(2));
  TimePoint originated = bed.simulator().now();
  pa.originate(stacks[2]->self(), 1000);

  // Five seconds later B walks over to C (leaving A's range).
  bed.simulator().at(originated + Duration::seconds(5), [&] {
    bed.world().set_position(dev_b.node(), {380, 0});
  });

  bed.simulator().run_for(Duration::seconds(40));

  RunResult r;
  if (!delivered_at) return r;
  r.delivered = true;
  r.latency_s = (*delivered_at - originated).as_seconds();
  r.energy_relay_ma =
      dev_b.meter().average_ma(originated, *delivered_at) -
      bed.calibration().wifi_standby_ma;
  return r;
}

}  // namespace
}  // namespace omni

int main() {
  using namespace omni;
  bench::print_heading(
      "Figure 7: Energy and latency for PROPHET interactions\n"
      "(A -> B -> C relay of a 1KB file; B meets C 5s after the message is "
      "originated)");

  bench::Table table({"Approach", "Latency (s)", "Relay energy (mA)",
                      "Delivered"});
  struct Col {
    const char* label;
    Approach approach;
  };
  const Col cols[] = {
      {"SP (WiFi only)", Approach::kSp},
      {"SA (BLE+WiFi)", Approach::kSa},
      {"Omni (BLE+WiFi)", Approach::kOmni},
  };
  double omni_latency = 0;
  for (const Col& col : cols) {
    RunResult r = run(col.approach);
    if (col.approach == Approach::kOmni) omni_latency = r.latency_s;
    table.add_row({col.label, bench::fmt(r.latency_s, 2),
                   bench::fmt(r.energy_relay_ma, 2),
                   r.delivered ? "yes" : "NO"});
  }
  table.print();

  std::printf(
      "\nPaper's qualitative findings (Figure 7 is a bar chart without\n"
      "numeric labels): SP and SA are nearly indistinguishable — every\n"
      "encounter pays WiFi network discovery before the transfer — while\n"
      "under Omni \"the vast majority of the latency ... is inherent to the\n"
      "delayed nature of the application scenario (i.e., the five seconds\n"
      "it takes to encounter Device C)\", and the lack of periodic\n"
      "multicast slashes the relay's energy. Omni latency here: %.2fs of\n"
      "which 5.00s is the encounter delay itself.\n",
      omni_latency);
  return 0;
}
