// Microbenchmarks (google-benchmark) for the middleware's hot paths: the
// packed-struct codec, sealing, queue plumbing, the event queue, and a full
// simulated testbed tick.
#include <benchmark/benchmark.h>

#include "net/testbed.h"
#include "omni/omni_node.h"
#include "omni/packed_struct.h"
#include "omni/queues.h"
#include "omni/security.h"
#include "sim/event_queue.h"

namespace omni {
namespace {

void BM_PackedStructEncodeBeacon(benchmark::State& state) {
  PackedStruct p = PackedStruct::address_beacon(
      OmniAddress{0x1234},
      {MeshAddress::from_node(1), BleAddress::from_node(1)});
  for (auto _ : state) {
    benchmark::DoNotOptimize(p.encode());
  }
}
BENCHMARK(BM_PackedStructEncodeBeacon);

void BM_PackedStructDecodeBeacon(benchmark::State& state) {
  Bytes wire = PackedStruct::address_beacon(
                   OmniAddress{0x1234},
                   {MeshAddress::from_node(1), BleAddress::from_node(1)})
                   .encode();
  for (auto _ : state) {
    benchmark::DoNotOptimize(PackedStruct::decode(wire));
  }
}
BENCHMARK(BM_PackedStructDecodeBeacon);

void BM_PackedStructRoundTripData(benchmark::State& state) {
  Bytes payload(static_cast<std::size_t>(state.range(0)), 0xAB);
  for (auto _ : state) {
    Bytes wire = PackedStruct::data(OmniAddress{1}, payload).encode();
    benchmark::DoNotOptimize(PackedStruct::decode(wire));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_PackedStructRoundTripData)->Range(32, 1 << 20);

void BM_BeaconCipherSealOpen(benchmark::State& state) {
  Bytes key{1, 2, 3, 4};
  BeaconCipher cipher{std::span<const std::uint8_t>(key)};
  Bytes plain(static_cast<std::size_t>(state.range(0)), 0x55);
  std::uint64_t nonce = 0;
  for (auto _ : state) {
    Bytes sealed = cipher.seal(plain, ++nonce);
    benchmark::DoNotOptimize(cipher.open(sealed));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_BeaconCipherSealOpen)->Range(23, 1 << 12);

void BM_EventQueueScheduleAndPop(benchmark::State& state) {
  for (auto _ : state) {
    sim::EventQueue q;
    for (int i = 0; i < 1000; ++i) {
      q.schedule(TimePoint::from_micros(i * 37 % 1000), [] {});
    }
    while (!q.empty()) q.pop(TimePoint::max());
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_EventQueueScheduleAndPop);

void BM_SimQueuePushDrain(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator sim;
    SimQueue<int> q(sim);
    int drained = 0;
    q.set_consumer([&] {
      while (q.try_pop()) ++drained;
    });
    for (int i = 0; i < 1000; ++i) q.push(i);
    sim.run();
    benchmark::DoNotOptimize(drained);
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_SimQueuePushDrain);

// Full-stack throughput: virtual seconds simulated per wall second for a
// 6-device Omni neighborhood beaconing at 500 ms.
void BM_TestbedVirtualSecond(benchmark::State& state) {
  net::Testbed bed(1);
  std::vector<std::unique_ptr<OmniNode>> nodes;
  for (int i = 0; i < 6; ++i) {
    auto& dev = bed.add_device("n" + std::to_string(i),
                               {static_cast<double>(i * 5), 0});
    nodes.push_back(std::make_unique<OmniNode>(dev, bed.mesh()));
    nodes.back()->start();
  }
  for (auto _ : state) {
    bed.simulator().run_for(Duration::seconds(1));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_TestbedVirtualSecond)->Unit(benchmark::kMillisecond);

void BM_FluidFlowRecompute(benchmark::State& state) {
  net::Testbed bed(2);
  std::vector<net::Device*> devs;
  for (int i = 0; i < 10; ++i) {
    devs.push_back(&bed.add_device("d" + std::to_string(i),
                                   {static_cast<double>(i), 0}));
    devs.back()->wifi().set_powered(true);
    devs.back()->wifi().join(bed.mesh(), [](Status) {});
  }
  bed.simulator().run_for(Duration::seconds(1));
  for (auto _ : state) {
    // Open 9 flows into device 0 and drain them: lots of rate recomputes.
    for (int i = 1; i < 10; ++i) {
      bed.mesh().open_flow(devs[i]->wifi(), devs[0]->wifi().address(),
                           100'000, nullptr);
    }
    bed.simulator().run_for(Duration::seconds(2));
  }
  state.SetItemsProcessed(state.iterations() * 9);
}
BENCHMARK(BM_FluidFlowRecompute)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace omni

BENCHMARK_MAIN();
