// Microbenchmarks (google-benchmark) for the middleware's hot paths: the
// packed-struct codec, sealing, queue plumbing, the event queue, and a full
// simulated testbed tick.
//
// Besides the google-benchmark tables, main() runs a manual closure-vs-
// descriptor event comparison (schedule+dispatch ns, events/sec, heap
// bytes/event via global operator new counting, slab slot footprint) and
// writes BENCH_micro_core.json for the perf trajectory — the number the
// typed-event refactor is accountable to.
#include <benchmark/benchmark.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <new>

#include "bench_util.h"
#include "net/testbed.h"
#include "omni/omni_node.h"
#include "omni/packed_struct.h"
#include "omni/queues.h"
#include "omni/security.h"
#include "sim/event_desc.h"
#include "sim/event_queue.h"

// Global allocation meter for the bytes/event rows. Counting allocations
// (not frees) around a measured region gives heap bytes acquired per event;
// the slab itself is pre-warmed so steady-state closures are the only
// allocators left in the loop.
namespace {
std::atomic<std::uint64_t> g_heap_bytes{0};
std::atomic<std::uint64_t> g_heap_allocs{0};

void* counted_alloc(std::size_t n) {
  g_heap_bytes.fetch_add(n, std::memory_order_relaxed);
  g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
  void* p = std::malloc(n);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}
}  // namespace

void* operator new(std::size_t n) { return counted_alloc(n); }
void* operator new[](std::size_t n) { return counted_alloc(n); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace omni {
namespace {

void BM_PackedStructEncodeBeacon(benchmark::State& state) {
  PackedStruct p = PackedStruct::address_beacon(
      OmniAddress{0x1234},
      {MeshAddress::from_node(1), BleAddress::from_node(1)});
  for (auto _ : state) {
    benchmark::DoNotOptimize(p.encode());
  }
}
BENCHMARK(BM_PackedStructEncodeBeacon);

void BM_PackedStructDecodeBeacon(benchmark::State& state) {
  Bytes wire = PackedStruct::address_beacon(
                   OmniAddress{0x1234},
                   {MeshAddress::from_node(1), BleAddress::from_node(1)})
                   .encode();
  for (auto _ : state) {
    benchmark::DoNotOptimize(PackedStruct::decode(wire));
  }
}
BENCHMARK(BM_PackedStructDecodeBeacon);

void BM_PackedStructRoundTripData(benchmark::State& state) {
  Bytes payload(static_cast<std::size_t>(state.range(0)), 0xAB);
  for (auto _ : state) {
    Bytes wire = PackedStruct::data(OmniAddress{1}, payload).encode();
    benchmark::DoNotOptimize(PackedStruct::decode(wire));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_PackedStructRoundTripData)->Range(32, 1 << 20);

void BM_BeaconCipherSealOpen(benchmark::State& state) {
  Bytes key{1, 2, 3, 4};
  BeaconCipher cipher{std::span<const std::uint8_t>(key)};
  Bytes plain(static_cast<std::size_t>(state.range(0)), 0x55);
  std::uint64_t nonce = 0;
  for (auto _ : state) {
    Bytes sealed = cipher.seal(plain, ++nonce);
    benchmark::DoNotOptimize(cipher.open(sealed));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_BeaconCipherSealOpen)->Range(23, 1 << 12);

void BM_EventQueueScheduleAndPop(benchmark::State& state) {
  for (auto _ : state) {
    sim::EventQueue q;
    for (int i = 0; i < 1000; ++i) {
      q.schedule(TimePoint::from_micros(i * 37 % 1000), [] {});
    }
    while (!q.empty()) q.pop(TimePoint::max());
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_EventQueueScheduleAndPop);

// Descriptor twin of BM_EventQueueScheduleAndPop: same schedule/pop slab
// traffic, payload bytes inline instead of a closure body.
void BM_EventQueueScheduleAndPopDescriptor(benchmark::State& state) {
  unsigned char payload[sim::kEventPayloadMax];
  const std::uint8_t psize = sim::pack_u32s(payload, {1, 2, 3});
  for (auto _ : state) {
    sim::EventQueue q;
    for (int i = 0; i < 1000; ++i) {
      q.schedule_desc(TimePoint::from_micros(i * 37 % 1000), sim::kEventTestA,
                      payload, psize);
    }
    while (!q.empty()) q.pop(TimePoint::max());
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_EventQueueScheduleAndPopDescriptor);

void BM_SimQueuePushDrain(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator sim;
    SimQueue<int> q(sim);
    int drained = 0;
    q.set_consumer([&] {
      while (q.try_pop()) ++drained;
    });
    for (int i = 0; i < 1000; ++i) q.push(i);
    sim.run();
    benchmark::DoNotOptimize(drained);
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_SimQueuePushDrain);

// Full-stack throughput: virtual seconds simulated per wall second for a
// 6-device Omni neighborhood beaconing at 500 ms.
void BM_TestbedVirtualSecond(benchmark::State& state) {
  net::Testbed bed(1);
  std::vector<std::unique_ptr<OmniNode>> nodes;
  for (int i = 0; i < 6; ++i) {
    auto& dev = bed.add_device("n" + std::to_string(i),
                               {static_cast<double>(i * 5), 0});
    nodes.push_back(std::make_unique<OmniNode>(dev, bed.mesh()));
    nodes.back()->start();
  }
  for (auto _ : state) {
    bed.simulator().run_for(Duration::seconds(1));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_TestbedVirtualSecond)->Unit(benchmark::kMillisecond);

void BM_FluidFlowRecompute(benchmark::State& state) {
  net::Testbed bed(2);
  std::vector<net::Device*> devs;
  for (int i = 0; i < 10; ++i) {
    devs.push_back(&bed.add_device("d" + std::to_string(i),
                                   {static_cast<double>(i), 0}));
    devs.back()->wifi().set_powered(true);
    devs.back()->wifi().join(bed.mesh(), [](Status) {});
  }
  bed.simulator().run_for(Duration::seconds(1));
  for (auto _ : state) {
    // Open 9 flows into device 0 and drain them: lots of rate recomputes.
    for (int i = 1; i < 10; ++i) {
      bed.mesh().open_flow(devs[i]->wifi(), devs[0]->wifi().address(),
                           100'000, nullptr);
    }
    bed.simulator().run_for(Duration::seconds(2));
  }
  state.SetItemsProcessed(state.iterations() * 9);
}
BENCHMARK(BM_FluidFlowRecompute)->Unit(benchmark::kMillisecond);

// --- Closure vs descriptor: the typed-event accountability numbers ----------

struct EventVariantResult {
  const char* variant;
  double ns_per_event = 0;
  double events_per_sec = 0;
  double heap_bytes_per_event = 0;
};

// One schedule+dispatch measurement over a pre-warmed queue (slab already
// grown, so vector growth does not pollute the heap meter). `schedule` fills
// the queue with kBatch events; the drain loop dispatches each popped event
// the way Simulator::run_shard_window does — closure call or payload read.
template <typename ScheduleFn>
EventVariantResult measure_events(const char* variant, ScheduleFn schedule) {
  constexpr int kBatch = 1 << 15;
  constexpr int kReps = 5;
  sim::EventQueue q;
  volatile std::uint64_t sink = 0;
  auto drain = [&] {
    while (!q.empty()) {
      sim::EventQueue::Popped p = q.pop(TimePoint::max());
      if (p.kind == sim::kEventClosure) {
        p.fn();
      } else {
        std::uint32_t v;
        std::memcpy(&v, p.payload, sizeof v);
        sink = sink + v;
      }
    }
  };
  schedule(q, kBatch);  // warm the slab (and the allocator's size classes)
  drain();

  EventVariantResult res;
  res.variant = variant;
  double best_ns = 0;
  std::uint64_t heap = 0;
  for (int rep = 0; rep < kReps; ++rep) {
    const std::uint64_t h0 = g_heap_bytes.load(std::memory_order_relaxed);
    const auto t0 = std::chrono::steady_clock::now();
    schedule(q, kBatch);
    drain();
    const auto t1 = std::chrono::steady_clock::now();
    heap = g_heap_bytes.load(std::memory_order_relaxed) - h0;
    const double ns =
        std::chrono::duration<double, std::nano>(t1 - t0).count() / kBatch;
    if (rep == 0 || ns < best_ns) best_ns = ns;
  }
  res.ns_per_event = best_ns;
  res.events_per_sec = 1e9 / best_ns;
  res.heap_bytes_per_event = static_cast<double>(heap) / kBatch;
  return res;
}

int run_event_variant_report() {
  bench::print_heading(
      "Event cost: closure vs serializable descriptor (schedule + dispatch)");

  // Captureless closure: std::function stores it inline (small-buffer).
  auto inline_closure = measure_events(
      "closure-inline", [](sim::EventQueue& q, int n) {
        for (int i = 0; i < n; ++i) {
          q.schedule(TimePoint::from_micros(i * 37 % 1000), [] {});
        }
      });
  // Capturing closure shaped like the converted call sites (this + a few
  // ids = 24 bytes) — past std::function's inline buffer, so every event
  // heap-allocates its body.
  struct Captured {
    std::uint64_t node, uid, adv;
  };
  volatile std::uint64_t capture_sink = 0;
  auto capture_closure = measure_events(
      "closure-capture", [&capture_sink](sim::EventQueue& q, int n) {
        for (int i = 0; i < n; ++i) {
          Captured c{static_cast<std::uint64_t>(i), 7, 9};
          q.schedule(TimePoint::from_micros(i * 37 % 1000),
                     [c, &capture_sink] { capture_sink = capture_sink + c.node; });
        }
      });
  // Descriptor: the same 3 ids as inline payload bytes; no closure at all.
  auto descriptor = measure_events(
      "descriptor", [](sim::EventQueue& q, int n) {
        unsigned char payload[sim::kEventPayloadMax];
        const std::uint8_t psize = sim::pack_u32s(payload, {1, 7, 9});
        for (int i = 0; i < n; ++i) {
          q.schedule_desc(TimePoint::from_micros(i * 37 % 1000),
                          sim::kEventTestA, payload, psize);
        }
      });

  const double slot_bytes =
      static_cast<double>(sim::EventQueue::slot_footprint());
  bench::Table table({"variant", "ns/event", "events/sec", "heap B/event",
                      "slot B", "total B/event"});
  bench::BenchReport report("micro_core");
  report.set_meta("batch", std::to_string(1 << 15));
  report.set_meta("compare", "schedule+dispatch, pre-warmed slab, best of 5");
  for (const EventVariantResult& r :
       {inline_closure, capture_closure, descriptor}) {
    table.add_row({r.variant, bench::fmt(r.ns_per_event),
                   bench::fmt(r.events_per_sec, 0),
                   bench::fmt(r.heap_bytes_per_event),
                   bench::fmt(slot_bytes, 0),
                   bench::fmt(slot_bytes + r.heap_bytes_per_event)});
    report.add_row()
        .field("variant", std::string(r.variant))
        .field("schedule_dispatch_ns", r.ns_per_event)
        .field("events_per_sec", r.events_per_sec)
        .field("heap_bytes_per_event", r.heap_bytes_per_event)
        .field("slot_bytes", slot_bytes)
        .field("total_bytes_per_event",
               slot_bytes + r.heap_bytes_per_event);
  }
  table.print();

  // The refactor's acceptance: descriptors must beat the closure they
  // replaced by >= 1.3x in events/sec, or at worst match it while being
  // strictly smaller per event.
  const double ratio =
      descriptor.events_per_sec / capture_closure.events_per_sec;
  const bool smaller = descriptor.heap_bytes_per_event <
                       capture_closure.heap_bytes_per_event;
  report.add_row()
      .field("variant", std::string("descriptor-vs-closure-capture"))
      .field("events_per_sec_ratio", ratio)
      .field("bytes_per_event_smaller", std::uint64_t{smaller ? 1u : 0u});
  report.write_file();
  std::printf("\ndescriptor vs capturing closure: x%.2f events/sec, "
              "%s bytes/event\n",
              ratio, smaller ? "smaller" : "NOT smaller");
  if (ratio < 1.3 && !(ratio >= 0.99 && smaller)) {
    std::fprintf(stderr,
                 "FAIL: descriptor events/sec only x%.2f of the capturing "
                 "closure and not smaller per event\n",
                 ratio);
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace omni

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return omni::run_event_variant_report();
}
