// Extension bench: multi-hop context sharing (paper §5: "sharing context
// (and data) with more than just one-hop neighbors could extend the range
// of a device's knowledge about the environment").
//
// A chain of devices, 35 m apart (inside WiFi range, outside BLE range of
// non-adjacent nodes). Sweeps the relay hop budget and reports how far one
// device's context and addresses propagate, plus the energy cost of the
// relaying middle nodes.
#include <cstdio>
#include <memory>

#include "bench_util.h"
#include "net/testbed.h"
#include "omni/omni_node.h"

namespace omni {
namespace {

struct Sample {
  int context_reach = 0;   // farthest chain index that heard node 0
  int address_reach = 0;   // farthest index with a usable mapping for node 0
  double relay_energy = 0;  // average current on node 1 (first relayer)
};

Sample run(int hops) {
  radio::Calibration cal = radio::Calibration::defaults();
  cal.ble_extended_advertising = true;  // relay wrappers need BT5 payloads
  net::Testbed bed(4242, cal);

  constexpr int kChain = 6;
  std::vector<net::Device*> devices;
  std::vector<std::unique_ptr<OmniNode>> nodes;
  std::vector<int> heard(kChain, 0);
  for (int i = 0; i < kChain; ++i) {
    devices.push_back(&bed.add_device("n" + std::to_string(i),
                                      {35.0 * i, 0}));
    OmniNodeOptions options;
    options.manager.context_relay_hops = hops;
    nodes.push_back(
        std::make_unique<OmniNode>(*devices.back(), bed.mesh(), options));
  }
  OmniAddress origin_addr = nodes[0]->address();
  for (int i = 0; i < kChain; ++i) {
    nodes[i]->manager().request_context(
        [&heard, i, origin_addr](const OmniAddress& source, const Bytes&) {
          if (source == origin_addr) heard[i] = 1;
        });
    nodes[i]->start();
  }
  nodes[0]->manager().add_context(ContextParams{}, Bytes{0x77}, nullptr);
  bed.simulator().run_for(Duration::seconds(20));

  Sample s;
  for (int i = 1; i < kChain; ++i) {
    if (heard[i]) s.context_reach = i;
    const PeerEntry* e = nodes[i]->manager().peer_table().find(origin_addr);
    if (e != nullptr && e->reachable_on(Technology::kWifiUnicast)) {
      s.address_reach = i;
    }
  }
  s.relay_energy = devices[1]->meter().average_ma(
                       TimePoint::origin(), bed.simulator().now()) -
                   cal.wifi_standby_ma;
  return s;
}

}  // namespace
}  // namespace omni

int main() {
  using namespace omni;
  bench::print_heading(
      "Extension: multi-hop context relay (paper SS5)\n"
      "Chain of 6 devices, 35m spacing (BLE reaches only adjacent nodes)");

  bench::Table table({"Relay hops", "Context reach (chain idx)",
                      "Address reach", "Relayer energy (mA rel.)"});
  for (int hops : {0, 1, 2, 3, 4}) {
    Sample s = run(hops);
    table.add_row({std::to_string(hops), std::to_string(s.context_reach),
                   std::to_string(s.address_reach),
                   bench::fmt(s.relay_energy)});
  }
  table.print();

  std::printf(
      "\nEach extra hop extends the context horizon by one chain link; the\n"
      "relayed address beacons give distant devices a (ritual-validated)\n"
      "WiFi mapping for the origin, so 'knowledge range' exceeds radio\n"
      "range exactly as the paper anticipates. Relay energy grows with the\n"
      "hop budget: extended context horizons are bought with middle-node\n"
      "airtime.\n");
  return 0;
}
