// Extension bench: WiFi-Aware (NAN) as the WiFi-side context carrier.
//
// Paper §3.2: "With new lightweight technologies for discovery on the
// horizon, such as WiFi-Aware (also known as Neighbor Awareness
// Networking), we aim to eventually replace multicast over WiFi as a
// technology for context transmission."
//
// Scenario: two WiFi-only devices (no BLE — the configuration whose Table 4
// rows were the painful ones). Compare multicast-carried context against
// NAN-carried context on the axes that motivated the replacement.
#include <cstdio>
#include <memory>
#include <optional>

#include "bench_util.h"
#include "net/testbed.h"
#include "omni/omni_node.h"

namespace omni {
namespace {

struct Sample {
  double idle_ma = 0;         // pair idle, rel. WiFi-standby
  double discovery_ms = 0;    // first peer-table sighting
  double interaction_ms = 0;  // 30B request at t=60s -> response received
  bool completed = false;
};

Sample run(bool use_nan) {
  net::Testbed bed(868);
  auto& da = bed.add_device("a", {0, 0});
  auto& db = bed.add_device("b", {60, 0});
  OmniNodeOptions options;
  options.ble = false;
  options.wifi_unicast = true;
  options.wifi_aware = use_nan;
  options.wifi_multicast = !use_nan;
  OmniNode a(da, bed.mesh(), options);
  OmniNode b(db, bed.mesh(), options);

  std::optional<TimePoint> response_at;
  b.manager().request_data([&](const OmniAddress& from, const Bytes& d) {
    if (!d.empty() && d[0] == 0x01) {
      b.manager().send_data({from}, Bytes(30, 0x02), nullptr);
    }
  });
  a.manager().request_data([&](const OmniAddress&, const Bytes& d) {
    if (!d.empty() && d[0] == 0x02 && !response_at) {
      response_at = bed.simulator().now();
    }
  });

  a.start();
  b.start();

  Sample s;
  // Discovery latency.
  TimePoint found = TimePoint::max();
  while (found == TimePoint::max() &&
         bed.simulator().now().as_seconds() < 30) {
    bed.simulator().run_for(Duration::millis(20));
    if (a.manager().peer_table().find(b.address()) != nullptr) {
      found = bed.simulator().now();
    }
  }
  s.discovery_ms = found.as_millis();

  // Idle to t=60s, then the interaction.
  bed.simulator().run_until(TimePoint::origin() + Duration::seconds(60));
  s.idle_ma = da.meter().average_ma(TimePoint::origin() + Duration::seconds(5),
                                    bed.simulator().now()) -
              bed.calibration().wifi_standby_ma;
  TimePoint t0 = bed.simulator().now();
  a.manager().send_data({b.address()}, Bytes(30, 0x01), nullptr);
  bed.simulator().run_for(Duration::seconds(20));
  if (response_at) {
    s.completed = true;
    s.interaction_ms = (*response_at - t0).as_millis();
  }
  return s;
}

}  // namespace
}  // namespace omni

int main() {
  using namespace omni;
  bench::print_heading(
      "Extension: WiFi-Aware as the context carrier (paper SS3.2)\n"
      "Two WiFi-only devices, 60m apart (beyond BLE range either way)");

  Sample mc = run(false);
  Sample nan = run(true);

  bench::Table table({"Metric", "WiFi-Multicast context",
                      "WiFi-Aware context"});
  table.add_row({"idle energy (mA rel. standby)", bench::fmt(mc.idle_ma),
                 bench::fmt(nan.idle_ma)});
  table.add_row({"discovery latency (ms)", bench::fmt(mc.discovery_ms, 0),
                 bench::fmt(nan.discovery_ms, 0)});
  table.add_row({"30B interaction latency (ms)",
                 mc.completed ? bench::fmt(mc.interaction_ms, 0) : "DNF",
                 nan.completed ? bench::fmt(nan.interaction_ms, 0) : "DNF"});
  table.add_row({"max context payload (bytes)", "1399", "254"});
  table.print();

  std::printf(
      "\nNAN context costs ~5 mA of discovery-window duty instead of the\n"
      "multicast machinery's ~12-25 mA, and — because NAN is integrated\n"
      "low-level neighbor discovery — the mesh mapping it delivers is\n"
      "fresh: the 30B interaction runs at TCP speed (~32 ms round trip)\n"
      "instead of paying the ~3.2 s scan/join/resolve ritual. This is the\n"
      "Table 4 BLE-row advantage, now available to WiFi-only devices,\n"
      "exactly what the paper hoped WiFi-Aware would buy.\n");
  return 0;
}
