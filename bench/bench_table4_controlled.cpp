// Reproduces Table 4 (and Figures 4 & 5): the controlled comparison of
// State of the Practice, State of the Art, and Omni across context/data
// technology pairings.
//
// Protocol (paper §4.2): two devices; the initiating device is idle for 60 s
// while the underlying system transmits address and service information
// every 500 ms; it then performs a send/receive interaction with the
// discovered remote service (30 B request; 30 B or 25 MB response). Energy
// is the initiator's average current over the run, relative to WiFi-standby;
// latency runs from interaction initiation to response receipt.
#include <cmath>
#include <cstdio>
#include <memory>
#include <optional>

#include "baselines/directory.h"
#include "baselines/omni_stack.h"
#include "baselines/sa_node.h"
#include "baselines/sp_ble_node.h"
#include "baselines/sp_wifi_node.h"
#include "bench_util.h"
#include "net/testbed.h"
#include "omni/omni_node.h"

namespace omni {
namespace {

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

enum class Approach { kSp, kSa, kOmni };
enum class CtxTech { kBle, kWifi };


struct RunResult {
  bool completed = false;
  double energy_ma = 0;   // relative to WiFi-standby
  double latency_ms = 0;  // interaction initiation -> response received
};

struct Scenario {
  baselines::D2dStack* initiator = nullptr;
  baselines::D2dStack* service = nullptr;
};

constexpr std::uint8_t kRequestTag = 0x01;
constexpr std::uint8_t kResponseTag = 0x02;

RunResult run_scenario(net::Testbed& bed, net::Device& init_dev,
                       Scenario scenario, std::size_t response_bytes) {
  auto& sim = bed.simulator();
  const Duration kWarmup = Duration::seconds(60);

  // Service: advertise availability; answer requests with the response blob.
  scenario.service->set_advert_handler(nullptr);
  scenario.service->set_data_handler(
      [&](baselines::D2dStack::PeerId from, const Bytes& data) {
        if (!data.empty() && data[0] == kRequestTag) {
          Bytes response(response_bytes, kResponseTag);
          scenario.service->send(from, std::move(response), nullptr);
        }
      });

  // Initiator: record when the response lands.
  std::optional<TimePoint> response_at;
  scenario.initiator->set_data_handler(
      [&](baselines::D2dStack::PeerId, const Bytes& data) {
        if (!data.empty() && data[0] == kResponseTag && !response_at) {
          response_at = sim.now();
        }
      });

  scenario.service->start();
  scenario.initiator->start();
  scenario.service->advertise(Bytes{'s', 'v', 'c'}, Duration::millis(500));
  scenario.initiator->advertise(Bytes{'i', 'n', 't'}, Duration::millis(500));

  sim.run_until(TimePoint::origin() + kWarmup);

  baselines::D2dStack::PeerId service_id = scenario.service->self();
  scenario.initiator->send(service_id, Bytes(30, kRequestTag), nullptr);

  sim.run_until(TimePoint::origin() + Duration::seconds(120));

  RunResult result;
  if (!response_at) return result;
  result.completed = true;
  result.latency_ms = (*response_at - (TimePoint::origin() + kWarmup))
                          .as_millis();
  result.energy_ma =
      init_dev.meter().average_ma(TimePoint::origin(), *response_at) -
      bed.calibration().wifi_standby_ma;
  return result;
}

RunResult run(Approach approach, CtxTech ctx, std::size_t response_bytes,
              bool data_is_wifi) {
  net::Testbed bed(1234);
  auto& init_dev = bed.add_device("initiator", {0, 0});
  auto& svc_dev = bed.add_device("service", {10, 0});

  baselines::Directory directory;
  std::unique_ptr<baselines::D2dStack> init_stack;
  std::unique_ptr<baselines::D2dStack> svc_stack;
  std::unique_ptr<OmniNode> init_node;
  std::unique_ptr<OmniNode> svc_node;

  switch (approach) {
    case Approach::kSp: {
      // SP ties the whole app to a single technology.
      if (ctx == CtxTech::kBle) {
        init_stack = std::make_unique<baselines::SpBleNode>(init_dev);
        svc_stack = std::make_unique<baselines::SpBleNode>(svc_dev);
      } else {
        init_stack =
            std::make_unique<baselines::SpWifiNode>(init_dev, bed.mesh());
        svc_stack =
            std::make_unique<baselines::SpWifiNode>(svc_dev, bed.mesh());
      }
      break;
    }
    case Approach::kSa: {
      baselines::SaNode::Options options;
      options.enable_ble = ctx == CtxTech::kBle;
      options.enable_wifi = true;  // the overlay always spans all radios
      options.data_over_wifi = data_is_wifi;
      init_stack = std::make_unique<baselines::SaNode>(init_dev, bed.mesh(),
                                                       directory, options);
      svc_stack = std::make_unique<baselines::SaNode>(svc_dev, bed.mesh(),
                                                      directory, options);
      break;
    }
    case Approach::kOmni: {
      OmniNodeOptions options;
      options.ble = ctx == CtxTech::kBle;
      options.wifi_multicast = ctx == CtxTech::kWifi;
      // BLE/BLE row: no WiFi data technology registered (data rides BLE),
      // but the WiFi radio stays in standby per the measurement setup.
      options.wifi_unicast = data_is_wifi;
      options.wifi_standby = true;
      init_node = std::make_unique<OmniNode>(init_dev, bed.mesh(), options);
      svc_node = std::make_unique<OmniNode>(svc_dev, bed.mesh(), options);
      init_stack = std::make_unique<baselines::OmniStack>(*init_node);
      svc_stack = std::make_unique<baselines::OmniStack>(*svc_node);
      break;
    }
  }

  Scenario scenario{init_stack.get(), svc_stack.get()};
  return run_scenario(bed, init_dev, scenario, response_bytes);
}

struct Row {
  const char* label;
  CtxTech ctx;
  std::size_t response_bytes;
  bool data_is_wifi;
  // Paper values (energy mA; latency ms) for SP, SA, Omni; NaN = N/A.
  double paper_energy[3];
  double paper_latency[3];
};

}  // namespace
}  // namespace omni

int main() {
  using namespace omni;
  const Row rows[] = {
      {"BLE  / BLE (30B)", CtxTech::kBle, 30, false,
       {-92.07, 23.47, 7.52}, {82, 82, 82}},
      {"BLE  / WiFi (30B)", CtxTech::kBle, 30, true,
       {kNaN, 22.25, 9.11}, {kNaN, 2793, 16}},
      {"BLE  / WiFi (25MB)", CtxTech::kBle, 25'000'000, true,
       {kNaN, 43.41, 36.14}, {kNaN, 5982, 3112}},
      {"WiFi / WiFi (30B)", CtxTech::kWifi, 30, true,
       {21.86, 22.60, 23.12}, {3216, 3175, 3229}},
      {"WiFi / WiFi (25MB)", CtxTech::kWifi, 25'000'000, true,
       {39.78, 42.03, 41.41}, {6499, 6013, 6162}},
  };

  bench::print_heading(
      "Table 4: Performance comparison across approaches\n"
      "(2 devices, 60s warmup with 500ms discovery beacons, then a "
      "request/response interaction)");

  bench::Table energy_table({"Context/Data", "SP paper", "SP meas",
                             "SA paper", "SA meas", "Omni paper",
                             "Omni meas"});
  bench::Table latency_table({"Context/Data", "SP paper", "SP meas",
                              "SA paper", "SA meas", "Omni paper",
                              "Omni meas"});

  for (const Row& row : rows) {
    std::vector<std::string> ecells{row.label};
    std::vector<std::string> lcells{row.label};
    for (int a = 0; a < 3; ++a) {
      Approach approach = static_cast<Approach>(a);
      bool applicable = !std::isnan(row.paper_energy[a]);
      if (!applicable) {
        ecells.push_back("N/A");
        ecells.push_back("N/A");
        lcells.push_back("N/A");
        lcells.push_back("N/A");
        continue;
      }
      RunResult r =
          run(approach, row.ctx, row.response_bytes, row.data_is_wifi);
      ecells.push_back(bench::fmt(row.paper_energy[a]));
      ecells.push_back(r.completed ? bench::fmt(r.energy_ma) : "FAILED");
      lcells.push_back(bench::fmt(row.paper_latency[a], 0));
      lcells.push_back(r.completed ? bench::fmt(r.latency_ms, 0) : "FAILED");
    }
    energy_table.add_row(std::move(ecells));
    latency_table.add_row(std::move(lcells));
  }

  bench::print_heading(
      "Figure 4: Energy consumption comparison (avg mA rel. WiFi-standby)");
  energy_table.print();
  bench::print_heading(
      "Figure 5: Application interaction latency comparison (ms)");
  latency_table.print();

  std::printf(
      "\nExpected shape: Omni matches SP/SA on the BLE/BLE and WiFi/WiFi\n"
      "rows but wins dramatically on the BLE-context WiFi-data rows, where\n"
      "its ND-integrated address beacons skip the WiFi discovery ritual\n"
      "(~16ms vs ~2.8s for 30B). SP's BLE/BLE energy is negative because\n"
      "the hand-coded single-technology app powers the WiFi radio off.\n");
  return 0;
}
