// Ablation: the address-beacon interval (fixed at 500 ms in the paper,
// §3.3 "For simplicity we have fixed the interval for this beacon to be
// every 500 ms"). Sweeps the interval and reports the discovery-latency /
// idle-energy tradeoff that fixed value sits on, plus the adaptive-interval
// extension (paper §5) as a final row.
#include <cstdio>

#include "bench_util.h"
#include "net/testbed.h"
#include "omni/omni_node.h"

namespace omni {
namespace {

struct Sample {
  double discovery_ms = 0;  // mean over trials
  double idle_ma = 0;       // BLE-side draw, WiFi-standby excluded
};

Sample measure(Duration interval, bool adaptive, std::uint64_t seed) {
  // Discovery latency: mean first-sighting time across trials.
  double total_ms = 0;
  const int kTrials = 10;
  for (int trial = 0; trial < kTrials; ++trial) {
    net::Testbed bed(seed + trial);
    auto& da = bed.add_device("a", {0, 0});
    auto& db = bed.add_device("b", {10, 0});
    OmniNodeOptions options;
    options.manager.beacon_interval = interval;
    options.manager.adaptive_beacon.enabled = adaptive;
    options.manager.adaptive_beacon.min_interval = interval;
    OmniNode a(da, bed.mesh(), options);
    OmniNode b(db, bed.mesh(), options);
    a.start();
    b.start();
    TimePoint found = TimePoint::max();
    while (found == TimePoint::max() &&
           bed.simulator().now().as_seconds() < 60) {
      bed.simulator().run_for(interval / 20);
      if (a.manager().peer_table().find(b.address()) != nullptr) {
        found = bed.simulator().now();
      }
    }
    total_ms += found.as_millis();
  }

  // Idle energy: a stable pair over two minutes, steady-state window.
  net::Testbed bed(seed + 100);
  auto& da = bed.add_device("a", {0, 0});
  auto& db = bed.add_device("b", {10, 0});
  OmniNodeOptions options;
  options.manager.beacon_interval = interval;
  options.manager.adaptive_beacon.enabled = adaptive;
  options.manager.adaptive_beacon.min_interval = interval;
  OmniNode a(da, bed.mesh(), options);
  OmniNode b(db, bed.mesh(), options);
  a.start();
  b.start();
  bed.simulator().run_for(Duration::seconds(120));
  double idle = da.meter().average_ma(
                    TimePoint::origin() + Duration::seconds(60),
                    bed.simulator().now()) -
                bed.calibration().wifi_standby_ma;
  return Sample{total_ms / kTrials, idle};
}

}  // namespace
}  // namespace omni

int main() {
  using namespace omni;
  bench::print_heading(
      "Ablation: address-beacon interval (paper fixes 500 ms)\n"
      "Discovery latency vs idle energy, 2 devices over BLE");

  bench::Table table({"Interval", "Mean discovery (ms)",
                      "Idle energy (mA, rel.)"});
  for (int ms : {100, 250, 500, 1000, 2000}) {
    Sample s = measure(Duration::millis(ms), false, 1000 + ms);
    table.add_row({std::to_string(ms) + " ms",
                   bench::fmt(s.discovery_ms, 0), bench::fmt(s.idle_ma)});
  }
  Sample adaptive = measure(Duration::millis(250), true, 9000);
  table.add_row({"adaptive (250ms..4s)", bench::fmt(adaptive.discovery_ms, 0),
                 bench::fmt(adaptive.idle_ma)});
  table.print();

  std::printf(
      "\nThe paper's fixed 500 ms sits mid-curve; the adaptive extension\n"
      "(paper SS5) keeps the fast-discovery latency of a tight interval\n"
      "while idling near the energy of a long one.\n");
  return 0;
}
