// Reproduces Table 5 (and Figure 6): the Disseminate-like media-sharing
// application over Direct-download, SP (WiFi multicast only), SA (BLE +
// WiFi), and Omni (BLE + WiFi).
//
// Paper setup (§4.3): three devices collaborate to download a 30 MB file
// from a mock infrastructure network at 100 or 1000 KBps per-device rate;
// each device downloads its assigned third and the devices exchange pieces
// device-to-device. Time and energy are measured on an arbitrary device
// from the first transmission until it holds the entire file.
#include <cmath>
#include <cstdio>
#include <memory>

#include "apps/disseminate.h"
#include "baselines/directory.h"
#include "baselines/omni_stack.h"
#include "baselines/sa_node.h"
#include "baselines/sp_wifi_node.h"
#include "bench_util.h"
#include "net/infra.h"
#include "net/testbed.h"
#include "omni/omni_node.h"

namespace omni {
namespace {

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

enum class Approach { kDirect, kSp, kSa, kOmni };

struct RunResult {
  bool completed = false;
  double time_s = 0;
  double energy_ma = 0;  // avg over the run, relative to WiFi-standby
};

RunResult run(Approach approach, double rate_Bps) {
  net::Testbed bed(99);
  net::InfraNetwork infra(bed.simulator(), bed.calibration());

  apps::DisseminateConfig config;
  config.infra_rate_Bps = rate_Bps;
  config.share_via_broadcast = approach == Approach::kSp;

  const std::uint64_t chunk_count =
      (config.file_bytes + config.chunk_bytes - 1) / config.chunk_bytes;

  if (approach == Approach::kDirect) {
    // One device, no D2D: download everything from the infrastructure.
    auto& dev = bed.add_device("solo", {0, 0});
    dev.wifi().set_powered(true);
    std::uint64_t done = 0;
    TimePoint finished = TimePoint::max();
    for (std::uint64_t id = 0; id < chunk_count; ++id) {
      std::uint64_t bytes = std::min<std::uint64_t>(
          config.chunk_bytes, config.file_bytes - id * config.chunk_bytes);
      infra.fetch_chunk(dev.wifi(), id, bytes, rate_Bps,
                        [&, chunk_count](std::uint64_t) {
                          if (++done == chunk_count) {
                            finished = bed.simulator().now();
                          }
                        });
    }
    bed.simulator().run_for(Duration::seconds(400));
    RunResult r;
    if (finished == TimePoint::max()) return r;
    r.completed = true;
    r.time_s = finished.as_seconds();
    r.energy_ma = dev.meter().average_ma(TimePoint::origin(), finished) -
                  bed.calibration().wifi_standby_ma;
    return r;
  }

  const int kDevices = 3;
  std::vector<net::Device*> devices;
  for (int i = 0; i < kDevices; ++i) {
    devices.push_back(&bed.add_device("dev" + std::to_string(i),
                                      {static_cast<double>(i) * 10, 0}));
  }

  baselines::Directory directory;
  std::vector<std::unique_ptr<OmniNode>> omni_nodes;
  std::vector<std::unique_ptr<baselines::D2dStack>> stacks;
  for (int i = 0; i < kDevices; ++i) {
    switch (approach) {
      case Approach::kSp:
        stacks.push_back(std::make_unique<baselines::SpWifiNode>(*devices[i],
                                                                 bed.mesh()));
        break;
      case Approach::kSa:
        stacks.push_back(std::make_unique<baselines::SaNode>(
            *devices[i], bed.mesh(), directory));
        break;
      case Approach::kOmni: {
        OmniNodeOptions options;
        options.ble = true;
        options.wifi_unicast = true;
        options.wifi_multicast = false;
        omni_nodes.push_back(
            std::make_unique<OmniNode>(*devices[i], bed.mesh(), options));
        stacks.push_back(
            std::make_unique<baselines::OmniStack>(*omni_nodes.back()));
        break;
      }
      case Approach::kDirect:
        break;
    }
  }

  std::vector<std::unique_ptr<apps::DisseminateApp>> apps;
  std::uint64_t per_device = chunk_count / kDevices;
  for (int i = 0; i < kDevices; ++i) {
    std::uint64_t first = static_cast<std::uint64_t>(i) * per_device;
    std::uint64_t count =
        i == kDevices - 1 ? chunk_count - first : per_device;
    apps.push_back(std::make_unique<apps::DisseminateApp>(
        *stacks[i], infra, devices[i]->wifi(), bed.simulator(), config,
        first, count, &bed.trace()));
  }
  for (auto& app : apps) app->start();

  bed.simulator().run_for(Duration::seconds(400));

  // The paper reports "an arbitrary device"; device 0 is ours.
  RunResult r;
  if (!apps[0]->complete()) return r;
  r.completed = true;
  r.time_s = apps[0]->completed_at().as_seconds();
  r.energy_ma = devices[0]
                    ->meter()
                    .average_ma(TimePoint::origin(), apps[0]->completed_at()) -
                bed.calibration().wifi_standby_ma;
  return r;
}

}  // namespace
}  // namespace omni

int main() {
  using namespace omni;
  bench::print_heading(
      "Table 5 / Figure 6: Disseminate-like application\n"
      "(3 devices collaboratively download a 30MB file; time and energy on "
      "one device, energy relative to WiFi-standby)");

  struct Col {
    const char* label;
    Approach approach;
  };
  const Col cols[] = {
      {"Direct", Approach::kDirect},
      {"SP (WiFi only)", Approach::kSp},
      {"SA (BLE+WiFi)", Approach::kSa},
      {"Omni (BLE+WiFi)", Approach::kOmni},
  };
  // Paper values: {energy mA, time s} per column, per rate.
  const double paper_100[4][2] = {
      {kNaN, 300}, {72.39, 229.588}, {67.12, 102.679}, {66.91, 101.292}};
  const double paper_1000[4][2] = {
      {kNaN, 30}, {80.03, 30}, {267.79, 13.100}, {270.288, 11.965}};

  for (double rate : {100e3, 1000e3}) {
    std::printf("\n--- Infrastructure rate: %.0f KBps ---\n", rate / 1000);
    bench::Table table({"Approach", "Energy paper (mA)", "Energy meas (mA)",
                        "Time paper (s)", "Time meas (s)"});
    for (int c = 0; c < 4; ++c) {
      RunResult r = run(cols[c].approach, rate);
      const double* paper = rate < 500e3 ? paper_100[c] : paper_1000[c];
      std::vector<std::string> cells{cols[c].label};
      cells.push_back(std::isnan(paper[0]) ? "N/A" : bench::fmt(paper[0]));
      cells.push_back(r.completed ? bench::fmt(r.energy_ma) : "DNF");
      cells.push_back(bench::fmt(paper[1], 1));
      cells.push_back(r.completed ? bench::fmt(r.time_s, 1) : "DNF");
      table.add_row(std::move(cells));
    }
    table.print();
  }

  std::printf(
      "\nExpected shape: at 100 KBps the collaborative approaches beat the\n"
      "300s direct download, with SP's multicast sharing far slower than\n"
      "SA/Omni's TCP sharing; at 1000 KBps SP degrades to direct-download\n"
      "speed while Omni finishes fastest — beating SA by the ~8.6%% that\n"
      "SA's periodic WiFi multicast discovery steals from TCP airtime.\n");
  return 0;
}
