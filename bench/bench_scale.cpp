// bench_scale: device-count sweep over the full Omni stack.
//
// For each device count, lay nodes out on a constant-density grid (25 m
// spacing: everyone has BLE neighbors, nobody hears the whole city), start
// every node with address beaconing + engagement enabled, and run a span of
// virtual time. Reports wall-clock events/sec and the event-queue high-water
// mark, and writes BENCH_scale.json so the numbers seed the perf trajectory.
//
//   $ ./bench/bench_scale              # full sweep: 10..1000 nodes
//   $ ./bench/bench_scale 500          # just one count (before/after checks)
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.h"
#include "net/testbed.h"
#include "omni/omni_node.h"

namespace {

using namespace omni;

constexpr double kSpacingM = 25.0;
constexpr double kSimSeconds = 20.0;

struct ScalePoint {
  std::size_t nodes;
  double sim_seconds;
  std::uint64_t events;
  double wall_seconds;
  double events_per_sec;
  std::uint64_t peak_pending_events;
  std::uint64_t contexts_received;
  std::size_t min_peers;
};

ScalePoint run_point(std::size_t n) {
  net::Testbed bed(42);
  std::size_t side = static_cast<std::size_t>(
      std::ceil(std::sqrt(static_cast<double>(n))));
  std::vector<net::Device*> devices;
  std::vector<std::unique_ptr<OmniNode>> nodes;
  devices.reserve(n);
  nodes.reserve(n);
  std::uint64_t contexts = 0;
  for (std::size_t i = 0; i < n; ++i) {
    double x = static_cast<double>(i % side) * kSpacingM;
    double y = static_cast<double>(i / side) * kSpacingM;
    devices.push_back(&bed.add_device("n" + std::to_string(i), {x, y}));
    nodes.push_back(std::make_unique<OmniNode>(*devices.back(), bed.mesh()));
    nodes.back()->manager().request_context(
        [&contexts](const OmniAddress&, const Bytes&) { ++contexts; });
  }
  for (auto& node : nodes) {
    node->start();
    node->manager().add_context(ContextParams{}, Bytes{0x5c}, nullptr);
  }

  auto t0 = std::chrono::steady_clock::now();
  bed.simulator().run_for(Duration::seconds(kSimSeconds));
  auto t1 = std::chrono::steady_clock::now();

  ScalePoint p;
  p.nodes = n;
  p.sim_seconds = kSimSeconds;
  p.events = bed.simulator().executed_events();
  p.wall_seconds = std::chrono::duration<double>(t1 - t0).count();
  p.events_per_sec =
      p.wall_seconds > 0 ? static_cast<double>(p.events) / p.wall_seconds : 0;
  p.peak_pending_events = bed.simulator().peak_pending_events();
  p.contexts_received = contexts;
  p.min_peers = nodes.empty() ? 0 : SIZE_MAX;
  for (auto& node : nodes) {
    p.min_peers = std::min(p.min_peers, node->manager().peer_table().size());
  }
  return p;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::size_t> counts = {10, 50, 100, 250, 500, 1000};
  if (argc > 1) {
    counts.clear();
    for (int i = 1; i < argc; ++i) {
      counts.push_back(static_cast<std::size_t>(std::atoll(argv[i])));
    }
  }

  bench::print_heading("Simulator scale sweep (beaconing + engagement on)");
  bench::Table table({"nodes", "events", "wall s", "events/s", "peak heap",
                      "min peers"});
  bench::BenchReport report("scale");
  report.set_meta("sim_seconds", bench::fmt(kSimSeconds, 0));
  report.set_meta("spacing_m", bench::fmt(kSpacingM, 0));
  report.set_meta("seed", "42");

  for (std::size_t n : counts) {
    ScalePoint p = run_point(n);
    table.add_row({std::to_string(p.nodes), std::to_string(p.events),
                   bench::fmt(p.wall_seconds, 3),
                   bench::fmt(p.events_per_sec, 0),
                   std::to_string(p.peak_pending_events),
                   std::to_string(p.min_peers)});
    report.add_row()
        .field("nodes", static_cast<std::uint64_t>(p.nodes))
        .field("sim_seconds", p.sim_seconds)
        .field("events", p.events)
        .field("wall_seconds", p.wall_seconds)
        .field("events_per_sec", p.events_per_sec)
        .field("peak_pending_events", p.peak_pending_events)
        .field("contexts_received", p.contexts_received)
        .field("min_peers", static_cast<std::uint64_t>(p.min_peers));
    std::printf("  %4zu nodes: %8.3f s wall, %10.0f events/s\n", p.nodes,
                p.wall_seconds, p.events_per_sec);
  }
  std::printf("\n");
  table.print();
  report.write_file();
  return 0;
}
