// bench_scale: device-count and thread-count sweep over the full Omni stack.
//
// For each device count, lay nodes out on a constant-density grid (25 m
// spacing: everyone has BLE neighbors, nobody hears the whole city), start
// every node with address beaconing + engagement enabled, and run a span of
// virtual time — once per thread count in the sweep. Reports wall-clock
// events/sec, the event-queue high-water mark, and the parallel speedup over
// the single-threaded run, and writes BENCH_scale.json so the numbers seed
// the perf trajectory.
//
//   $ ./bench/bench_scale              # full sweep: 10..1000 nodes x 1/2/4/8 threads
//   $ ./bench/bench_scale 500          # just one count (before/after checks)
#include <sys/resource.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "bench_util.h"
#include "net/testbed.h"
#include "obs/omniscope.h"
#include "obs/perfetto.h"
#include "obs/trace_file.h"
#include "omni/omni_node.h"

namespace {

using namespace omni;

constexpr double kSpacingM = 25.0;
constexpr double kSimSeconds = 20.0;

struct ScalePoint {
  std::size_t nodes;
  unsigned threads;
  double sim_seconds;
  std::uint64_t events;
  double wall_seconds;
  double events_per_sec;
  std::uint64_t peak_pending_events;
  std::uint64_t windows;
  std::uint64_t global_events;
  std::uint64_t mailbox_posts;
  std::uint64_t contexts_received;
  std::size_t min_peers;
  // Beacon fast-path counters summed over every node's ManagerStats (live
  // with observability off); prove in the JSON that the receive memo and
  // sender frame cache actually fired for the measured run.
  std::uint64_t beacon_decode_skips;
  std::uint64_t beacon_encodes;
  // ru_maxrss after the run, in KB on Linux. Monotonic across the process,
  // so within one bench invocation only the largest configuration's row is
  // a true high-water mark; compare like row to like row across runs.
  std::uint64_t peak_rss_kb;
  // Observability sweep extras (obs_mode > 0 only).
  std::uint64_t trace_records = 0;
  std::uint64_t trace_dropped = 0;
  double export_seconds = 0;
};

/// obs_mode: 0 = scope off (null-pointer branch per site), 1 = flight
/// recorder + metrics live at the always-on profile (per-frame records
/// gated off), 2 = additionally capture + serialize Perfetto JSON after the
/// run (timed separately as export_seconds), 3 = full per-frame detail.
ScalePoint run_point(std::size_t n, unsigned threads, int obs_mode = 0) {
  net::Testbed bed(42, radio::Calibration::defaults(), threads);
  // Modes 1/2 measure the always-on profile (counters + lifecycle records,
  // per-frame records off); mode 3 is full per-frame detail.
  if (obs_mode > 0) {
    bed.enable_observability(/*ring_capacity=*/1 << 16,
                             /*detail=*/obs_mode == 3);
  }
  std::size_t side = static_cast<std::size_t>(
      std::ceil(std::sqrt(static_cast<double>(n))));
  std::vector<net::Device*> devices;
  std::vector<std::unique_ptr<OmniNode>> nodes;
  devices.reserve(n);
  nodes.reserve(n);
  // Context receptions land on every shard concurrently; relaxed is enough
  // for a total.
  std::atomic<std::uint64_t> contexts{0};
  for (std::size_t i = 0; i < n; ++i) {
    double x = static_cast<double>(i % side) * kSpacingM;
    double y = static_cast<double>(i / side) * kSpacingM;
    devices.push_back(&bed.add_device("n" + std::to_string(i), {x, y}));
    nodes.push_back(std::make_unique<OmniNode>(*devices.back(), bed.mesh()));
    nodes.back()->manager().request_context(
        [&contexts](const OmniAddress&, const Bytes&) {
          contexts.fetch_add(1, std::memory_order_relaxed);
        });
  }
  for (auto& node : nodes) {
    node->start();
    node->manager().add_context(ContextParams{}, Bytes{0x5c}, nullptr);
  }

  auto t0 = std::chrono::steady_clock::now();
  bed.simulator().run_for(Duration::seconds(kSimSeconds));
  auto t1 = std::chrono::steady_clock::now();

  ScalePoint p;
  p.nodes = n;
  p.threads = threads;
  p.sim_seconds = kSimSeconds;
  p.events = bed.simulator().executed_events();
  p.wall_seconds = std::chrono::duration<double>(t1 - t0).count();
  p.events_per_sec =
      p.wall_seconds > 0 ? static_cast<double>(p.events) / p.wall_seconds : 0;
  p.peak_pending_events = bed.simulator().peak_pending_events();
  p.windows = bed.simulator().windows_run();
  p.global_events = bed.simulator().global_events_run();
  p.mailbox_posts = bed.simulator().mailbox_posts();
  p.contexts_received = contexts.load(std::memory_order_relaxed);
  p.min_peers = nodes.empty() ? 0 : SIZE_MAX;
  p.beacon_decode_skips = 0;
  p.beacon_encodes = 0;
  for (auto& node : nodes) {
    p.min_peers = std::min(p.min_peers, node->manager().peer_table().size());
    p.beacon_decode_skips += node->manager().stats().beacon_decode_skips;
    p.beacon_encodes += node->manager().stats().beacon_encodes;
  }
  struct rusage ru{};
  getrusage(RUSAGE_SELF, &ru);
  p.peak_rss_kb = static_cast<std::uint64_t>(ru.ru_maxrss);
  if (obs_mode > 0) {
    obs::Omniscope& scope = *bed.observability();
    p.trace_records = scope.recorder().total_written();
    p.trace_dropped = scope.recorder().dropped();
    if (obs_mode > 1) {
      auto e0 = std::chrono::steady_clock::now();
      obs::TraceCapture cap = obs::capture(scope);
      std::ostringstream json;
      obs::write_perfetto_json(json, cap);
      auto e1 = std::chrono::steady_clock::now();
      p.export_seconds = std::chrono::duration<double>(e1 - e0).count();
    }
  }
  return p;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::size_t> counts = {10, 50, 100, 250, 500, 1000};
  if (argc > 1) {
    counts.clear();
    for (int i = 1; i < argc; ++i) {
      counts.push_back(static_cast<std::size_t>(std::atoll(argv[i])));
    }
  }
  const std::vector<unsigned> thread_counts = {1, 2, 4, 8};

  bench::print_heading("Simulator scale sweep (beaconing + engagement on)");
  bench::Table table({"nodes", "threads", "events", "wall s", "events/s",
                      "speedup", "peak heap", "min peers"});
  bench::BenchReport report("scale");
  report.set_schema_version(2);
  report.set_meta("sim_seconds", bench::fmt(kSimSeconds, 0));
  report.set_meta("spacing_m", bench::fmt(kSpacingM, 0));
  report.set_meta("seed", "42");
  // Speedup numbers only mean something relative to the cores that were
  // actually available: on a 1-core box every thread count shares one core
  // and speedup_vs_1t measures pure engine overhead.
  report.set_meta("hardware_threads",
                  std::to_string(std::thread::hardware_concurrency()));

  for (std::size_t n : counts) {
    double wall_1t = 0;
    std::uint64_t events_1t = 0;
    for (unsigned threads : thread_counts) {
      ScalePoint p = run_point(n, threads);
      if (threads == 1) {
        wall_1t = p.wall_seconds;
        events_1t = p.events;
      }
      // Determinism spot check: every thread count must execute the exact
      // same event sequence.
      if (p.events != events_1t) {
        std::fprintf(stderr,
                     "DETERMINISM VIOLATION at %zu nodes: %llu events at "
                     "%u threads vs %llu at 1\n",
                     n, static_cast<unsigned long long>(p.events), threads,
                     static_cast<unsigned long long>(events_1t));
        return 1;
      }
      double speedup = p.wall_seconds > 0 ? wall_1t / p.wall_seconds : 0;
      table.add_row({std::to_string(p.nodes), std::to_string(p.threads),
                     std::to_string(p.events), bench::fmt(p.wall_seconds, 3),
                     bench::fmt(p.events_per_sec, 0), bench::fmt(speedup, 2),
                     std::to_string(p.peak_pending_events),
                     std::to_string(p.min_peers)});
      report.add_row()
          .field("nodes", static_cast<std::uint64_t>(p.nodes))
          .field("threads", static_cast<std::uint64_t>(p.threads))
          .field("sim_seconds", p.sim_seconds)
          .field("events", p.events)
          .field("wall_seconds", p.wall_seconds)
          .field("events_per_sec", p.events_per_sec)
          .field("speedup_vs_1t", speedup)
          .field("peak_pending_events", p.peak_pending_events)
          .field("windows", p.windows)
          .field("global_events", p.global_events)
          .field("mailbox_posts", p.mailbox_posts)
          .field("contexts_received", p.contexts_received)
          .field("min_peers", static_cast<std::uint64_t>(p.min_peers))
          .field("beacon_decode_skips", p.beacon_decode_skips)
          .field("beacon_encodes", p.beacon_encodes)
          .field("peak_rss_kb", p.peak_rss_kb)
          // Duplicated from meta so a row extracted on its own still says
          // how many cores its speedup_vs_1t was measured against.
          .field("hardware_threads",
                 static_cast<std::uint64_t>(
                     std::thread::hardware_concurrency()));
      std::printf("  %4zu nodes, %u threads: %8.3f s wall, %10.0f events/s"
                  " (%.2fx)  [windows %llu, global %llu, posts %llu]\n",
                  p.nodes, p.threads, p.wall_seconds, p.events_per_sec,
                  speedup, static_cast<unsigned long long>(p.windows),
                  static_cast<unsigned long long>(p.global_events),
                  static_cast<unsigned long long>(p.mailbox_posts));
    }
  }
  // Observability overhead at the largest count in the sweep: the same
  // workload with the scope off, with the flight recorder + metrics live,
  // and with a Perfetto serialization after the run. Rows carry
  // section="obs_overhead" in BENCH_scale.json (schema in README.md).
  const std::size_t obs_nodes = counts.back();
  bench::print_heading("Observability overhead");
  const char* kModes[] = {"off", "ring", "ring_export", "ring_detail"};
  double wall_off = 0;
  for (int mode = 0; mode < 4; ++mode) {
    // Best of five: these points run ~0.1 s of wall time each, where
    // scheduler noise swamps a single-digit-percent effect.
    ScalePoint p = run_point(obs_nodes, 1, mode);
    for (int rep = 1; rep < 5; ++rep) {
      ScalePoint q = run_point(obs_nodes, 1, mode);
      if (q.wall_seconds < p.wall_seconds) p = q;
    }
    if (mode == 0) wall_off = p.wall_seconds;
    double overhead =
        wall_off > 0 ? p.wall_seconds / wall_off - 1.0 : 0.0;
    report.add_row()
        .field("section", std::string("obs_overhead"))
        .field("mode", std::string(kModes[mode]))
        .field("nodes", static_cast<std::uint64_t>(obs_nodes))
        .field("threads", static_cast<std::uint64_t>(1))
        .field("sim_seconds", p.sim_seconds)
        .field("wall_seconds", p.wall_seconds)
        .field("overhead_vs_off", overhead)
        .field("trace_records", p.trace_records)
        .field("trace_dropped", p.trace_dropped)
        .field("export_seconds", p.export_seconds);
    std::printf("  %-12s %8.3f s wall (%+5.1f%%)  [records %llu, dropped "
                "%llu, export %.3f s]\n",
                kModes[mode], p.wall_seconds, overhead * 100.0,
                static_cast<unsigned long long>(p.trace_records),
                static_cast<unsigned long long>(p.trace_dropped),
                p.export_seconds);
  }

  std::printf("\n");
  table.print();
  report.write_file();
  return 0;
}
