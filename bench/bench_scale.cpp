// bench_scale: device-count and thread-count sweep over the full Omni stack.
//
// For each device count, lay nodes out on a constant-density grid (25 m
// spacing: everyone has BLE neighbors, nobody hears the whole city), start
// every node with address beaconing + engagement enabled, and run a span of
// virtual time — once per thread count in the sweep. Reports wall-clock
// events/sec, the event-queue high-water mark, and the parallel speedup over
// the single-threaded run, and writes BENCH_scale.json so the numbers seed
// the perf trajectory.
//
// The city section (--huge) scales to 100k nodes: a core of full-stack
// devices surrounded by world-only crowd nodes with deterministic background
// churn (sim::CrowdChurn) driving region migrations. It runs before the
// sweep so its peak_rss_kb is a true high-water mark for the 100k world
// (ru_maxrss is process-monotonic).
//
// Snapshot coverage rides the sweep: at 10k nodes (and in --smoke) the
// 1-thread run writes a full .osnap at the end of its span, every other
// thread count resumes against it (replay + byte-verification — the
// checkpoint/resume smoke), and the serialized size is gated at
// <= 1 KB per full-stack node (<= 64 B per crowd node in the city) and
// reported as snapshot_bytes in BENCH_scale.json. The .osnap file is left
// behind for `omnisnap verify`.
//
//   $ ./bench/bench_scale              # full sweep: 10..10000 nodes x 1/2/4/8 threads
//   $ ./bench/bench_scale 500          # just one count (before/after checks)
//   $ ./bench/bench_scale 10000 --smoke  # CI: short run, 1/2 threads, no obs
//   $ ./bench/bench_scale --huge       # adds the 100k-node city section
#include <sys/resource.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "net/testbed.h"
#include "obs/omniscope.h"
#include "obs/perfetto.h"
#include "obs/trace_file.h"
#include "omni/manager_snapshot.h"
#include "omni/omni_node.h"
#include "sim/mobility.h"
#include "sim/snapshot.h"

namespace {

using namespace omni;

constexpr double kSpacingM = 25.0;
// RSS budgets policed at scale (documented in README.md / DESIGN.md): a
// full-stack device — radios, manager, beacon state, event lanes — may cost
// up to 40 KB of peak RSS amortized; a city node (crowd-dominated mix) up to
// 1 KB; and the world layer itself ~100 B per idle node, asserted with
// headroom for allocator slack via World::memory_stats().
constexpr double kFullStackRssBudgetKb = 40.0;
constexpr double kCityRssBudgetKb = 1.0;
constexpr double kWorldBytesBudget = 192.0;
// Serialized snapshot budgets: a full-stack device (manager record, RNG
// stream, world row, pending events) may cost up to 1 KB of .osnap; a
// world-only crowd node up to 64 B (one SoA row plus queue amortization).
constexpr double kSnapshotFullStackBudget = 1024.0;
constexpr double kSnapshotCrowdBudget = 64.0;

// Sanitizers multiply RSS with shadow memory and redzones, so the
// whole-process budgets above only hold in plain builds. The
// capacity-accounted world_bytes_per_node budget is exact everywhere.
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
constexpr bool kSanitizedBuild = true;
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer) || \
    __has_feature(memory_sanitizer)
constexpr bool kSanitizedBuild = true;
#else
constexpr bool kSanitizedBuild = false;
#endif
#else
constexpr bool kSanitizedBuild = false;
#endif

double g_sim_seconds = 20.0;

struct ScalePoint {
  std::size_t nodes;
  unsigned threads;
  double sim_seconds;
  std::uint64_t events;
  double wall_seconds;
  double events_per_sec;
  std::uint64_t peak_pending_events;
  std::uint64_t windows;
  std::uint64_t global_events;
  std::uint64_t mailbox_posts;
  std::uint64_t contexts_received;
  std::size_t min_peers;
  // Beacon fast-path counters summed over every node's ManagerStats (live
  // with observability off); prove in the JSON that the receive memo and
  // sender frame cache actually fired for the measured run.
  std::uint64_t beacon_decode_skips;
  std::uint64_t beacon_encodes;
  // Region-sharded world telemetry (schema v3): region tiles instantiated,
  // nodes handed between regions on mobility events, and mailbox posts whose
  // source and destination shards differ (cross-region coupling; unlike
  // mailbox_posts this depends on owner->shard placement).
  std::uint64_t regions;
  std::uint64_t migrations;
  std::uint64_t cross_region_mailbox_posts;
  // ru_maxrss after the run, in KB on Linux. Monotonic across the process,
  // so within one bench invocation only the largest configuration's row is
  // a true high-water mark; compare like row to like row across runs.
  std::uint64_t peak_rss_kb;
  // Discovery scheduler telemetry (schema v4): beacons saved vs the floor
  // rate and the fleet-mean adaptive interval at run end. Under the default
  // fixed policy both stay at 0 / 500.
  std::uint64_t beacons_suppressed = 0;
  double mean_beacon_interval_ms = 0;
  // City section extras (zero elsewhere).
  std::uint64_t crowd_nodes = 0;
  std::uint64_t churn_moves = 0;
  double world_bytes_per_node = 0;
  // Observability sweep extras (obs_mode > 0 only).
  std::uint64_t trace_records = 0;
  std::uint64_t trace_dropped = 0;
  double export_seconds = 0;
  // Snapshot extras (zero unless the run captured one).
  std::uint64_t snapshot_bytes = 0;
  bool resume_armed = false;
  bool resume_ok = false;
  std::string resume_error;
};

void collect_engine(net::Testbed& bed, ScalePoint& p) {
  p.events = bed.simulator().executed_events();
  p.peak_pending_events = bed.simulator().peak_pending_events();
  p.windows = bed.simulator().windows_run();
  p.global_events = bed.simulator().global_events_run();
  p.mailbox_posts = bed.simulator().mailbox_posts();
  p.regions = bed.world().region_count();
  p.migrations = bed.world().migrations();
  p.cross_region_mailbox_posts = bed.simulator().cross_shard_mailbox_posts();
  struct rusage ru{};
  getrusage(RUSAGE_SELF, &ru);
  p.peak_rss_kb = static_cast<std::uint64_t>(ru.ru_maxrss);
}

/// obs_mode: 0 = scope off (null-pointer branch per site), 1 = flight
/// recorder + metrics live at the always-on profile (per-frame records
/// gated off), 2 = additionally capture + serialize Perfetto JSON after the
/// run (timed separately as export_seconds), 3 = full per-frame detail.
/// snap_path: write a full .osnap at end-of-span (and report its size).
/// resume_path: anchor this run to a snapshot written by a previous run of
/// the same configuration; the end-of-span capture then byte-verifies the
/// replayed state (the checkpoint/resume smoke).
ScalePoint run_point(std::size_t n, unsigned threads, int obs_mode = 0,
                     DiscoveryPolicy discovery = {},
                     const std::string& snap_path = "",
                     const std::string& resume_path = "") {
  net::Testbed bed(42, radio::Calibration::defaults(), threads);
  bed.set_discovery_policy(discovery);
  // Modes 1/2 measure the always-on profile (counters + lifecycle records,
  // per-frame records off); mode 3 is full per-frame detail.
  if (obs_mode > 0) {
    bed.enable_observability(/*ring_capacity=*/1 << 16,
                             /*detail=*/obs_mode == 3);
  }
  OmniNodeOptions node_opts;
  node_opts.manager.discovery = bed.discovery_policy();
  std::size_t side = static_cast<std::size_t>(
      std::ceil(std::sqrt(static_cast<double>(n))));
  std::vector<net::Device*> devices;
  std::vector<std::unique_ptr<OmniNode>> nodes;
  devices.reserve(n);
  nodes.reserve(n);
  // Context receptions land on every shard concurrently; relaxed is enough
  // for a total.
  std::atomic<std::uint64_t> contexts{0};
  for (std::size_t i = 0; i < n; ++i) {
    double x = static_cast<double>(i % side) * kSpacingM;
    double y = static_cast<double>(i / side) * kSpacingM;
    devices.push_back(&bed.add_device("n" + std::to_string(i), {x, y}));
    nodes.push_back(
        std::make_unique<OmniNode>(*devices.back(), bed.mesh(), node_opts));
    nodes.back()->manager().request_context(
        [&contexts](const OmniAddress&, const Bytes&) {
          contexts.fetch_add(1, std::memory_order_relaxed);
        });
  }
  for (auto& node : nodes) {
    node->start();
    node->manager().add_context(ContextParams{}, Bytes{0x5c}, nullptr);
  }

  // Snapshot coverage: manager records ride along (digest-only peer tables
  // at fleet scale — same verification strength, bounded size).
  ScalePoint p;
  if (!snap_path.empty() || !resume_path.empty()) {
    bed.add_snapshot_source([&nodes, n](sim::Snapshot& snap) {
      std::vector<const OmniManager*> managers;
      managers.reserve(nodes.size());
      for (const auto& node : nodes) managers.push_back(&node->manager());
      capture_managers(managers, /*deep=*/n <= 64, snap);
    });
  }
  if (!resume_path.empty()) {
    p.resume_armed = true;
    auto anchored = bed.resume_from(resume_path);
    if (!anchored.is_ok()) {
      p.nodes = n;
      p.threads = threads;
      p.resume_error = anchored.error_message();
      return p;
    }
  }

  auto t0 = std::chrono::steady_clock::now();
  bed.simulator().run_for(Duration::seconds(g_sim_seconds));
  auto t1 = std::chrono::steady_clock::now();

  // End-of-span capture: writes the file, and/or triggers the resume
  // byte-verification (the replayed run reaches the same instant).
  if (!snap_path.empty() || !resume_path.empty()) {
    sim::Snapshot snap = bed.capture_snapshot("scale");
    p.snapshot_bytes = sim::serialize_snapshot(snap).size();
    if (!snap_path.empty()) {
      Status ws = sim::write_snapshot_file(snap_path, snap);
      if (!ws.is_ok()) {
        std::fprintf(stderr, "warning: %s\n", ws.message().c_str());
      }
    }
    if (!resume_path.empty()) {
      if (bed.resume_verified()) {
        p.resume_ok = true;
      } else {
        p.resume_error = bed.resume_pending()
                             ? "the run never reached the snapshot instant"
                             : bed.resume_error();
      }
    }
  }

  p.nodes = n;
  p.threads = threads;
  p.sim_seconds = g_sim_seconds;
  p.wall_seconds = std::chrono::duration<double>(t1 - t0).count();
  collect_engine(bed, p);
  p.events_per_sec =
      p.wall_seconds > 0 ? static_cast<double>(p.events) / p.wall_seconds : 0;
  p.contexts_received = contexts.load(std::memory_order_relaxed);
  p.min_peers = nodes.empty() ? 0 : SIZE_MAX;
  p.beacon_decode_skips = 0;
  p.beacon_encodes = 0;
  double interval_sum_ms = 0;
  for (auto& node : nodes) {
    p.min_peers = std::min(p.min_peers, node->manager().peer_table().size());
    p.beacon_decode_skips += node->manager().stats().beacon_decode_skips;
    p.beacon_encodes += node->manager().stats().beacon_encodes;
    p.beacons_suppressed += node->manager().stats().beacons_suppressed;
    interval_sum_ms += static_cast<double>(
        node->manager().current_beacon_interval().as_millis());
  }
  if (!nodes.empty()) {
    p.mean_beacon_interval_ms =
        interval_sum_ms / static_cast<double>(nodes.size());
  }
  if (obs_mode > 0) {
    obs::Omniscope& scope = *bed.observability();
    p.trace_records = scope.recorder().total_written();
    p.trace_dropped = scope.recorder().dropped();
    if (obs_mode > 1) {
      auto e0 = std::chrono::steady_clock::now();
      obs::TraceCapture cap = obs::capture(scope);
      std::ostringstream json;
      obs::write_perfetto_json(json, cap);
      auto e1 = std::chrono::steady_clock::now();
      p.export_seconds = std::chrono::duration<double>(e1 - e0).count();
    }
  }
  return p;
}

/// City mode: `core` full-stack devices occupying a square block of the
/// lattice (same 25 m density the sweep measures, so their radio
/// neighborhoods match the plain `core`-node sweep point) inside a crowd of
/// world-only nodes filling the rest of the constant-density grid, with
/// deterministic churn walking a slice of the crowd between regions.
ScalePoint run_city(std::size_t n, std::size_t core, unsigned threads,
                    DiscoveryPolicy discovery = {},
                    const std::string& snap_path = "") {
  net::Testbed bed(42, radio::Calibration::defaults(), threads);
  bed.set_discovery_policy(discovery);
  OmniNodeOptions node_opts;
  node_opts.manager.discovery = bed.discovery_policy();
  std::size_t side = static_cast<std::size_t>(
      std::ceil(std::sqrt(static_cast<double>(n))));
  std::size_t core_side = static_cast<std::size_t>(
      std::ceil(std::sqrt(static_cast<double>(core))));
  std::vector<net::Device*> devices;
  std::vector<std::unique_ptr<OmniNode>> nodes;
  devices.reserve(core);
  nodes.reserve(core);
  std::vector<NodeId> movers;
  std::size_t crowd = 0;
  std::atomic<std::uint64_t> contexts{0};
  for (std::size_t i = 0; i < n; ++i) {
    std::size_t col = i % side;
    std::size_t row = i / side;
    double x = static_cast<double>(col) * kSpacingM;
    double y = static_cast<double>(row) * kSpacingM;
    if (col < core_side && row < core_side && devices.size() < core) {
      devices.push_back(&bed.add_device("n" + std::to_string(i), {x, y}));
      nodes.push_back(
          std::make_unique<OmniNode>(*devices.back(), bed.mesh(), node_opts));
      nodes.back()->manager().request_context(
          [&contexts](const OmniAddress&, const Bytes&) {
            contexts.fetch_add(1, std::memory_order_relaxed);
          });
    } else {
      NodeId id = bed.add_crowd_node("c" + std::to_string(i), {x, y});
      // Every 16th crowd node wanders; the rest stand still.
      if (crowd++ % 16 == 0) movers.push_back(id);
    }
  }
  for (auto& node : nodes) {
    node->start();
    node->manager().add_context(ContextParams{}, Bytes{0x5c}, nullptr);
  }
  sim::CrowdChurn::Options churn_opts;
  churn_opts.area_min = {0, 0};
  double extent = static_cast<double>(side - 1) * kSpacingM;
  churn_opts.area_max = {extent, extent};
  churn_opts.per_tick = 200;
  sim::CrowdChurn churn(bed.world(), std::move(movers), churn_opts, 4242);
  churn.start();

  auto t0 = std::chrono::steady_clock::now();
  bed.simulator().run_for(Duration::seconds(g_sim_seconds));
  auto t1 = std::chrono::steady_clock::now();
  churn.stop();

  ScalePoint p;
  // City snapshot: the crowd dominates, so this measures the per-node cost
  // of the world SoA rows; manager records are digest-only at this scale.
  if (!snap_path.empty()) {
    bed.add_snapshot_source([&nodes](sim::Snapshot& snap) {
      std::vector<const OmniManager*> managers;
      managers.reserve(nodes.size());
      for (const auto& node : nodes) managers.push_back(&node->manager());
      capture_managers(managers, /*deep=*/false, snap);
    });
    sim::Snapshot snap = bed.capture_snapshot("city");
    p.snapshot_bytes = sim::serialize_snapshot(snap).size();
    Status ws = sim::write_snapshot_file(snap_path, snap);
    if (!ws.is_ok()) {
      std::fprintf(stderr, "warning: %s\n", ws.message().c_str());
    }
  }
  p.nodes = n;
  p.threads = threads;
  p.sim_seconds = g_sim_seconds;
  p.wall_seconds = std::chrono::duration<double>(t1 - t0).count();
  collect_engine(bed, p);
  p.events_per_sec =
      p.wall_seconds > 0 ? static_cast<double>(p.events) / p.wall_seconds : 0;
  p.contexts_received = contexts.load(std::memory_order_relaxed);
  p.min_peers = nodes.empty() ? 0 : SIZE_MAX;
  p.beacon_decode_skips = 0;
  p.beacon_encodes = 0;
  double interval_sum_ms = 0;
  for (auto& node : nodes) {
    p.min_peers = std::min(p.min_peers, node->manager().peer_table().size());
    p.beacon_decode_skips += node->manager().stats().beacon_decode_skips;
    p.beacon_encodes += node->manager().stats().beacon_encodes;
    p.beacons_suppressed += node->manager().stats().beacons_suppressed;
    interval_sum_ms += static_cast<double>(
        node->manager().current_beacon_interval().as_millis());
  }
  if (!nodes.empty()) {
    p.mean_beacon_interval_ms =
        interval_sum_ms / static_cast<double>(nodes.size());
  }
  p.crowd_nodes = n - core;
  p.churn_moves = churn.moves_started();
  sim::World::MemoryStats ws = bed.world().memory_stats();
  p.world_bytes_per_node =
      static_cast<double>(ws.total()) /
      static_cast<double>(bed.world().node_count());
  return p;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::size_t> counts = {10, 50, 100, 250, 500, 1000, 10000};
  std::vector<std::size_t> explicit_counts;
  bool huge = false;
  bool smoke = false;
  DiscoveryPolicy sweep_policy;  // default: fixed 500 ms (paper cadence)
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--huge") == 0) {
      huge = true;
    } else if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--discovery=adaptive") == 0) {
      sweep_policy.mode = DiscoveryPolicy::Mode::kAdaptive;
    } else if (std::strcmp(argv[i], "--discovery=fixed") == 0) {
      sweep_policy.mode = DiscoveryPolicy::Mode::kFixed;
    } else {
      explicit_counts.push_back(
          static_cast<std::size_t>(std::atoll(argv[i])));
    }
  }
  if (!explicit_counts.empty()) counts = explicit_counts;
  // Smoke profile (CI): a short virtual-time slice on a reduced thread
  // sweep, no observability section — enough to exercise the 10k region
  // machinery, the determinism check, and the RSS budget inside a time box.
  if (smoke) g_sim_seconds = 5.0;
  const std::vector<unsigned> thread_counts =
      smoke ? std::vector<unsigned>{1, 2} : std::vector<unsigned>{1, 2, 4, 8};

  bench::print_heading("Simulator scale sweep (beaconing + engagement on)");
  bench::Table table({"nodes", "threads", "events", "wall s", "events/s",
                      "speedup", "peak heap", "min peers"});
  bench::BenchReport report("scale");
  report.set_schema_version(4);
  report.set_meta("sim_seconds", bench::fmt(g_sim_seconds, 0));
  report.set_meta("spacing_m", bench::fmt(kSpacingM, 0));
  report.set_meta("seed", "42");
  report.set_meta("discovery",
                  sweep_policy.mode == DiscoveryPolicy::Mode::kAdaptive
                      ? "adaptive"
                      : "fixed");
  report.set_meta("region_cells",
                  std::to_string(sim::World::kDefaultRegionCells));
  // Speedup numbers only mean something relative to the cores that were
  // actually available: on a 1-core box every thread count shares one core
  // and speedup_vs_1t measures pure engine overhead.
  report.set_meta("hardware_threads",
                  std::to_string(std::thread::hardware_concurrency()));

  // City section first (see file comment: ru_maxrss is process-monotonic).
  // The city runs once per discovery policy — fixed (the paper's 500 ms
  // cadence) then adaptive — each across the thread sweep with a bit-exact
  // determinism check; adaptive must then cut total events >= 25% vs fixed.
  if (huge) {
    constexpr std::size_t kCityNodes = 100000;
    constexpr std::size_t kCityCore = 1000;
    constexpr double kCityAdaptiveEventCut = 0.25;
    bench::print_heading("City (100k nodes: 1k devices + 99k crowd, churn)");
    std::uint64_t fixed_events = 0, adaptive_events = 0;
    for (int adaptive = 0; adaptive <= 1; ++adaptive) {
      DiscoveryPolicy city_policy;
      if (adaptive != 0) city_policy.mode = DiscoveryPolicy::Mode::kAdaptive;
      const char* policy_name = adaptive != 0 ? "adaptive" : "fixed";
      std::uint64_t events_1t = 0, contexts_1t = 0, migrations_1t = 0;
      for (unsigned threads : {1u, 2u, 8u}) {
        // The 1-thread fixed-policy run leaves scale_city.osnap behind for
        // `omnisnap verify` and the per-node size gate.
        const std::string city_snap =
            (adaptive == 0 && threads == 1) ? "scale_city.osnap" : "";
        ScalePoint p =
            run_city(kCityNodes, kCityCore, threads, city_policy, city_snap);
        if (p.snapshot_bytes > 0) {
          const double budget = kSnapshotFullStackBudget *
                                    static_cast<double>(kCityCore) +
                                kSnapshotCrowdBudget *
                                    static_cast<double>(p.crowd_nodes);
          std::printf("  city snapshot: %llu bytes (budget %.0f)\n",
                      static_cast<unsigned long long>(p.snapshot_bytes),
                      budget);
          if (static_cast<double>(p.snapshot_bytes) > budget) {
            std::fprintf(stderr,
                         "CITY SNAPSHOT BUDGET EXCEEDED: %llu bytes > %.0f "
                         "(%zu full-stack x %.0f + %llu crowd x %.0f)\n",
                         static_cast<unsigned long long>(p.snapshot_bytes),
                         budget, kCityCore, kSnapshotFullStackBudget,
                         static_cast<unsigned long long>(p.crowd_nodes),
                         kSnapshotCrowdBudget);
            return 1;
          }
        }
        if (threads == 1) {
          events_1t = p.events;
          contexts_1t = p.contexts_received;
          migrations_1t = p.migrations;
          (adaptive != 0 ? adaptive_events : fixed_events) = p.events;
        } else if (p.events != events_1t ||
                   p.contexts_received != contexts_1t ||
                   p.migrations != migrations_1t) {
          std::fprintf(stderr,
                       "CITY DETERMINISM VIOLATION (%s) at %u threads: "
                       "events %llu vs %llu, contexts %llu vs %llu, "
                       "migrations %llu vs %llu\n",
                       policy_name, threads,
                       static_cast<unsigned long long>(p.events),
                       static_cast<unsigned long long>(events_1t),
                       static_cast<unsigned long long>(p.contexts_received),
                       static_cast<unsigned long long>(contexts_1t),
                       static_cast<unsigned long long>(p.migrations),
                       static_cast<unsigned long long>(migrations_1t));
          return 1;
        }
        double rss_per_node = static_cast<double>(p.peak_rss_kb) /
                              static_cast<double>(p.nodes);
        if (!kSanitizedBuild && rss_per_node > kCityRssBudgetKb) {
          std::fprintf(stderr,
                       "CITY RSS BUDGET EXCEEDED: %.2f KB/node > %.2f\n",
                       rss_per_node, kCityRssBudgetKb);
          return 1;
        }
        if (p.world_bytes_per_node > kWorldBytesBudget) {
          std::fprintf(stderr,
                       "WORLD BYTES BUDGET EXCEEDED: %.1f B/node > %.0f\n",
                       p.world_bytes_per_node, kWorldBytesBudget);
          return 1;
        }
        report.add_row()
            .field("section", std::string("city"))
            .field("discovery", std::string(policy_name))
            .field("nodes", static_cast<std::uint64_t>(p.nodes))
            .field("crowd_nodes", p.crowd_nodes)
            .field("threads", static_cast<std::uint64_t>(p.threads))
            .field("sim_seconds", p.sim_seconds)
            .field("events", p.events)
            .field("wall_seconds", p.wall_seconds)
            .field("events_per_sec", p.events_per_sec)
            .field("windows", p.windows)
            .field("global_events", p.global_events)
            .field("mailbox_posts", p.mailbox_posts)
            .field("regions", p.regions)
            .field("migrations", p.migrations)
            .field("cross_region_mailbox_posts", p.cross_region_mailbox_posts)
            .field("churn_moves", p.churn_moves)
            .field("contexts_received", p.contexts_received)
            .field("min_peers", static_cast<std::uint64_t>(p.min_peers))
            .field("beacons_suppressed", p.beacons_suppressed)
            .field("mean_beacon_interval_ms", p.mean_beacon_interval_ms)
            .field("peak_rss_kb", p.peak_rss_kb)
            .field("world_bytes_per_node", p.world_bytes_per_node)
            .field("snapshot_bytes", p.snapshot_bytes)
            .field("hardware_threads",
                   static_cast<std::uint64_t>(
                       std::thread::hardware_concurrency()));
        std::printf("  %6zu nodes, %u threads, %-8s: %8.3f s wall, %10.0f "
                    "events/s  [regions %llu, migrations %llu, xposts %llu, "
                    "suppressed %llu, rss %.2f KB/node, world %.0f B/node]\n",
                    p.nodes, p.threads, policy_name, p.wall_seconds,
                    p.events_per_sec,
                    static_cast<unsigned long long>(p.regions),
                    static_cast<unsigned long long>(p.migrations),
                    static_cast<unsigned long long>(
                        p.cross_region_mailbox_posts),
                    static_cast<unsigned long long>(p.beacons_suppressed),
                    rss_per_node, p.world_bytes_per_node);
      }
    }
    const double cut =
        fixed_events > 0
            ? 1.0 - static_cast<double>(adaptive_events) /
                        static_cast<double>(fixed_events)
            : 0.0;
    std::printf("  adaptive event cut vs fixed: %.1f%% (gate >= %.0f%%)\n",
                cut * 100.0, kCityAdaptiveEventCut * 100.0);
    if (cut < kCityAdaptiveEventCut) {
      std::fprintf(stderr,
                   "CITY ADAPTIVE EVENT CUT TOO SMALL: %.1f%% < %.0f%% "
                   "(%llu -> %llu events)\n",
                   cut * 100.0, kCityAdaptiveEventCut * 100.0,
                   static_cast<unsigned long long>(fixed_events),
                   static_cast<unsigned long long>(adaptive_events));
      return 1;
    }
  }

  for (std::size_t n : counts) {
    double wall_1t = 0;
    std::uint64_t events_1t = 0;
    // Snapshot + resume smoke at scale: the first thread count writes a
    // full .osnap at end-of-span; every later thread count replays against
    // it and must byte-verify (cross-thread resume, no separate run).
    const bool snap_here = smoke || n >= 10000;
    const std::string snap_file =
        snap_here ? (smoke ? std::string("scale_smoke.osnap")
                           : "scale_" + std::to_string(n) + ".osnap")
                  : std::string();
    for (unsigned threads : thread_counts) {
      const bool writes_snap = snap_here && threads == thread_counts.front();
      ScalePoint p = run_point(n, threads, /*obs_mode=*/0, sweep_policy,
                               writes_snap ? snap_file : "",
                               writes_snap ? "" : snap_file);
      if (p.resume_armed) {
        if (p.resume_ok) {
          std::printf("  %5zu nodes, %u threads: resume verified "
                      "byte-identical against %s\n",
                      n, threads, snap_file.c_str());
        } else {
          std::fprintf(stderr, "RESUME FAILED at %zu nodes, %u threads: %s\n",
                       n, threads, p.resume_error.c_str());
          return 1;
        }
      }
      if (writes_snap) {
        const double per_node = static_cast<double>(p.snapshot_bytes) /
                                static_cast<double>(n);
        std::printf("  %5zu nodes snapshot: %llu bytes (%.0f B/node, budget "
                    "%.0f) -> %s\n",
                    n, static_cast<unsigned long long>(p.snapshot_bytes),
                    per_node, kSnapshotFullStackBudget, snap_file.c_str());
        if (n >= 10000 && per_node > kSnapshotFullStackBudget) {
          std::fprintf(stderr,
                       "SNAPSHOT BUDGET EXCEEDED at %zu nodes: %.0f B/node "
                       "> %.0f\n",
                       n, per_node, kSnapshotFullStackBudget);
          return 1;
        }
      }
      if (threads == 1) {
        wall_1t = p.wall_seconds;
        events_1t = p.events;
      }
      // Determinism spot check: every thread count must execute the exact
      // same event sequence.
      if (p.events != events_1t) {
        std::fprintf(stderr,
                     "DETERMINISM VIOLATION at %zu nodes: %llu events at "
                     "%u threads vs %llu at 1\n",
                     n, static_cast<unsigned long long>(p.events), threads,
                     static_cast<unsigned long long>(events_1t));
        return 1;
      }
      // RSS budget: full-stack devices are allowed kFullStackRssBudgetKb
      // each, policed where the fixed process baseline stops mattering.
      if (!kSanitizedBuild && n >= 10000) {
        double rss_per_node = static_cast<double>(p.peak_rss_kb) /
                              static_cast<double>(n);
        if (rss_per_node > kFullStackRssBudgetKb) {
          std::fprintf(stderr,
                       "RSS BUDGET EXCEEDED at %zu nodes: %.2f KB/node > "
                       "%.1f\n",
                       n, rss_per_node, kFullStackRssBudgetKb);
          return 1;
        }
      }
      double speedup = p.wall_seconds > 0 ? wall_1t / p.wall_seconds : 0;
      table.add_row({std::to_string(p.nodes), std::to_string(p.threads),
                     std::to_string(p.events), bench::fmt(p.wall_seconds, 3),
                     bench::fmt(p.events_per_sec, 0), bench::fmt(speedup, 2),
                     std::to_string(p.peak_pending_events),
                     std::to_string(p.min_peers)});
      report.add_row()
          .field("nodes", static_cast<std::uint64_t>(p.nodes))
          .field("threads", static_cast<std::uint64_t>(p.threads))
          .field("sim_seconds", p.sim_seconds)
          .field("events", p.events)
          .field("wall_seconds", p.wall_seconds)
          .field("events_per_sec", p.events_per_sec)
          .field("speedup_vs_1t", speedup)
          .field("peak_pending_events", p.peak_pending_events)
          .field("windows", p.windows)
          .field("global_events", p.global_events)
          .field("mailbox_posts", p.mailbox_posts)
          .field("regions", p.regions)
          .field("migrations", p.migrations)
          .field("cross_region_mailbox_posts", p.cross_region_mailbox_posts)
          .field("contexts_received", p.contexts_received)
          .field("min_peers", static_cast<std::uint64_t>(p.min_peers))
          .field("beacon_decode_skips", p.beacon_decode_skips)
          .field("beacon_encodes", p.beacon_encodes)
          .field("beacons_suppressed", p.beacons_suppressed)
          .field("mean_beacon_interval_ms", p.mean_beacon_interval_ms)
          .field("peak_rss_kb", p.peak_rss_kb)
          .field("snapshot_bytes", p.snapshot_bytes)
          // Duplicated from meta so a row extracted on its own still says
          // how many cores its speedup_vs_1t was measured against.
          .field("hardware_threads",
                 static_cast<std::uint64_t>(
                     std::thread::hardware_concurrency()));
      std::printf("  %5zu nodes, %u threads: %8.3f s wall, %10.0f events/s"
                  " (%.2fx)  [windows %llu, global %llu, posts %llu, "
                  "xposts %llu, regions %llu]\n",
                  p.nodes, p.threads, p.wall_seconds, p.events_per_sec,
                  speedup, static_cast<unsigned long long>(p.windows),
                  static_cast<unsigned long long>(p.global_events),
                  static_cast<unsigned long long>(p.mailbox_posts),
                  static_cast<unsigned long long>(
                      p.cross_region_mailbox_posts),
                  static_cast<unsigned long long>(p.regions));
    }
  }
  // Observability overhead: the same workload with the scope off, with the
  // flight recorder + metrics live, and with a Perfetto serialization after
  // the run. Rows carry section="obs_overhead" in BENCH_scale.json (schema
  // in README.md). Capped at 1000 nodes — the obs delta is per-event, and
  // five repetitions of a 10k run would dominate the bench for no extra
  // signal. Skipped in --smoke (CI time box).
  if (!smoke) {
    std::size_t obs_nodes = counts.back();
    for (std::size_t n : counts) {
      if (n <= 1000 && n > (obs_nodes > 1000 ? 0 : obs_nodes)) obs_nodes = n;
    }
    if (obs_nodes > 1000) obs_nodes = 1000;
    bench::print_heading("Observability overhead");
    const char* kModes[] = {"off", "ring", "ring_export", "ring_detail"};
    double wall_off = 0;
    for (int mode = 0; mode < 4; ++mode) {
      // Best of five: these points run ~0.1 s of wall time each, where
      // scheduler noise swamps a single-digit-percent effect.
      ScalePoint p = run_point(obs_nodes, 1, mode);
      for (int rep = 1; rep < 5; ++rep) {
        ScalePoint q = run_point(obs_nodes, 1, mode);
        if (q.wall_seconds < p.wall_seconds) p = q;
      }
      if (mode == 0) wall_off = p.wall_seconds;
      double overhead =
          wall_off > 0 ? p.wall_seconds / wall_off - 1.0 : 0.0;
      report.add_row()
          .field("section", std::string("obs_overhead"))
          .field("mode", std::string(kModes[mode]))
          .field("nodes", static_cast<std::uint64_t>(obs_nodes))
          .field("threads", static_cast<std::uint64_t>(1))
          .field("sim_seconds", p.sim_seconds)
          .field("wall_seconds", p.wall_seconds)
          .field("overhead_vs_off", overhead)
          .field("trace_records", p.trace_records)
          .field("trace_dropped", p.trace_dropped)
          .field("export_seconds", p.export_seconds);
      std::printf("  %-12s %8.3f s wall (%+5.1f%%)  [records %llu, dropped "
                  "%llu, export %.3f s]\n",
                  kModes[mode], p.wall_seconds, overhead * 100.0,
                  static_cast<unsigned long long>(p.trace_records),
                  static_cast<unsigned long long>(p.trace_dropped),
                  p.export_seconds);
    }
  }

  std::printf("\n");
  table.print();
  report.write_file();
  return 0;
}
