// Shared table/report formatting for the experiment benches. Each bench
// prints the paper's value next to the measured value so EXPERIMENTS.md can
// be regenerated directly from the bench output.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

namespace omni::bench {

inline void print_heading(const std::string& title) {
  std::printf("\n==================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("==================================================\n");
}

/// One paper-vs-measured comparison line.
inline void print_compare(const std::string& label, double paper,
                          double measured, const char* unit) {
  if (paper != paper) {  // NaN = not applicable in the paper
    std::printf("  %-38s paper:      N/A   measured: %9.2f %s\n",
                label.c_str(), measured, unit);
    return;
  }
  double ratio = paper != 0 ? measured / paper : 0;
  std::printf("  %-38s paper: %9.2f   measured: %9.2f %s  (x%.2f)\n",
              label.c_str(), paper, measured, unit, ratio);
}

inline void print_na(const std::string& label) {
  std::printf("  %-38s paper:      N/A   measured:       N/A\n",
              label.c_str());
}

/// Simple fixed-width table printer.
class Table {
 public:
  explicit Table(std::vector<std::string> headers)
      : headers_(std::move(headers)) {}

  void add_row(std::vector<std::string> cells) {
    rows_.push_back(std::move(cells));
  }

  void print() const {
    std::vector<std::size_t> widths(headers_.size(), 0);
    auto widen = [&](const std::vector<std::string>& row) {
      for (std::size_t i = 0; i < row.size() && i < widths.size(); ++i) {
        widths[i] = std::max(widths[i], row[i].size());
      }
    };
    widen(headers_);
    for (const auto& row : rows_) widen(row);
    auto print_row = [&](const std::vector<std::string>& row) {
      std::printf(" ");
      for (std::size_t i = 0; i < widths.size(); ++i) {
        const std::string& cell = i < row.size() ? row[i] : std::string();
        std::printf(" %-*s", static_cast<int>(widths[i]), cell.c_str());
      }
      std::printf("\n");
    };
    print_row(headers_);
    std::vector<std::string> sep;
    for (auto w : widths) sep.push_back(std::string(w, '-'));
    print_row(sep);
    for (const auto& row : rows_) print_row(row);
  }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

inline std::string fmt(double v, int decimals = 2) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", decimals, v);
  return buf;
}

}  // namespace omni::bench
