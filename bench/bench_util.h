// Shared table/report formatting for the experiment benches. Each bench
// prints the paper's value next to the measured value so EXPERIMENTS.md can
// be regenerated directly from the bench output. Benches that feed the perf
// trajectory additionally emit a machine-readable BENCH_<name>.json via
// BenchReport below.
#pragma once

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

namespace omni::bench {

inline void print_heading(const std::string& title) {
  std::printf("\n==================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("==================================================\n");
}

/// One paper-vs-measured comparison line.
inline void print_compare(const std::string& label, double paper,
                          double measured, const char* unit) {
  if (paper != paper) {  // NaN = not applicable in the paper
    std::printf("  %-38s paper:      N/A   measured: %9.2f %s\n",
                label.c_str(), measured, unit);
    return;
  }
  if (paper == 0) {
    // A zero paper value has no meaningful ratio; "(x0.00)" would read as a
    // regression.
    std::printf("  %-38s paper: %9.2f   measured: %9.2f %s  (n/a)\n",
                label.c_str(), paper, measured, unit);
    return;
  }
  std::printf("  %-38s paper: %9.2f   measured: %9.2f %s  (x%.2f)\n",
              label.c_str(), paper, measured, unit, measured / paper);
}

inline void print_na(const std::string& label) {
  std::printf("  %-38s paper:      N/A   measured:       N/A\n",
              label.c_str());
}

/// Simple fixed-width table printer.
class Table {
 public:
  explicit Table(std::vector<std::string> headers)
      : headers_(std::move(headers)) {}

  void add_row(std::vector<std::string> cells) {
    rows_.push_back(std::move(cells));
  }

  void print() const {
    std::vector<std::size_t> widths(headers_.size(), 0);
    auto widen = [&](const std::vector<std::string>& row) {
      for (std::size_t i = 0; i < row.size() && i < widths.size(); ++i) {
        widths[i] = std::max(widths[i], row[i].size());
      }
    };
    widen(headers_);
    for (const auto& row : rows_) widen(row);
    auto print_row = [&](const std::vector<std::string>& row) {
      std::printf(" ");
      for (std::size_t i = 0; i < widths.size(); ++i) {
        const std::string& cell = i < row.size() ? row[i] : std::string();
        std::printf(" %-*s", static_cast<int>(widths[i]), cell.c_str());
      }
      std::printf("\n");
    };
    print_row(headers_);
    std::vector<std::string> sep;
    for (auto w : widths) sep.push_back(std::string(w, '-'));
    print_row(sep);
    for (const auto& row : rows_) print_row(row);
  }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

inline std::string fmt(double v, int decimals = 2) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", decimals, v);
  return buf;
}

/// Machine-readable bench output: one report = one BENCH_<name>.json file.
///
/// Schema (stable; consumed by the perf-trajectory tooling):
///   {
///     "bench": "<name>",
///     "schema_version": 1,
///     "meta": { "<key>": "<value>", ... },
///     "results": [ { "<field>": <number|string>, ... }, ... ]
///   }
/// Field order within a row follows insertion order; numbers are emitted
/// with enough precision to round-trip.
class BenchReport {
 public:
  explicit BenchReport(std::string name) : name_(std::move(name)) {}

  void set_meta(const std::string& key, const std::string& value) {
    meta_.emplace_back(key, value);
  }

  /// Bump when a bench changes its row schema (fields added/renamed) so the
  /// perf-trajectory tooling can tell old and new files apart.
  void set_schema_version(int version) { schema_version_ = version; }

  /// Start a new result row; subsequent field() calls fill it.
  BenchReport& add_row() {
    rows_.emplace_back();
    return *this;
  }
  BenchReport& field(const std::string& key, double value) {
    rows_.back().emplace_back(key, number_repr(value));
    return *this;
  }
  BenchReport& field(const std::string& key, std::uint64_t value) {
    rows_.back().emplace_back(key, std::to_string(value));
    return *this;
  }
  BenchReport& field(const std::string& key, const std::string& value) {
    rows_.back().emplace_back(key, "\"" + escape(value) + "\"");
    return *this;
  }

  std::string to_json() const {
    std::ostringstream out;
    out << "{\n  \"bench\": \"" << escape(name_) << "\",\n"
        << "  \"schema_version\": " << schema_version_ << ",\n  \"meta\": {";
    for (std::size_t i = 0; i < meta_.size(); ++i) {
      out << (i ? ", " : "") << "\"" << escape(meta_[i].first) << "\": \""
          << escape(meta_[i].second) << "\"";
    }
    out << "},\n  \"results\": [\n";
    for (std::size_t r = 0; r < rows_.size(); ++r) {
      out << "    {";
      for (std::size_t i = 0; i < rows_[r].size(); ++i) {
        out << (i ? ", " : "") << "\"" << escape(rows_[r][i].first)
            << "\": " << rows_[r][i].second;
      }
      out << "}" << (r + 1 < rows_.size() ? "," : "") << "\n";
    }
    out << "  ]\n}\n";
    return out.str();
  }

  /// Write BENCH_<name>.json into `dir` (default: current directory).
  /// Returns false (and prints a warning) if the file cannot be written.
  bool write_file(const std::string& dir = ".") const {
    std::string path = dir + "/BENCH_" + name_ + ".json";
    std::ofstream out(path);
    if (!out) {
      std::fprintf(stderr, "warning: cannot write %s\n", path.c_str());
      return false;
    }
    out << to_json();
    std::printf("\nwrote %s\n", path.c_str());
    return true;
  }

 private:
  static std::string escape(const std::string& s) {
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
      if (c == '"' || c == '\\') out.push_back('\\');
      if (static_cast<unsigned char>(c) < 0x20) {
        char buf[8];
        std::snprintf(buf, sizeof buf, "\\u%04x", c);
        out += buf;
        continue;
      }
      out.push_back(c);
    }
    return out;
  }

  static std::string number_repr(double v) {
    if (v != v) return "null";  // NaN has no JSON literal
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.17g", v);
    return buf;
  }

  using Fields = std::vector<std::pair<std::string, std::string>>;
  std::string name_;
  int schema_version_ = 1;
  Fields meta_;
  std::vector<Fields> rows_;
};

}  // namespace omni::bench
