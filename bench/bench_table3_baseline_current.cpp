// Reproduces Table 3: baseline current draw for D2D technology operations,
// relative to WiFi-standby (the paper's reporting convention).
//
// Each operation is exercised on the simulated testbed and its average draw
// measured by the energy meter over exactly the operation window — the
// virtual equivalent of reading the paper's inline USB power meter during
// one operation.
#include <cmath>
#include <cstdio>

#include "bench_util.h"
#include "net/testbed.h"
#include "obs/omniscope.h"
#include "radio/mesh.h"

namespace omni {
namespace {

using bench::print_compare;
using bench::print_heading;

double measure_wifi_receive(net::Testbed& bed) {
  auto& rx = bed.add_device("rx", {0, 0});
  auto& tx = bed.add_device("tx", {10, 0});
  rx.wifi().set_powered(true);
  tx.wifi().set_powered(true);
  bool joined = false;
  rx.wifi().join(bed.mesh(), [&](Status) {
    tx.wifi().join(bed.mesh(), [&](Status) { joined = true; });
  });
  bed.simulator().run_for(Duration::seconds(2));
  OMNI_CHECK(joined);

  // Saturating 10 MB transfer; the receiver's radio is in active receive for
  // the whole transfer window.
  TimePoint t0 = bed.simulator().now();
  TimePoint t1 = t0;
  bed.mesh().open_flow(tx.wifi(), rx.wifi().address(), 10'000'000,
                       [&](Status) { t1 = bed.simulator().now(); });
  bed.simulator().run_for(Duration::seconds(10));
  const auto& cal = bed.calibration();
  // Skip the connection-setup head so only the receive phase is averaged.
  TimePoint start = t0 + cal.wifi_rtt * 3.0 + cal.tcp_setup_overhead;
  return rx.meter().average_ma(start, t1) - cal.wifi_standby_ma;
}

double measure_wifi_send(net::Testbed& bed) {
  auto& a = bed.add_device("a", {0, 0});
  auto& b = bed.add_device("b", {10, 0});
  a.wifi().set_powered(true);
  b.wifi().set_powered(true);
  a.wifi().join(bed.mesh(), [](Status) {});
  b.wifi().join(bed.mesh(), [](Status) {});
  bed.simulator().run_for(Duration::seconds(2));

  // One multicast service announcement: the paper's "transmitting a single
  // service request (WiFi-send)".
  const auto& cal = bed.calibration();
  TimePoint t0 = bed.simulator().now();
  bed.mesh().multicast_datagram(a.wifi(), Bytes(40, 0x1));
  TimePoint t1 = t0 + cal.wifi_multicast_send_burst;
  bed.simulator().run_for(Duration::seconds(1));
  return a.meter().average_ma(t0, t1) - cal.wifi_standby_ma;
}

double measure_wifi_scan(net::Testbed& bed) {
  auto& a = bed.add_device("a", {0, 0});
  a.wifi().set_powered(true);
  const auto& cal = bed.calibration();
  TimePoint t0 = bed.simulator().now();
  a.wifi().scan([](std::vector<radio::MeshNetwork*>) {});
  TimePoint t1 = t0 + cal.wifi_scan_duration;
  bed.simulator().run_for(Duration::seconds(5));
  return a.meter().average_ma(t0, t1) - cal.wifi_standby_ma;
}

double measure_wifi_connect(net::Testbed& bed) {
  auto& a = bed.add_device("a", {0, 0});
  a.wifi().set_powered(true);
  const auto& cal = bed.calibration();
  TimePoint t0 = bed.simulator().now();
  a.wifi().join(bed.mesh(), [](Status) {});
  TimePoint t1 = t0 + cal.wifi_join_duration;
  bed.simulator().run_for(Duration::seconds(2));
  return a.meter().average_ma(t0, t1) - cal.wifi_standby_ma;
}

double measure_ble_scan(net::Testbed& bed) {
  auto& a = bed.add_device("a", {0, 0});
  a.ble().set_scanning(true, 1.0);
  TimePoint t0 = bed.simulator().now();
  bed.simulator().run_for(Duration::seconds(10));
  // BLE standby is ~0 (below the paper's meter resolution); WiFi is off, so
  // the whole draw is the scanner.
  return a.meter().average_ma(t0, bed.simulator().now());
}

double measure_ble_advertise(net::Testbed& bed) {
  auto& a = bed.add_device("a", {0, 0});
  auto adv = a.ble().start_advertising(Bytes(23, 0x2), Duration::millis(100));
  OMNI_CHECK(adv.is_ok());
  const auto& cal = bed.calibration();
  // Average over one advertising event.
  TimePoint t0 = TimePoint::origin() + Duration::millis(100);
  TimePoint t1 = t0 + cal.ble_adv_event;
  bed.simulator().run_for(Duration::seconds(1));
  return a.meter().average_ma(t0, t1);
}

}  // namespace
}  // namespace omni

int main() {
  using namespace omni;
  bench::print_heading(
      "Table 3: Baseline current draw for D2D technology operations (mA, "
      "relative to WiFi-standby)");

  struct Row {
    const char* label;
    double paper;
    double (*measure)(net::Testbed&);
  };
  const Row rows[] = {
      {"WiFi-receive", 162.4, measure_wifi_receive},
      {"WiFi-send", 183.3, measure_wifi_send},
      {"WiFi-scan for networks", 129.2, measure_wifi_scan},
      {"WiFi-connect to network", 169.0, measure_wifi_connect},
      {"BLE-scan", 7.0, measure_ble_scan},
      {"BLE-advertise", 8.2, measure_ble_advertise},
  };
  // Every run also cross-checks the Omniscope energy ledger (fixed-point
  // rail counters fed by the radios) against the meter's own float
  // integrals: per-node totals must agree within 1%.
  int ledger_mismatches = 0;
  for (const Row& row : rows) {
    net::Testbed bed(7);
    obs::Omniscope& scope = bed.enable_observability();
    double measured = row.measure(bed);
    bench::print_compare(row.label, row.paper, measured, "mA");
    scope.flush();  // close open standby levels into the ledger
    const TimePoint now = bed.simulator().now();
    for (std::size_t i = 0; i < bed.device_count(); ++i) {
      net::Device& dev = bed.device(i);
      const double meter = dev.meter().total_mAs(TimePoint::origin(), now);
      const double ledger = scope.energy().total_mAs(dev.node());
      if (meter > 1e-9 && std::abs(ledger - meter) > meter * 0.01) {
        std::fprintf(stderr,
                     "  LEDGER MISMATCH (%s, node %u): ledger %.4f mAs vs "
                     "meter %.4f mAs\n",
                     row.label, dev.node(), ledger, meter);
        ++ledger_mismatches;
      }
    }
  }
  if (ledger_mismatches == 0) {
    std::printf("\nenergy ledger: per-node totals match the meter within "
                "1%% on every operation\n");
  }
  std::printf(
      "\nNote: operation currents are calibrated from the paper's own Table "
      "3 (see src/radio/calibration.h); this bench verifies the energy-"
      "metering path reproduces them end-to-end through the radio models.\n");
  return ledger_mismatches == 0 ? 0 : 1;
}
