// Ablation: the multi-technology engagement algorithm (paper §3.3). With it
// disabled, beacons go to every context technology all the time —
// ubiSOAP-style — which is exactly the overhead Omni's design eliminates.
// A mixed neighborhood (one WiFi-only device) shows the algorithm engaging
// multicast only while it is actually needed.
#include <cstdio>

#include "bench_util.h"
#include "net/testbed.h"
#include "omni/omni_node.h"

namespace omni {
namespace {

struct Sample {
  double energy_ma = 0;        // device A, relative to WiFi-standby
  std::size_t peers_found = 0;  // device A's final peer count
  std::uint64_t engagements = 0;
  std::uint64_t disengagements = 0;
};

Sample run(bool engagement, bool include_wifi_only_peer) {
  net::Testbed bed(777);
  auto& da = bed.add_device("a", {0, 0});
  auto& db = bed.add_device("b", {10, 0});
  OmniNodeOptions options;
  options.wifi_multicast = true;
  options.manager.enable_engagement = engagement;
  OmniNode a(da, bed.mesh(), options);
  OmniNode b(db, bed.mesh(), options);
  a.start();
  b.start();

  std::unique_ptr<OmniNode> c;
  net::Device* dc = nullptr;
  if (include_wifi_only_peer) {
    dc = &bed.add_device("c", {20, 0});
    OmniNodeOptions c_options;
    c_options.ble = false;  // a WiFi-only embedded device
    c_options.wifi_multicast = true;
    c = std::make_unique<OmniNode>(*dc, bed.mesh(), c_options);
    c->start();
  }

  bed.simulator().run_for(Duration::seconds(120));
  Sample s;
  s.energy_ma = da.meter().average_ma(TimePoint::origin(),
                                      bed.simulator().now()) -
                bed.calibration().wifi_standby_ma;
  s.peers_found = a.manager().peer_table().size();
  s.engagements = a.manager().stats().engagements;
  s.disengagements = a.manager().stats().disengagements;
  return s;
}

}  // namespace
}  // namespace omni

int main() {
  using namespace omni;
  bench::print_heading(
      "Ablation: multi-technology engagement algorithm (paper SS3.3)\n"
      "Device A (BLE+WiFi), peer B (BLE+WiFi), 120s run");

  bench::Table table({"Scenario", "Engagement", "Energy (mA)", "Peers",
                      "Engage/Disengage"});
  for (bool wifi_only_peer : {false, true}) {
    for (bool engagement : {true, false}) {
      Sample s = run(engagement, wifi_only_peer);
      table.add_row({wifi_only_peer ? "with WiFi-only peer C"
                                    : "homogeneous (BLE everywhere)",
                     engagement ? "on" : "off (ubiSOAP-style)",
                     bench::fmt(s.energy_ma),
                     std::to_string(s.peers_found),
                     std::to_string(s.engagements) + "/" +
                         std::to_string(s.disengagements)});
    }
  }
  table.print();

  std::printf(
      "\nHomogeneous neighborhoods: engagement saves the whole multicast\n"
      "beacon cost with zero coverage loss. Heterogeneous neighborhoods:\n"
      "the algorithm engages multicast (to reach the WiFi-only device) and\n"
      "pays the same as always-on — i.e., it adapts to exactly the needed\n"
      "set of technologies.\n");
  return 0;
}
