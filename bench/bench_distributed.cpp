// bench_distributed: cost and correctness of the multi-process engine.
//
// Runs the tourist scenario (the golden-trace workload) once per
// (workers, threads) configuration plus the 1-process reference, and
// reports:
//
//   * wall_ms          wall-clock of the whole run (fork + handshake +
//                      every verified round + reap)
//   * rounds           protocol rounds (= conservative windows)
//   * frames, bytes    coordinator-side wire totals, all links
//   * bytes_per_round  protocol overhead per window
//   * posts_on_wire    cross-owner post records shipped for verification
//   * digest           whole-run state digest; every row must equal the
//                      1-process reference digest
//   * match            1 when report bytes AND digest equal the reference
//
// Schema 2 additionally runs every fleet configuration in partitioned mode
// and records run_mode, the per-worker owned node-event counts (which must
// sum exactly to the 1-process node-event total — the division-of-work
// proof), and the descriptor payload bytes shipped cross-process.
//
// The bench exits 1 if any fleet configuration diverges from the
// 1-process run or the partitioned ownership accounting fails to tile —
// this is the ROADMAP acceptance check in bench form.
// Writes BENCH_distributed.json (schema below) for the perf trajectory.
//
//   $ ./bench/bench_distributed              # workers 1, 2, 4
//   $ ./bench/bench_distributed 2 8          # explicit worker counts
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "bench_util.h"
#include "dist/launch.h"

namespace {

using namespace omni;

const char* kScenarioPath = OMNI_REPO_DIR "/examples/scenarios/tourist.scn";

double wall_ms_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::uint32_t> worker_counts;
  for (int i = 1; i < argc; ++i) {
    const long v = std::strtol(argv[i], nullptr, 10);
    if (v < 1 || v > 64) {
      std::fprintf(stderr, "usage: %s [worker-count...]\n", argv[0]);
      return 2;
    }
    worker_counts.push_back(static_cast<std::uint32_t>(v));
  }
  if (worker_counts.empty()) worker_counts = {1, 2, 4};

  std::ifstream in(kScenarioPath);
  if (!in) {
    std::fprintf(stderr, "cannot read %s\n", kScenarioPath);
    return 1;
  }
  std::ostringstream text;
  text << in.rdbuf();
  const std::string scenario = text.str();

  bench::print_heading(
      "Distributed engine: verified lockstep vs 1-process (tourist.scn)");

  // 1-process reference: the digest and report every fleet row must hit.
  auto t0 = std::chrono::steady_clock::now();
  auto single = dist::run_single(scenario);
  const double single_ms = wall_ms_since(t0);
  if (!single.is_ok()) {
    std::fprintf(stderr, "reference run failed: %s\n",
                 single.error_message().c_str());
    return 1;
  }
  const dist::RunSummary& ref = single.value().summary;

  bench::BenchReport report("distributed");
  report.set_schema_version(2);
  report.set_meta("scenario", "tourist.scn");

  bench::Table table({"mode", "run_mode", "workers", "threads", "wall_ms",
                      "rounds", "bytes", "B/round", "posts", "owned",
                      "desc_B", "digest", "match"});
  char digest_hex[32];
  std::snprintf(digest_hex, sizeof digest_hex, "%016llx",
                static_cast<unsigned long long>(ref.state_digest));
  table.add_row({"single", "-", "0", "1", bench::fmt(single_ms), "-", "-",
                 "-", "-", std::to_string(single.value().node_events), "-",
                 digest_hex, "-"});
  report.add_row()
      .field("mode", std::string("single"))
      .field("run_mode", std::string("single"))
      .field("workers", std::uint64_t{0})
      .field("threads", std::uint64_t{1})
      .field("wall_ms", single_ms)
      .field("rounds", std::uint64_t{0})
      .field("frames", std::uint64_t{0})
      .field("bytes", std::uint64_t{0})
      .field("bytes_per_round", 0.0)
      .field("posts_on_wire", std::uint64_t{0})
      .field("node_events", single.value().node_events)
      .field("owned_events", std::string(""))
      .field("desc_post_bytes", std::uint64_t{0})
      .field("digest", std::string(digest_hex))
      .field("match", std::uint64_t{1});

  bool all_match = true;
  for (std::uint32_t workers : worker_counts) {
    // Mixed thread counts on purpose: the coordinator replica runs the
    // parallel engine while workers run single-threaded, proving the
    // protocol digests are thread-count-invariant *across processes*.
    for (unsigned threads : {1u, 2u}) {
      for (dist::RunMode mode :
           {dist::RunMode::kReplica, dist::RunMode::kPartitioned}) {
        dist::EndpointConfig cfg;
        cfg.scenario_text = scenario;
        cfg.nworkers = workers;
        cfg.threads = threads;
        cfg.mode = mode;
        t0 = std::chrono::steady_clock::now();
        auto fleet = dist::run_local_fleet(cfg);
        const double ms = wall_ms_since(t0);
        if (!fleet.is_ok()) {
          std::fprintf(stderr, "fleet %u failed: %s\n", workers,
                       fleet.error_message().c_str());
          return 1;
        }
        const dist::FleetResult& res = fleet.value();
        // Partitioned rows must additionally prove the division of work:
        // the per-worker owned counts tile the 1-process node-event total.
        std::string owned;
        std::uint64_t owned_sum = 0, desc_bytes = 0;
        for (std::size_t i = 0; i < res.workers.size(); ++i) {
          owned += (i ? ",w" : "w") + std::to_string(i) + ":" +
                   std::to_string(res.workers[i].owned_events);
          owned_sum += res.workers[i].owned_events;
          desc_bytes += res.workers[i].desc_post_bytes;
        }
        const bool partitioned = mode != dist::RunMode::kReplica;
        const bool match =
            res.report == single.value().report &&
            res.summary.state_digest == ref.state_digest &&
            (!partitioned || owned_sum == single.value().node_events);
        all_match = all_match && match;
        const double per_round =
            res.stats.rounds == 0
                ? 0.0
                : static_cast<double>(res.stats.bytes) /
                      static_cast<double>(res.stats.rounds);
        std::snprintf(
            digest_hex, sizeof digest_hex, "%016llx",
            static_cast<unsigned long long>(res.summary.state_digest));
        table.add_row({"fleet", dist::run_mode_name(res.partition.mode),
                       std::to_string(workers), std::to_string(threads),
                       bench::fmt(ms), std::to_string(res.stats.rounds),
                       std::to_string(res.stats.bytes), bench::fmt(per_round),
                       std::to_string(res.stats.posts_on_wire),
                       partitioned ? owned : "-",
                       std::to_string(desc_bytes), digest_hex,
                       match ? "yes" : "NO"});
        report.add_row()
            .field("mode", std::string("fleet"))
            .field("run_mode",
                   std::string(dist::run_mode_name(res.partition.mode)))
            .field("workers", std::uint64_t{workers})
            .field("threads", std::uint64_t{threads})
            .field("wall_ms", ms)
            .field("rounds", res.stats.rounds)
            .field("frames", res.stats.frames)
            .field("bytes", res.stats.bytes)
            .field("bytes_per_round", per_round)
            .field("posts_on_wire", res.stats.posts_on_wire)
            .field("node_events", res.partition.node_events)
            .field("owned_events", owned)
            .field("desc_post_bytes", desc_bytes)
            .field("digest", std::string(digest_hex))
            .field("match", std::uint64_t{match ? 1u : 0u});
      }
    }
  }
  table.print();
  report.write_file();

  if (!all_match) {
    std::fprintf(stderr,
                 "FAIL: a fleet configuration diverged from the 1-process "
                 "reference (or partitioned ownership failed to tile)\n");
    return 1;
  }
  std::printf("\nall fleet configurations byte-identical to the 1-process "
              "reference; partitioned ownership tiles the node events\n");
  return 0;
}
