// Ablation: the data-technology selection policy. The paper's Omni Manager
// "selects the technology that minimizes the expected time to deliver the
// data" (§3.3); this bench compares that policy against naive
// always-lowest-energy and always-highest-throughput policies over a mixed
// workload of small and large transfers.
#include <cstdio>

#include "bench_util.h"
#include "net/testbed.h"
#include "omni/omni_node.h"

namespace omni {
namespace {

struct Sample {
  double mean_latency_ms = 0;
  double energy_ma = 0;
  int failures = 0;
};

Sample run(ManagerOptions::DataPolicy policy) {
  net::Testbed bed(555);
  auto& da = bed.add_device("a", {0, 0});
  auto& db = bed.add_device("b", {10, 0});
  OmniNodeOptions options;
  options.manager.data_policy = policy;
  OmniNode a(da, bed.mesh(), options);
  OmniNode b(db, bed.mesh(), options);
  int received = 0;
  TimePoint last_received;
  b.manager().request_data([&](const OmniAddress&, const Bytes&) {
    ++received;
    last_received = bed.simulator().now();
  });
  a.start();
  b.start();
  bed.simulator().run_for(Duration::seconds(3));

  // Mixed workload: alternating tiny sensor readings and 100 KB media
  // snippets, one per second.
  const std::size_t kSizes[] = {30, 100'000, 30, 30, 100'000, 30, 30, 30,
                                100'000, 30};
  Sample s;
  double total_latency = 0;
  int measured = 0;
  for (std::size_t size : kSizes) {
    TimePoint t0 = bed.simulator().now();
    bool done = false;
    bool ok = false;
    TimePoint t_done;
    a.manager().send_data({b.address()}, Bytes(size, 1),
                          [&](StatusCode code, const ResponseInfo&) {
                            done = true;
                            ok = code == StatusCode::kSendDataSuccess;
                            t_done = bed.simulator().now();
                          });
    while (!done && bed.simulator().now() - t0 < Duration::seconds(5)) {
      bed.simulator().run_for(Duration::millis(10));
    }
    if (ok) {
      total_latency += (t_done - t0).as_millis();
      ++measured;
    } else {
      ++s.failures;
    }
    bed.simulator().run_for(Duration::seconds(1));
  }
  s.mean_latency_ms = measured > 0 ? total_latency / measured : -1;
  s.energy_ma = da.meter().average_ma(TimePoint::origin(),
                                      bed.simulator().now()) -
                bed.calibration().wifi_standby_ma;
  return s;
}

const char* policy_name(ManagerOptions::DataPolicy policy) {
  switch (policy) {
    case ManagerOptions::DataPolicy::kExpectedTime:
      return "expected-time (paper)";
    case ManagerOptions::DataPolicy::kPreferLowEnergy:
      return "always lowest-energy";
    case ManagerOptions::DataPolicy::kPreferThroughput:
      return "always highest-throughput";
  }
  return "?";
}

}  // namespace
}  // namespace omni

int main() {
  using namespace omni;
  bench::print_heading(
      "Ablation: data-technology selection policy (paper SS3.3)\n"
      "Mixed workload: 7x 30B readings + 3x 100KB media, one per second");

  bench::Table table({"Policy", "Mean latency (ms)", "Energy (mA)",
                      "Failures"});
  for (auto policy : {ManagerOptions::DataPolicy::kExpectedTime,
                      ManagerOptions::DataPolicy::kPreferLowEnergy,
                      ManagerOptions::DataPolicy::kPreferThroughput}) {
    Sample s = run(policy);
    table.add_row({policy_name(policy), bench::fmt(s.mean_latency_ms, 1),
                   bench::fmt(s.energy_ma), std::to_string(s.failures)});
  }
  table.print();

  std::printf(
      "\nalways-lowest-energy drags small sends onto BLE (41 ms vs 16 ms)\n"
      "and still needs WiFi for anything over the advertisement budget;\n"
      "the expected-time policy matches the throughput policy on latency\n"
      "at essentially the same energy, because Omni already minimizes\n"
      "high-energy transmissions upstream (via context-driven peer\n"
      "selection), exactly as the paper argues.\n");
  return 0;
}
