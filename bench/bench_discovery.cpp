// bench_discovery: discovery-latency vs energy vs event-load Pareto sweep
// for the DiscoveryPolicy controller (fixed 500 ms cadence vs density-aware
// adaptive scheduling), across two density regimes:
//
//   * sparse rural grid  — 4x4 devices at 35 m spacing (few BLE neighbors);
//   * dense city block   — 8x8 devices at 10 m spacing (saturated
//                          neighborhoods, the regime where fixed-cadence
//                          beaconing dominates the event load).
//
// Each run warms the fleet up, then teleports a late entrant into the middle
// of the grid and measures discovery latency: the time until the entrant and
// at least one resident have found each other. Energy (mean resident current
// + the fleet's ble_scan rail), total simulator events, and the scheduler
// counters complete the Pareto point. Every configuration runs at each
// thread count in the sweep and must produce a bit-identical digest.
//
// The bench FAILS (exit 1) unless adaptive dominates fixed in both regimes:
// fewer events and no more scan charge, with entrant discovery latency
// within the policy's worst-case bound (fixed + ceiling + floor). Writes
// BENCH_discovery.json.
//
//   $ ./bench/bench_discovery            # full: 30 s warmup + 30 s, 1/2/8 threads
//   $ ./bench/bench_discovery --smoke    # CI time box: shorter run, 1/2 threads
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.h"
#include "net/testbed.h"
#include "obs/omniscope.h"
#include "omni/omni_node.h"

namespace {

using namespace omni;

struct Regime {
  const char* name;
  std::size_t side;    ///< grid is side x side residents
  double spacing_m;
};

constexpr Regime kRegimes[] = {
    {"sparse_rural", 4, 35.0},
    {"dense_city_block", 8, 10.0},
};

double g_warmup_s = 30.0;
double g_total_s = 60.0;

struct RunResult {
  std::uint64_t events = 0;
  double latency_ms = -1.0;  ///< -1 = entrant never discovered
  double mean_resident_ma = 0.0;
  double ble_scan_mAs = 0.0;
  std::uint64_t beacons_suppressed = 0;
  std::uint64_t scan_windows_skipped = 0;
  double mean_beacon_interval_ms = 0.0;
  std::uint64_t beacons_received = 0;
  /// Thread-invariance oracle: folds every determinism-sensitive output.
  std::uint64_t digest = 0;
};

DiscoveryPolicy make_policy(bool adaptive) {
  DiscoveryPolicy p;
  p.mode = adaptive ? DiscoveryPolicy::Mode::kAdaptive
                    : DiscoveryPolicy::Mode::kFixed;
  if (std::getenv("BENCH_NO_DUTY") != nullptr) p.min_scan_duty = 1.0;
  if (std::getenv("BENCH_NO_RAMP") != nullptr) {
    p.ceiling = p.floor;
    p.sparse_ceiling = p.floor;
  }
  return p;
}

RunResult run_regime(const Regime& regime, const DiscoveryPolicy& policy,
                     unsigned threads) {
  net::Testbed bed(7, radio::Calibration::defaults(), threads);
  bed.set_discovery_policy(policy);
  obs::Omniscope& scope =
      bed.enable_observability(/*ring_capacity=*/1 << 12, /*detail=*/false);

  OmniNodeOptions opts;
  opts.manager.discovery = bed.discovery_policy();

  std::vector<net::Device*> devices;
  std::vector<std::unique_ptr<OmniNode>> nodes;
  const std::size_t residents = regime.side * regime.side;
  for (std::size_t i = 0; i < residents; ++i) {
    double x = static_cast<double>(i % regime.side) * regime.spacing_m;
    double y = static_cast<double>(i / regime.side) * regime.spacing_m;
    devices.push_back(&bed.add_device("r" + std::to_string(i), {x, y}));
    nodes.push_back(
        std::make_unique<OmniNode>(*devices.back(), bed.mesh(), opts));
  }
  // The late entrant starts far outside radio range of everyone.
  net::Device& entrant_dev = bed.add_device("entrant", {50000.0, 50000.0});
  auto entrant = std::make_unique<OmniNode>(entrant_dev, bed.mesh(), opts);
  for (auto& node : nodes) node->start();
  entrant->start();

  // Teleport the entrant into the middle of the grid after warmup, then poll
  // (global barrier events, deterministic) until the entrant and at least
  // one resident have discovered each other.
  const double extent = static_cast<double>(regime.side - 1) * regime.spacing_m;
  const TimePoint arrive = TimePoint::origin() + Duration::seconds(g_warmup_s);
  const NodeId entrant_id = entrant_dev.node();
  sim::Vec2 center{extent / 2.0, extent / 2.0};
  bed.simulator().at(arrive, [&bed, entrant_id, center] {
    bed.world().set_position(entrant_id, center);
  });
  double latency_ms = -1.0;
  const OmniAddress entrant_addr = entrant->address();
  OmniManager* entrant_mgr = &entrant->manager();
  std::vector<OmniNode*> resident_ptrs;
  for (auto& node : nodes) resident_ptrs.push_back(node.get());
  auto poll = std::make_shared<std::function<void()>>();
  *poll = [&, poll] {
    if (latency_ms >= 0.0) return;
    bool entrant_sees = entrant_mgr->peer_table().size() > 0;
    bool seen_by_resident = false;
    for (OmniNode* r : resident_ptrs) {
      if (r->manager().peer_table().find(entrant_addr) != nullptr) {
        seen_by_resident = true;
        break;
      }
    }
    if (entrant_sees && seen_by_resident) {
      latency_ms = (bed.simulator().now() - arrive).as_millis();
      return;
    }
    bed.simulator().after(Duration::millis(5), *poll);
  };
  bed.simulator().at(arrive + Duration::millis(5), *poll);

  bed.simulator().run_for(Duration::seconds(g_total_s));

  RunResult r;
  r.events = bed.simulator().executed_events();
  r.latency_ms = latency_ms;
  scope.flush();
  double ma_sum = 0.0;
  double interval_sum_ms = 0.0;
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    ma_sum += devices[i]->meter().average_ma(TimePoint::origin(),
                                             bed.simulator().now());
    const ManagerStats& st = nodes[i]->manager().stats();
    r.beacons_suppressed += st.beacons_suppressed;
    r.scan_windows_skipped += st.scan_windows_skipped;
    r.beacons_received += st.beacons_received;
    interval_sum_ms +=
        nodes[i]->manager().current_beacon_interval().as_millis();
    r.ble_scan_mAs +=
        scope.energy().rail_mAs(devices[i]->node(), obs::EnergyRail::kBleScan);
  }
  if (std::getenv("BENCH_DISCOVERY_DEBUG") != nullptr) {
    ManagerStats sum;
    for (auto& node : nodes) {
      const ManagerStats& st = node->manager().stats();
      sum.packets_received += st.packets_received;
      sum.beacons_received += st.beacons_received;
      sum.context_received += st.context_received;
      sum.data_sends += st.data_sends;
      sum.engagements += st.engagements;
      sum.disengagements += st.disengagements;
      sum.beacon_encodes += st.beacon_encodes;
      sum.beacon_rearms += st.beacon_rearms;
      sum.peer_expire_sweeps += st.peer_expire_sweeps;
      sum.context_failovers += st.context_failovers;
      sum.deadline_failovers += st.deadline_failovers;
    }
    std::fprintf(stderr,
                 "[debug] pkts=%llu beac_rx=%llu ctx_rx=%llu sends=%llu "
                 "eng=%llu diseng=%llu encodes=%llu rearms=%llu sweeps=%llu "
                 "ctx_fo=%llu dl_fo=%llu\n",
                 (unsigned long long)sum.packets_received,
                 (unsigned long long)sum.beacons_received,
                 (unsigned long long)sum.context_received,
                 (unsigned long long)sum.data_sends,
                 (unsigned long long)sum.engagements,
                 (unsigned long long)sum.disengagements,
                 (unsigned long long)sum.beacon_encodes,
                 (unsigned long long)sum.beacon_rearms,
                 (unsigned long long)sum.peer_expire_sweeps,
                 (unsigned long long)sum.context_failovers,
                 (unsigned long long)sum.deadline_failovers);
  }
  r.mean_resident_ma = ma_sum / static_cast<double>(nodes.size());
  r.mean_beacon_interval_ms =
      interval_sum_ms / static_cast<double>(nodes.size());

  r.digest = r.events;
  r.digest = r.digest * 1000003u + r.beacons_received;
  r.digest = r.digest * 1000003u +
             static_cast<std::uint64_t>(latency_ms < 0 ? 0 : latency_ms * 1000);
  r.digest = r.digest * 1000003u + r.beacons_suppressed;
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  if (smoke) {
    g_warmup_s = 10.0;
    g_total_s = 20.0;
  }
  const std::vector<unsigned> thread_counts =
      smoke ? std::vector<unsigned>{1, 2} : std::vector<unsigned>{1, 2, 8};

  bench::print_heading("Discovery scheduling: fixed vs adaptive Pareto");
  bench::Table table({"regime", "policy", "events", "latency ms", "mean mA",
                      "scan mAs", "suppressed", "interval ms"});
  bench::BenchReport report("discovery");
  report.set_schema_version(1);
  report.set_meta("warmup_seconds", bench::fmt(g_warmup_s, 0));
  report.set_meta("sim_seconds", bench::fmt(g_total_s, 0));
  report.set_meta("seed", "7");

  bool pareto_ok = true;
  for (const Regime& regime : kRegimes) {
    RunResult fixed_r, adaptive_r;
    for (int adaptive = 0; adaptive <= 1; ++adaptive) {
      const DiscoveryPolicy policy = make_policy(adaptive != 0);
      RunResult base;
      for (std::size_t ti = 0; ti < thread_counts.size(); ++ti) {
        RunResult r = run_regime(regime, policy, thread_counts[ti]);
        if (ti == 0) {
          base = r;
        } else if (r.digest != base.digest) {
          std::fprintf(stderr,
                       "DETERMINISM VIOLATION: %s/%s digest %llu at %u "
                       "threads vs %llu at %u\n",
                       regime.name, adaptive ? "adaptive" : "fixed",
                       static_cast<unsigned long long>(r.digest),
                       thread_counts[ti],
                       static_cast<unsigned long long>(base.digest),
                       thread_counts[0]);
          return 1;
        }
      }
      (adaptive ? adaptive_r : fixed_r) = base;
      const char* policy_name = adaptive ? "adaptive" : "fixed";
      table.add_row({regime.name, policy_name, std::to_string(base.events),
                     bench::fmt(base.latency_ms, 1),
                     bench::fmt(base.mean_resident_ma, 3),
                     bench::fmt(base.ble_scan_mAs, 1),
                     std::to_string(base.beacons_suppressed),
                     bench::fmt(base.mean_beacon_interval_ms, 0)});
      report.add_row()
          .field("regime", std::string(regime.name))
          .field("policy", std::string(policy_name))
          .field("nodes",
                 static_cast<std::uint64_t>(regime.side * regime.side + 1))
          .field("spacing_m", regime.spacing_m)
          .field("sim_seconds", g_total_s)
          .field("events", base.events)
          .field("discovery_latency_ms", base.latency_ms)
          .field("mean_resident_ma", base.mean_resident_ma)
          .field("ble_scan_mAs", base.ble_scan_mAs)
          .field("beacons_suppressed", base.beacons_suppressed)
          .field("scan_windows_skipped", base.scan_windows_skipped)
          .field("mean_beacon_interval_ms", base.mean_beacon_interval_ms)
          .field("beacons_received", base.beacons_received);
    }
    // Pareto dominance: strictly fewer events, no more scan charge, and the
    // entrant still discovered within the policy's own worst-case bound.
    // The adaptive entrant beacons at the floor until it has peers; a
    // saturated resident hears a floor-rate advertiser within a bounded run
    // of duty slots (three-distance bound of the slotted schedule), snaps
    // to the floor, and re-beacons within one floor interval — so mutual
    // discovery is bounded by a handful of floor periods plus, at the very
    // worst (duty clamped to min_scan_duty), one ceiling period of the
    // resident's backed-off cadence. Budget that bound, not a tuned magic
    // number: latency above fixed + ceiling + floor is a regression class.
    const DiscoveryPolicy budget_policy = make_policy(true);
    const double latency_budget_ms =
        fixed_r.latency_ms < 0
            ? -1
            : fixed_r.latency_ms +
                  static_cast<double>(budget_policy.ceiling.as_micros() +
                                      budget_policy.floor.as_micros()) /
                      1000.0;
    bool ok = adaptive_r.events < fixed_r.events &&
              adaptive_r.ble_scan_mAs <= fixed_r.ble_scan_mAs + 1e-9 &&
              adaptive_r.latency_ms >= 0 &&
              (fixed_r.latency_ms < 0 ||
               adaptive_r.latency_ms <= latency_budget_ms);
    std::printf("  %s: events %llu -> %llu (%+.1f%%), scan %0.1f -> %0.1f "
                "mAs, latency %.1f -> %.1f ms  [%s]\n",
                regime.name,
                static_cast<unsigned long long>(fixed_r.events),
                static_cast<unsigned long long>(adaptive_r.events),
                100.0 * (static_cast<double>(adaptive_r.events) /
                             static_cast<double>(fixed_r.events) -
                         1.0),
                fixed_r.ble_scan_mAs, adaptive_r.ble_scan_mAs,
                fixed_r.latency_ms, adaptive_r.latency_ms,
                ok ? "adaptive dominates" : "NOT DOMINATED");
    if (!ok) pareto_ok = false;
  }

  std::printf("\n");
  table.print();
  report.write_file();
  if (!pareto_ok) {
    std::fprintf(stderr,
                 "PARETO CHECK FAILED: adaptive must dominate fixed in every "
                 "regime\n");
    return 1;
  }
  return 0;
}
