#!/usr/bin/env python3
"""Intra-repo link checker for the markdown docs.

Validates that every local target referenced from the repo's markdown files
actually exists:

  * inline links   [text](path)  and  [text](path#anchor)
  * reference defs [label]: path
  * bare backtick file references  `src/foo/bar.h`, `docs/x.json` — any
    code span that looks like a repo-relative path with a file extension

External URLs (scheme://) and pure anchors (#section) are skipped. Anchor
fragments on local markdown targets are checked against the target's
headings using GitHub's slug rules (lowercase, spaces to dashes, strip
punctuation).

Exit status: 0 when every link resolves, 1 otherwise (one line per broken
link: file:line: message). Run from anywhere; paths resolve against the
repo root (the parent of this script's directory).

  $ python3 tools/check_links.py            # check the default doc set
  $ python3 tools/check_links.py FILE...    # check specific files
"""
import re
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent

# The documentation set CI keeps honest. Code comments are out of scope.
DEFAULT_DOCS = [
    "README.md",
    "DESIGN.md",
    "EXPERIMENTS.md",
    "ROADMAP.md",
    "CHANGES.md",
    "docs",
]

INLINE_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
REF_DEF = re.compile(r"^\s*\[[^\]]+\]:\s+(\S+)")
# Repo-relative paths inside code spans: at least one '/', a file extension,
# and no spaces. `bench/bench_scale 500` style command lines are filtered by
# the extension requirement on the last component.
CODE_PATH = re.compile(r"`([A-Za-z0-9_./-]+/[A-Za-z0-9_.-]+\.[A-Za-z0-9]{1,10})`")
# `src/sim/event_queue.{h,cpp}` brace shorthand.
BRACE_PATH = re.compile(r"`([A-Za-z0-9_./-]+)\.\{([A-Za-z0-9,]+)\}`")
# Extensionless module references rooted at a known top-level source dir
# (`src/radio/energy_meter`, `bench/`). These resolve if the path exists as
# a directory or with a .h/.cpp/.py suffix — the usual way prose names a
# translation unit.
MODULE_PATH = re.compile(
    r"`((?:src|bench|tests|tools|examples|docs)(?:/[A-Za-z0-9_.-]+)*)`")
MODULE_SUFFIXES = ("", ".h", ".cpp", ".py", ".cmake")

SKIP_SCHEMES = ("http://", "https://", "mailto:", "ftp://")


def slugify(heading: str) -> str:
    """GitHub's anchor slug: lowercase, strip punctuation, spaces to dashes."""
    text = re.sub(r"`([^`]*)`", r"\1", heading)
    text = re.sub(r"\[([^\]]*)\]\([^)]*\)", r"\1", text)
    text = text.strip().lower()
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def anchors_of(md: Path) -> set:
    out = set()
    in_fence = False
    for line in md.read_text(encoding="utf-8").splitlines():
        if line.lstrip().startswith("```"):
            in_fence = not in_fence
            continue
        if not in_fence and line.startswith("#"):
            out.add(slugify(line.lstrip("#")))
    return out


def resolve(base: Path, target: str) -> Path:
    if target.startswith("/"):
        return REPO / target.lstrip("/")
    return (base.parent / target).resolve()


def check_file(md: Path, errors: list) -> None:
    rel = md.relative_to(REPO)
    in_fence = False
    for lineno, line in enumerate(
            md.read_text(encoding="utf-8").splitlines(), start=1):
        if line.lstrip().startswith("```"):
            in_fence = not in_fence
            continue
        targets = []
        if not in_fence:
            targets += INLINE_LINK.findall(line)
            targets += REF_DEF.findall(line)
        # Code-span paths count inside fences too: fenced shell snippets
        # reference artifacts (docs/traces/*.json) that must exist.
        targets += CODE_PATH.findall(line)
        for stem, exts in BRACE_PATH.findall(line):
            targets += [f"{stem}.{e}" for e in exts.split(",") if e]
        for m in MODULE_PATH.findall(line):
            if "." in m.rsplit("/", 1)[-1]:
                continue  # CODE_PATH already covers it
            dest = resolve(md, m)
            if not any(dest.with_name(dest.name + s).exists()
                       if s else dest.exists() for s in MODULE_SUFFIXES):
                errors.append(f"{rel}:{lineno}: broken module ref '{m}'")
        for t in targets:
            if t.startswith(SKIP_SCHEMES) or t.startswith("#"):
                continue
            path_part, _, anchor = t.partition("#")
            if not path_part:
                continue
            dest = resolve(md, path_part)
            if not dest.exists():
                errors.append(f"{rel}:{lineno}: broken link '{t}'")
                continue
            if anchor and dest.suffix == ".md":
                if slugify(anchor.replace("-", " ")) not in anchors_of(dest) \
                        and anchor not in anchors_of(dest):
                    errors.append(
                        f"{rel}:{lineno}: missing anchor '#{anchor}' in "
                        f"{path_part}")


def main(argv):
    if len(argv) > 1:
        docs = [Path(a).resolve() for a in argv[1:]]
    else:
        docs = []
        for entry in DEFAULT_DOCS:
            p = REPO / entry
            if p.is_dir():
                docs += sorted(p.rglob("*.md"))
            elif p.exists():
                docs.append(p)
    errors = []
    for md in docs:
        check_file(md, errors)
    for e in errors:
        print(e)
    print(f"check_links: {len(docs)} files, "
          f"{'OK' if not errors else f'{len(errors)} broken'}")
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
