#!/usr/bin/env python3
"""Aggregate every BENCH_*.json in a directory into one printed table.

The benches each emit a machine-readable BENCH_<name>.json (see
bench/bench_util.h for the schema); this tool is the human view over all of
them at once — CI runs it after the bench steps so one log section shows the
whole perf picture of a build.

    $ python3 tools/bench_summary.py            # scan the current directory
    $ python3 tools/bench_summary.py build .    # scan several directories
    $ python3 tools/bench_summary.py BENCH_micro_core.json   # explicit files

Exit status: 0 on success (including "no files found", which prints a note),
1 if any named or discovered file is unreadable or not valid bench JSON.
"""

import glob
import json
import os
import sys


def collect_paths(args):
    """Expand CLI args (dirs and files) into a sorted list of bench files."""
    if not args:
        args = ["."]
    paths = []
    ok = True
    for arg in args:
        if os.path.isdir(arg):
            paths.extend(sorted(glob.glob(os.path.join(arg, "BENCH_*.json"))))
        elif os.path.isfile(arg):
            paths.append(arg)
        else:
            print(f"bench_summary: no such file or directory: {arg}",
                  file=sys.stderr)
            ok = False
    # De-duplicate while keeping order (a dir scan plus an explicit file can
    # name the same path twice).
    seen = set()
    unique = []
    for p in paths:
        if p not in seen:
            seen.add(p)
            unique.append(p)
    return unique, ok


def fmt_cell(value):
    """One table cell: compact numbers, bare strings, JSON for the rest."""
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        return f"{value:.6g}"
    if isinstance(value, (int, str)):
        return str(value)
    return json.dumps(value)


def print_table(rows):
    """Align a list of dict rows on the union of their keys (first-seen
    order), one header line plus one line per row."""
    columns = []
    for row in rows:
        for key in row:
            if key not in columns:
                columns.append(key)
    cells = [[fmt_cell(row.get(c, "-")) for c in columns] for row in rows]
    widths = [
        max(len(c), *(len(r[i]) for r in cells)) if cells else len(c)
        for i, c in enumerate(columns)
    ]
    def line(parts):
        print("  " + "  ".join(p.ljust(w) for p, w in zip(parts, widths)))
    line(columns)
    line(["-" * w for w in widths])
    for r in cells:
        line(r)


def summarize(path):
    """Print one bench file as a titled table. Returns False on bad input."""
    try:
        with open(path, encoding="utf-8") as f:
            data = json.load(f)
    except (OSError, json.JSONDecodeError) as err:
        print(f"bench_summary: {path}: {err}", file=sys.stderr)
        return False
    name = data.get("bench")
    rows = data.get("results")
    if not isinstance(name, str) or not isinstance(rows, list):
        print(f"bench_summary: {path}: missing 'bench'/'results' fields",
              file=sys.stderr)
        return False
    meta = ", ".join(f"{k}={v}" for k, v in data.get("meta", {}).items())
    schema = data.get("schema_version", 1)
    print(f"\n== {name} (schema {schema}"
          + (f"; {meta}" if meta else "") + f") — {path}")
    if rows:
        print_table(rows)
    else:
        print("  (no result rows)")
    return True


def main(argv):
    paths, ok = collect_paths(argv[1:])
    if not paths:
        print("bench_summary: no BENCH_*.json files found")
        return 0 if ok else 1
    for path in paths:
        ok = summarize(path) and ok
    print(f"\n{len(paths)} bench file(s) summarized")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main(sys.argv))
