// omnisnap: inspect, verify, and diff .osnap snapshot files — and dump the
// distributed engine's .ofrs frame-capture streams.
//
//   $ omnisnap inspect run.osnap          # manifest + per-section summary
//   $ omnisnap inspect run.ofrs           # one line per protocol frame
//   $ omnisnap verify run.osnap           # full integrity check + round-trip
//   $ omnisnap diff a.osnap b.osnap       # section-level byte comparison
//   $ omnisnap diff --state a.osnap b.osnap   # ignore manifests (A/B runs)
//
// `inspect` sniffs the container magic: "OSNP" files are snapshots, a
// varint-prefixed "OFRM" stream is a frame capture from run_distributed
// --capture (see docs/FORMATS.md). `verify` exercises the same hardened
// loader the engine uses (magic, version, table bounds, per-section
// checksums, trailer) and additionally proves the parse/serialize round
// trip is byte-identical. Exit status: 0 on success / no differences, 1 on
// corruption or divergence, 2 on usage.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "dist/protocol.h"
#include "omni/manager_snapshot.h"
#include "sim/snapshot.h"

namespace {

using omni::sim::Snapshot;

bool read_file(const std::string& path, std::vector<std::uint8_t>& out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  out.assign(std::istreambuf_iterator<char>(in),
             std::istreambuf_iterator<char>());
  return true;
}

/// True when the bytes open with a LEB128 length followed by the frame
/// magic — the .ofrs stream shape. Snapshots open with "OSNP" directly.
bool looks_like_frame_stream(const std::vector<std::uint8_t>& bytes) {
  std::size_t i = 0;
  while (i < bytes.size() && i < 10 && (bytes[i] & 0x80u) != 0) ++i;
  ++i;  // last varint byte
  return i + 4 <= bytes.size() &&
         std::memcmp(bytes.data() + i, omni::dist::kFrameMagic, 4) == 0;
}

int inspect_frame_stream(const std::string& path,
                         const std::vector<std::uint8_t>& bytes) {
  std::vector<omni::dist::Frame> frames;
  omni::Status st = omni::dist::parse_frame_stream(bytes, frames);
  for (std::size_t i = 0; i < frames.size(); ++i) {
    std::printf("[%4zu] %s\n", i,
                omni::dist::describe_frame(frames[i]).c_str());
  }
  if (!st.is_ok()) {
    std::fprintf(stderr, "omnisnap: %s\n", st.message().c_str());
    return 1;
  }
  std::printf("%s: %zu frames, %zu bytes\n", path.c_str(), frames.size(),
              bytes.size());
  return 0;
}

int cmd_inspect(const std::string& path) {
  if (std::vector<std::uint8_t> bytes;
      read_file(path, bytes) && looks_like_frame_stream(bytes)) {
    return inspect_frame_stream(path, bytes);
  }
  auto snap = omni::sim::read_snapshot_file(path);
  if (!snap.is_ok()) {
    std::fprintf(stderr, "omnisnap: %s\n", snap.error_message().c_str());
    return 1;
  }
  std::printf("%s", omni::sim::describe_snapshot(snap.value()).c_str());
  // Per-manager breakdown when the managers section is present.
  if (const auto* sec = snap.value().find(omni::sim::kSecManagers)) {
    auto records = omni::list_manager_records(*sec);
    for (const auto& [address, size] : records) {
      std::printf("  manager %016llx: %zu bytes\n",
                  static_cast<unsigned long long>(address), size);
    }
  }
  return 0;
}

int cmd_verify(const std::string& path) {
  auto snap = omni::sim::read_snapshot_file(path);
  if (!snap.is_ok()) {
    std::fprintf(stderr, "omnisnap: FAIL: %s\n", snap.error_message().c_str());
    return 1;
  }
  // Round trip: serialize the parsed form and parse it back; both the bytes
  // and the reparse must agree with the original.
  const std::vector<std::uint8_t> bytes =
      omni::sim::serialize_snapshot(snap.value());
  auto reparsed = omni::sim::parse_snapshot(bytes);
  if (!reparsed.is_ok()) {
    std::fprintf(stderr, "omnisnap: FAIL: round trip did not reparse: %s\n",
                 reparsed.error_message().c_str());
    return 1;
  }
  const std::string diff =
      omni::sim::diff_snapshots(snap.value(), reparsed.value());
  if (!diff.empty()) {
    std::fprintf(stderr, "omnisnap: FAIL: round trip diverged:\n%s\n",
                 diff.c_str());
    return 1;
  }
  std::printf("OK %s (%zu bytes, %zu sections, digest %016llx)\n",
              path.c_str(), bytes.size(), snap.value().sections.size(),
              static_cast<unsigned long long>(
                  omni::sim::snapshot_digest(snap.value())));
  return 0;
}

int cmd_diff(const std::string& a_path, const std::string& b_path,
             bool state_only) {
  auto a = omni::sim::read_snapshot_file(a_path);
  auto b = omni::sim::read_snapshot_file(b_path);
  if (!a.is_ok() || !b.is_ok()) {
    std::fprintf(stderr, "omnisnap: %s\n",
                 (!a.is_ok() ? a : b).error_message().c_str());
    return 1;
  }
  const std::string diff =
      omni::sim::diff_snapshots(a.value(), b.value(), state_only);
  if (diff.empty()) {
    std::printf("identical%s\n", state_only ? " (manifests ignored)" : "");
    return 0;
  }
  std::printf("%s", diff.c_str());
  return 1;
}

int usage() {
  std::fprintf(stderr,
               "usage: omnisnap inspect <file.osnap | file.ofrs>\n"
               "       omnisnap verify <file.osnap>\n"
               "       omnisnap diff [--state] <a.osnap> <b.osnap>\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) return usage();
  const std::string cmd = argv[1];
  if (cmd == "inspect" && argc == 3) return cmd_inspect(argv[2]);
  if (cmd == "verify" && argc == 3) return cmd_verify(argv[2]);
  if (cmd == "diff") {
    bool state_only = false;
    int i = 2;
    if (i < argc && std::strcmp(argv[i], "--state") == 0) {
      state_only = true;
      ++i;
    }
    if (argc - i == 2) return cmd_diff(argv[i], argv[i + 1], state_only);
  }
  return usage();
}
