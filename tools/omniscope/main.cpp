// omniscope — inspect Omniscope flight-recorder trace files (.otr).
//
//   omniscope summarize trace.otr
//       Record/category/owner counts, time span, drop statistics.
//   omniscope dump trace.otr [--cat NAME] [--owner N] [--limit N]
//       Human-readable record listing (optionally filtered).
//   omniscope perfetto trace.otr out.json
//       Convert to Chrome trace_event JSON for ui.perfetto.dev.
//
// Scenario scripts produce .otr files via the `dump trace <path>` directive;
// benches via their --trace flags.
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "obs/perfetto.h"
#include "obs/trace_file.h"

namespace {

using omni::obs::Phase;
using omni::obs::TraceCapture;
using omni::obs::TraceRecord;

const char* phase_name(std::uint8_t p) {
  switch (static_cast<Phase>(p)) {
    case Phase::kInstant: return "instant";
    case Phase::kComplete: return "complete";
    case Phase::kAsyncBegin: return "begin";
    case Phase::kAsyncEnd: return "end";
    case Phase::kCounter: return "counter";
  }
  return "?";
}

int usage() {
  std::fprintf(stderr,
               "usage: omniscope summarize <trace.otr>\n"
               "       omniscope dump <trace.otr> [--cat NAME] [--owner N] "
               "[--limit N]\n"
               "       omniscope perfetto <trace.otr> <out.json>\n");
  return 2;
}

int load(const std::string& path, TraceCapture& cap) {
  if (!omni::obs::read_trace_file(path, cap)) {
    std::fprintf(stderr, "omniscope: cannot read trace file '%s'\n",
                 path.c_str());
    return 1;
  }
  return 0;
}

int cmd_summarize(const std::string& path) {
  TraceCapture cap;
  if (int rc = load(path, cap)) return rc;
  std::printf("records: %zu (dropped %llu at capture)\n", cap.records.size(),
              static_cast<unsigned long long>(cap.dropped));
  if (!cap.records.empty()) {
    std::printf("span:    %.6fs .. %.6fs\n",
                static_cast<double>(cap.records.front().t_us) / 1e6,
                static_cast<double>(cap.records.back().t_us) / 1e6);
  }
  std::map<std::string, std::uint64_t> per_cat;
  std::map<std::uint32_t, std::uint64_t> per_owner;
  for (const TraceRecord& r : cap.records) {
    ++per_cat[cap.category_name(r.cat)];
    ++per_owner[r.owner];
  }
  std::printf("categories (%zu):\n", per_cat.size());
  for (const auto& [name, n] : per_cat) {
    std::printf("  %-24s %llu\n", name.c_str(),
                static_cast<unsigned long long>(n));
  }
  std::printf("owners (%zu):\n", per_owner.size());
  for (const auto& [owner, n] : per_owner) {
    std::printf("  %-24s %llu\n", cap.owner_name(owner).c_str(),
                static_cast<unsigned long long>(n));
  }
  return 0;
}

int cmd_dump(const std::string& path, const std::string& cat_filter,
             std::int64_t owner_filter, std::uint64_t limit) {
  TraceCapture cap;
  if (int rc = load(path, cap)) return rc;
  std::uint64_t shown = 0;
  for (const TraceRecord& r : cap.records) {
    if (!cat_filter.empty() && cap.category_name(r.cat) != cat_filter) {
      continue;
    }
    if (owner_filter >= 0 &&
        r.owner != static_cast<std::uint32_t>(owner_filter)) {
      continue;
    }
    std::printf("%12.6f %-12s %-18s %-8s a0=%llu a1=%llu",
                static_cast<double>(r.t_us) / 1e6,
                cap.owner_name(r.owner).c_str(),
                cap.category_name(r.cat).c_str(), phase_name(r.phase),
                static_cast<unsigned long long>(r.a0),
                static_cast<unsigned long long>(r.a1));
    if (r.tech != 0xff) std::printf(" tech=%u", r.tech);
    std::printf("\n");
    if (++shown >= limit) {
      std::printf("... (limit %llu reached)\n",
                  static_cast<unsigned long long>(limit));
      break;
    }
  }
  return 0;
}

int cmd_perfetto(const std::string& in, const std::string& out) {
  TraceCapture cap;
  if (int rc = load(in, cap)) return rc;
  if (!omni::obs::write_perfetto_json(out, cap)) {
    std::fprintf(stderr, "omniscope: cannot write '%s'\n", out.c_str());
    return 1;
  }
  std::printf("wrote %s (%zu events) — open at https://ui.perfetto.dev\n",
              out.c_str(), cap.records.size());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  if (args.empty()) return usage();
  const std::string& cmd = args[0];
  if (cmd == "summarize" && args.size() == 2) return cmd_summarize(args[1]);
  if (cmd == "perfetto" && args.size() == 3) {
    return cmd_perfetto(args[1], args[2]);
  }
  if (cmd == "dump" && args.size() >= 2) {
    std::string cat;
    std::int64_t owner = -1;
    std::uint64_t limit = 10000;
    for (std::size_t i = 2; i < args.size(); ++i) {
      if (args[i] == "--cat" && i + 1 < args.size()) {
        cat = args[++i];
      } else if (args[i] == "--owner" && i + 1 < args.size()) {
        owner = std::atoll(args[++i].c_str());
      } else if (args[i] == "--limit" && i + 1 < args.size()) {
        limit = static_cast<std::uint64_t>(std::atoll(args[++i].c_str()));
      } else {
        return usage();
      }
    }
    return cmd_dump(args[1], cat, owner, limit);
  }
  return usage();
}
