// run_distributed: execute a scenario as a verified multi-process fleet.
//
//   $ run_distributed --workers 2 scenario.scn
//   $ run_distributed --workers 2 --check scenario.scn      # diff vs 1-process
//   $ run_distributed --workers 3 --threads 4 scenario.scn  # threads per process
//   $ run_distributed --workers 2 --capture run.ofrs scenario.scn
//
// Forks N worker processes plus runs the coordinator here (see
// src/dist/launch.h); every conservative window is a verified protocol
// round. The coordinator replica's report goes to stdout. --check
// additionally runs the same scenario single-process in this binary and
// compares the report byte-for-byte and the whole-run summary digest —
// the repo's headline determinism guarantee across *processes*. --capture
// tees every frame on the worker-0 link into an .ofrs stream that
// `omnisnap inspect` can dump.
//
// Exit status: 0 success (and --check matched), 1 any divergence, dead
// worker, or scenario error, 2 usage.
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "dist/launch.h"

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--workers N] [--threads N] [--check] [--observe]\n"
               "       %*s [--mode replica|partitioned] [--capture out.ofrs]\n"
               "       %*s <scenario-file>\n",
               argv0, static_cast<int>(std::string(argv0).size()), "",
               static_cast<int>(std::string(argv0).size()), "");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  omni::dist::EndpointConfig cfg;
  cfg.nworkers = 2;
  bool check = false;
  const char* path = nullptr;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&](const char* what) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs %s\n", arg.c_str(), what);
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--workers") {
      auto count = omni::dist::parse_worker_count(next("a count"));
      if (!count.is_ok()) {
        std::fprintf(stderr, "--workers: %s\n",
                     count.error_message().c_str());
        return usage(argv[0]);
      }
      cfg.nworkers = count.value();
    } else if (arg == "--mode") {
      auto mode = omni::dist::parse_run_mode(next("a mode"));
      if (!mode.is_ok()) {
        std::fprintf(stderr, "--mode: %s\n", mode.error_message().c_str());
        return usage(argv[0]);
      }
      cfg.mode = mode.value();
    } else if (arg == "--threads") {
      const long v = std::strtol(next("a count"), nullptr, 10);
      if (v < 1) {
        std::fprintf(stderr, "--threads must be >= 1\n");
        return 2;
      }
      cfg.threads = static_cast<unsigned>(v);
    } else if (arg == "--capture") {
      cfg.capture_path = next("an .ofrs path");
    } else if (arg == "--check") {
      check = true;
    } else if (arg == "--observe") {
      cfg.observe = true;
    } else if (arg[0] != '-' && path == nullptr) {
      path = argv[i];
    } else {
      return usage(argv[0]);
    }
  }
  if (path == nullptr) return usage(argv[0]);

  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "run_distributed: cannot read %s\n", path);
    return 1;
  }
  std::ostringstream text;
  text << in.rdbuf();
  cfg.scenario_text = text.str();

  auto fleet = omni::dist::run_local_fleet(cfg);
  if (!fleet.is_ok()) {
    std::fprintf(stderr, "run_distributed: %s\n",
                 fleet.error_message().c_str());
    return 1;
  }
  const omni::dist::FleetResult& res = fleet.value();
  std::fputs(res.report.c_str(), stdout);
  std::fprintf(stderr,
               "fleet: %u workers, %llu rounds, %llu frames, %llu bytes, "
               "%llu/%llu posts on wire/merged, state digest %016llx\n",
               cfg.nworkers,
               static_cast<unsigned long long>(res.stats.rounds),
               static_cast<unsigned long long>(res.stats.frames),
               static_cast<unsigned long long>(res.stats.bytes),
               static_cast<unsigned long long>(res.stats.posts_on_wire),
               static_cast<unsigned long long>(res.summary.mailbox_posts),
               static_cast<unsigned long long>(res.summary.state_digest));
  if (cfg.mode != omni::dist::RunMode::kReplica) {
    std::string owned;
    unsigned long long owned_sum = 0, desc_bytes = 0;
    for (std::size_t i = 0; i < res.workers.size(); ++i) {
      owned += (i ? " w" : "w") + std::to_string(i) + "=" +
               std::to_string(res.workers[i].owned_events);
      owned_sum += res.workers[i].owned_events;
      desc_bytes += res.workers[i].desc_post_bytes;
    }
    std::fprintf(stderr,
                 "partition: mode=%s, %llu/%llu node events owned (%s), "
                 "%llu descriptor payload bytes shipped\n",
                 omni::dist::run_mode_name(res.partition.mode), owned_sum,
                 static_cast<unsigned long long>(res.partition.node_events),
                 owned.c_str(), desc_bytes);
  }

  if (check) {
    auto single = omni::dist::run_single(cfg.scenario_text, cfg.threads,
                                         cfg.observe);
    if (!single.is_ok()) {
      std::fprintf(stderr, "run_distributed: 1-process reference failed: %s\n",
                   single.error_message().c_str());
      return 1;
    }
    if (single.value().report != res.report) {
      std::fprintf(stderr,
                   "run_distributed: CHECK FAILED: distributed report is not "
                   "byte-identical to the 1-process run\n");
      return 1;
    }
    const std::string diff =
        omni::dist::diff_summaries(res.summary, single.value().summary);
    if (!diff.empty()) {
      std::fprintf(stderr,
                   "run_distributed: CHECK FAILED: summary diverged "
                   "(fleet vs 1-process): %s\n",
                   diff.c_str());
      return 1;
    }
    if (cfg.mode != omni::dist::RunMode::kReplica) {
      std::uint64_t owned_sum = 0;
      for (const auto& w : res.workers) owned_sum += w.owned_events;
      if (owned_sum != single.value().node_events) {
        std::fprintf(stderr,
                     "run_distributed: CHECK FAILED: workers own %llu node "
                     "events, the 1-process run executed %llu\n",
                     static_cast<unsigned long long>(owned_sum),
                     static_cast<unsigned long long>(
                         single.value().node_events));
        return 1;
      }
    }
    std::fprintf(stderr,
                 "check: report byte-identical, digests equal at %u workers "
                 "vs 1 process\n",
                 cfg.nworkers);
  }
  return 0;
}
