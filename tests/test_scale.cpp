// Scale and determinism: a 20-device Omni neighborhood with contexts, data
// traffic, and churn must (a) fully converge, (b) stay affordable in event
// count, and (c) be bit-for-bit reproducible under a fixed seed.
#include <gtest/gtest.h>

#include <memory>

#include "net/testbed.h"
#include "omni/omni_node.h"

namespace omni {
namespace {

struct ScaleRun {
  std::size_t min_peers = SIZE_MAX;
  std::uint64_t total_contexts = 0;
  std::uint64_t total_data = 0;
  std::uint64_t events = 0;
  double energy_sum_ma = 0;
};

ScaleRun run_neighborhood(std::uint64_t seed) {
  net::Testbed bed(seed);
  constexpr int kNodes = 20;
  std::vector<net::Device*> devices;
  std::vector<std::unique_ptr<OmniNode>> nodes;
  std::uint64_t contexts = 0, data = 0;
  for (int i = 0; i < kNodes; ++i) {
    // A 30 m disc: everyone within BLE range of everyone.
    double angle = i * 6.283185 / kNodes;
    devices.push_back(&bed.add_device(
        "n" + std::to_string(i),
        {15 + 14 * std::cos(angle), 15 + 14 * std::sin(angle)}));
    nodes.push_back(std::make_unique<OmniNode>(*devices.back(), bed.mesh()));
    OmniManager& m = nodes.back()->manager();
    m.request_context(
        [&contexts](const OmniAddress&, const Bytes&) { ++contexts; });
    m.request_data([&data](const OmniAddress&, const Bytes&) { ++data; });
  }
  for (auto& n : nodes) n->start();

  // Every node shares a small context; node i sends data to node (i+1)%N
  // every 2 seconds.
  for (auto& n : nodes) {
    n->manager().add_context(ContextParams{}, Bytes{0x10}, nullptr);
  }
  for (int round = 0; round < 5; ++round) {
    bed.simulator().run_for(Duration::seconds(2));
    for (int i = 0; i < kNodes; ++i) {
      nodes[i]->manager().send_data(
          {nodes[(i + 1) % kNodes]->address()},
          Bytes(1000 + 100 * static_cast<std::size_t>(round), 0x42), nullptr);
    }
  }
  bed.simulator().run_for(Duration::seconds(10));

  ScaleRun result;
  for (int i = 0; i < kNodes; ++i) {
    result.min_peers = std::min(result.min_peers,
                                nodes[i]->manager().peer_table().size());
    result.energy_sum_ma += devices[i]->meter().average_ma(
        TimePoint::origin(), bed.simulator().now());
  }
  result.total_contexts = contexts;
  result.total_data = data;
  result.events = bed.simulator().executed_events();
  return result;
}

TEST(ScaleTest, TwentyNodeNeighborhoodConverges) {
  ScaleRun r = run_neighborhood(1234);
  EXPECT_EQ(r.min_peers, 19u);          // full mutual discovery
  EXPECT_EQ(r.total_data, 20u * 5u);    // every send delivered
  EXPECT_GT(r.total_contexts, 20u * 19u);  // context flows continuously
  // Event budget sanity: a 20-node, 20-second run should stay well under a
  // million events (it is a middleware simulation, not a packet simulator).
  EXPECT_LT(r.events, 1'000'000u);
}

TEST(ScaleTest, DeterministicUnderSeed) {
  ScaleRun a = run_neighborhood(777);
  ScaleRun b = run_neighborhood(777);
  EXPECT_EQ(a.total_contexts, b.total_contexts);
  EXPECT_EQ(a.total_data, b.total_data);
  EXPECT_EQ(a.events, b.events);
  EXPECT_DOUBLE_EQ(a.energy_sum_ma, b.energy_sum_ma);
}

TEST(ScaleTest, DifferentSeedsDiffer) {
  ScaleRun a = run_neighborhood(777);
  ScaleRun b = run_neighborhood(778);
  // Capture probabilities differ, so the context totals should too (the
  // data totals stay equal: delivery is reliable).
  EXPECT_NE(a.total_contexts, b.total_contexts);
  EXPECT_EQ(a.total_data, b.total_data);
}

}  // namespace
}  // namespace omni
