// Distributed engine: wire protocol hardening + fleet determinism.
//
// Covers the dist/ stack at three altitudes:
//   * frame codec: round trips, every truncation length, every byte
//     flipped — failures must name the damaged section, never crash
//   * transport: torn frames, EOF inside the length prefix, short reads,
//     and insane lengths over a real socketpair
//   * fleet: a 2- and 3-process run of the golden tourist scenario must
//     produce a byte-identical report and equal state digest vs the
//     1-process reference (the ROADMAP acceptance criterion), a worker
//     killed mid-window must fail loudly naming the round, and checkpoint
//     write failures must fail the run instead of being swallowed.
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <sys/socket.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include "dist/launch.h"
#include "dist/protocol.h"
#include "dist/transport.h"
#include "scenario/scenario.h"

namespace {

using namespace omni;
using namespace omni::dist;

std::string read_repo_file(const char* rel) {
  std::ifstream in(std::string(OMNI_REPO_DIR "/") + rel);
  EXPECT_TRUE(in.good()) << rel;
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

// A fleet run forks; keep the workload small so the matrix stays fast.
const char* kMiniScenario = R"(seed 3
device alpha 0 0
device bravo 20 0
device charlie 40 0 ble wifi multicast
advertise alpha interest:test
service charlie 3 kiosk
walk alpha at=1s to=30,0 speed=2
run 5s
report
run 3s
report
)";

Frame sample_done() {
  Frame f;
  f.type = FrameType::kWindowDone;
  f.sender = 1;
  f.round = 42;
  f.window = WindowBounds{500000, 510000, 1234, 56};
  f.posts.push_back(sim::PostRecord{TimePoint::from_micros(510000), 3, 7, 5});
  f.posts.push_back(
      sim::PostRecord{TimePoint::from_micros(511000), 9, 8, sim::kGlobalOwner});
  return f;
}

// --- Frame codec -------------------------------------------------------------

TEST(DistProtocol, RoundTripsEveryFrameType) {
  Frame hello;
  hello.type = FrameType::kHello;
  hello.sender = 2;
  hello.handshake = Handshake{kProtocolVersion, 2, 4, 99, 0xabcdef, 10000};
  Frame grant;
  grant.type = FrameType::kWindowGrant;
  grant.round = 7;
  grant.window = WindowBounds{100, 200, 10, 2};
  Frame fin;
  fin.type = FrameType::kFin;
  fin.round = 480;
  fin.summary = RunSummary{1, 2, 3, 4, 5, 6, 7, 8};
  Frame error;
  error.type = FrameType::kError;
  error.sender = 1;
  error.error = "deliberate";

  for (const Frame& f : {hello, grant, sample_done(), fin, error}) {
    const std::vector<std::uint8_t> bytes = encode_frame(f);
    Result<Frame> back = decode_frame(bytes);
    ASSERT_TRUE(back.is_ok()) << back.error_message();
    const Frame& g = back.value();
    EXPECT_EQ(g.type, f.type);
    EXPECT_EQ(g.sender, f.sender);
    EXPECT_EQ(g.round, f.round);
    EXPECT_TRUE(g.window == f.window);
    EXPECT_TRUE(g.summary == f.summary);
    EXPECT_EQ(g.error, f.error);
    ASSERT_EQ(g.posts.size(), f.posts.size());
    for (std::size_t i = 0; i < f.posts.size(); ++i) {
      EXPECT_TRUE(g.posts[i] == f.posts[i]);
    }
    EXPECT_FALSE(describe_frame(g).empty());
  }
}

TEST(DistProtocol, EveryTruncationLengthFailsWithDiagnostic) {
  const std::vector<std::uint8_t> bytes = encode_frame(sample_done());
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    Result<Frame> r = decode_frame(
        std::span<const std::uint8_t>(bytes.data(), len));
    ASSERT_FALSE(r.is_ok()) << "prefix of " << len << " bytes parsed";
    EXPECT_FALSE(r.error_message().empty());
  }
}

TEST(DistProtocol, EveryFlippedByteFailsAndPayloadFlipsNameTheSection) {
  const std::vector<std::uint8_t> bytes = encode_frame(sample_done());
  // Any single-bit corruption anywhere must be rejected (the container
  // checksums cover header, table, and payloads).
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    std::vector<std::uint8_t> bad = bytes;
    bad[i] ^= 0x40;
    Result<Frame> r = decode_frame(bad);
    ASSERT_FALSE(r.is_ok()) << "flip at byte " << i << " parsed";
  }
  // A flip inside a section payload must name that section. Recompute the
  // layout: 12-byte header, 20 bytes per table entry, payloads in order.
  Result<Frame> parsed = decode_frame(bytes);
  ASSERT_TRUE(parsed.is_ok());
  const std::vector<std::uint8_t> reenc = encode_frame(parsed.value());
  ASSERT_EQ(reenc, bytes) << "canonical re-encode must round trip";
  SectionContainer c;
  {
    auto pc = codec::parse_container(bytes, frame_spec());
    ASSERT_TRUE(pc.is_ok());
    c = std::move(pc).value();
  }
  std::size_t off = 12 + 20 * c.sections.size();
  for (const Section& sec : c.sections) {
    if (!sec.bytes.empty()) {
      std::vector<std::uint8_t> bad = bytes;
      bad[off + sec.bytes.size() / 2] ^= 0xff;
      Result<Frame> r = decode_frame(bad);
      ASSERT_FALSE(r.is_ok());
      const std::string want = std::string("section '") +
                               frame_section_name(sec.id) + "'";
      EXPECT_NE(r.error_message().find(want), std::string::npos)
          << r.error_message() << " should contain " << want;
    }
    off += sec.bytes.size();
  }
}

TEST(DistProtocol, PostsDigestIsOrderAndContentSensitive) {
  Frame f = sample_done();
  const std::uint64_t d = posts_digest(f.posts);
  std::vector<sim::PostRecord> swapped = {f.posts[1], f.posts[0]};
  EXPECT_NE(posts_digest(swapped), d);
  std::vector<sim::PostRecord> tweaked = f.posts;
  tweaked[0].seq ^= 1;
  EXPECT_NE(posts_digest(tweaked), d);
  EXPECT_EQ(posts_digest(f.posts), d);
}

TEST(DistProtocol, DiffSummariesNamesTheDivergentField) {
  RunSummary a{10, 2, 3, 4, 5, 6, 7, 8};
  RunSummary b = a;
  EXPECT_EQ(diff_summaries(a, b), "");
  b.rng_digest ^= 0xdead;
  b.executed += 1;
  const std::string diff = diff_summaries(a, b);
  EXPECT_NE(diff.find("rng_digest"), std::string::npos) << diff;
  EXPECT_NE(diff.find("executed"), std::string::npos) << diff;
}

TEST(DistProtocol, FrameStreamParsesAndNamesBadFrameIndex) {
  ByteWriter stream;
  const std::vector<Frame> frames = {sample_done(), sample_done()};
  for (const Frame& f : frames) {
    const std::vector<std::uint8_t> enc = encode_frame(f);
    stream.var(enc.size());
    for (std::uint8_t b : enc) stream.u8(b);
  }
  std::vector<Frame> out;
  Status st = parse_frame_stream(stream.bytes(), out);
  ASSERT_TRUE(st.is_ok()) << st.message();
  EXPECT_EQ(out.size(), 2u);

  // Corrupt the second frame's payload: parse keeps frame 0 and the error
  // names frame 1.
  std::vector<std::uint8_t> bad = stream.bytes();
  bad[bad.size() - 10] ^= 0xff;
  out.clear();
  st = parse_frame_stream(bad, out);
  ASSERT_FALSE(st.is_ok());
  EXPECT_EQ(out.size(), 1u);
  EXPECT_NE(st.message().find("frame 1"), std::string::npos) << st.message();
}

TEST(DistProtocol, OwnerWorkerShardsAndRoutesGlobalToCoordinator) {
  EXPECT_EQ(owner_worker(sim::kGlobalOwner, 4), kCoordinatorId);
  EXPECT_EQ(owner_worker(0, 2), 0u);
  EXPECT_EQ(owner_worker(1, 2), 1u);
  EXPECT_EQ(owner_worker(5, 2), 1u);
  EXPECT_EQ(owner_worker(7, 1), 0u);
}

// --- Transport ---------------------------------------------------------------

struct Pair {
  Transport a, b;
};

Pair make_pair_() {
  int sv[2];
  EXPECT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);
  return Pair{Transport(sv[0], "left"), Transport(sv[1], "right")};
}

TEST(DistTransport, FramesSurviveTheSocket) {
  Pair p = make_pair_();
  Status s = send_frame(p.a, sample_done());
  ASSERT_TRUE(s.is_ok()) << s.message();
  Result<Frame> r = recv_frame(p.b);
  ASSERT_TRUE(r.is_ok()) << r.error_message();
  EXPECT_EQ(r.value().round, 42u);
  EXPECT_EQ(p.a.stats().frames_sent, 1u);
  EXPECT_EQ(p.b.stats().frames_received, 1u);
  EXPECT_EQ(p.a.stats().bytes_sent, p.b.stats().bytes_received);
}

TEST(DistTransport, CleanEofIsNamed) {
  Pair p = make_pair_();
  p.a.close();
  Result<Frame> r = recv_frame(p.b);
  ASSERT_FALSE(r.is_ok());
  EXPECT_NE(r.error_message().find("connection closed by right"),
            std::string::npos)
      << r.error_message();
}

TEST(DistTransport, EofInsideLengthPrefixIsTorn) {
  int sv[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);
  Transport rx(sv[0], "peer");
  const std::uint8_t partial_varint = 0x85;  // continuation bit set
  ASSERT_EQ(::send(sv[1], &partial_varint, 1, 0), 1);
  ::close(sv[1]);
  Result<Frame> r = recv_frame(rx);
  ASSERT_FALSE(r.is_ok());
  EXPECT_NE(r.error_message().find("length prefix"), std::string::npos)
      << r.error_message();
}

TEST(DistTransport, EofInsidePayloadReportsShortRead) {
  int sv[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);
  Transport rx(sv[0], "peer");
  const std::uint8_t torn[] = {0x20, 1, 2, 3};  // promises 32, sends 3
  ASSERT_EQ(::send(sv[1], torn, sizeof(torn), 0),
            static_cast<ssize_t>(sizeof(torn)));
  ::close(sv[1]);
  Result<Frame> r = recv_frame(rx);
  ASSERT_FALSE(r.is_ok());
  EXPECT_NE(r.error_message().find("torn frame"), std::string::npos)
      << r.error_message();
  EXPECT_NE(r.error_message().find("3 of 32"), std::string::npos)
      << r.error_message();
}

TEST(DistTransport, InsaneLengthIsRejectedNotAllocated) {
  int sv[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);
  Transport rx(sv[0], "peer");
  ByteWriter w;
  w.var(std::uint64_t{1} << 40);  // a terabyte "frame"
  ASSERT_EQ(::send(sv[1], w.bytes().data(), w.bytes().size(), 0),
            static_cast<ssize_t>(w.bytes().size()));
  Result<Frame> r = recv_frame(rx);
  ASSERT_FALSE(r.is_ok());
  EXPECT_NE(r.error_message().find("insane frame length"), std::string::npos)
      << r.error_message();
  ::close(sv[1]);
}

TEST(DistTransport, GarbagePayloadIsBadFrameNotUb) {
  Pair p = make_pair_();
  // A well-framed length followed by non-container bytes: the transport
  // delivers it, decode rejects it with the codec's diagnostic.
  int fd_garbage[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fd_garbage), 0);
  Transport rx(fd_garbage[0], "fuzzer");
  std::uint8_t msg[] = {0x04, 'J', 'U', 'N', 'K'};
  ASSERT_EQ(::send(fd_garbage[1], msg, sizeof(msg), 0),
            static_cast<ssize_t>(sizeof(msg)));
  Result<Frame> r = recv_frame(rx);
  ASSERT_FALSE(r.is_ok());
  EXPECT_NE(r.error_message().find("bad frame from fuzzer"),
            std::string::npos)
      << r.error_message();
  ::close(fd_garbage[1]);
}

// --- Fleet -------------------------------------------------------------------

TEST(DistFleet, TwoProcessRunMatchesSingleByteForByte) {
  const std::string scenario =
      read_repo_file("examples/scenarios/tourist.scn");
  auto single = run_single(scenario);
  ASSERT_TRUE(single.is_ok()) << single.error_message();

  EndpointConfig cfg;
  cfg.scenario_text = scenario;
  cfg.nworkers = 2;
  auto fleet = run_local_fleet(cfg);
  ASSERT_TRUE(fleet.is_ok()) << fleet.error_message();

  // The ROADMAP acceptance criterion: byte-identical report, equal digest.
  EXPECT_EQ(fleet.value().report, single.value().report);
  EXPECT_EQ(diff_summaries(fleet.value().summary, single.value().summary),
            "");
  EXPECT_GT(fleet.value().stats.rounds, 0u);
}

TEST(DistFleet, ThreeProcessesMixedThreadCountsStillAgree) {
  auto single = run_single(kMiniScenario, /*threads=*/1);
  ASSERT_TRUE(single.is_ok()) << single.error_message();
  EndpointConfig cfg;
  cfg.scenario_text = kMiniScenario;
  cfg.nworkers = 3;
  cfg.threads = 2;  // every process runs the parallel engine
  auto fleet = run_local_fleet(cfg);
  ASSERT_TRUE(fleet.is_ok()) << fleet.error_message();
  EXPECT_EQ(fleet.value().report, single.value().report);
  EXPECT_EQ(fleet.value().summary.state_digest,
            single.value().summary.state_digest);
}

TEST(DistFleet, CaptureStreamIsInspectable) {
  const std::string path = ::testing::TempDir() + "dist_capture.ofrs";
  EndpointConfig cfg;
  cfg.scenario_text = kMiniScenario;
  cfg.nworkers = 2;
  cfg.capture_path = path;
  auto fleet = run_local_fleet(cfg);
  ASSERT_TRUE(fleet.is_ok()) << fleet.error_message();

  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in.good());
  std::vector<std::uint8_t> bytes(
      (std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
  std::vector<Frame> frames;
  Status st = parse_frame_stream(bytes, frames);
  ASSERT_TRUE(st.is_ok()) << st.message();
  ASSERT_GE(frames.size(), 4u);
  EXPECT_EQ(frames.front().type, FrameType::kHello);
  EXPECT_EQ(frames[1].type, FrameType::kWelcome);
  EXPECT_EQ(frames[frames.size() - 2].type, FrameType::kFin);
  EXPECT_EQ(frames.back().type, FrameType::kFinished);
  std::remove(path.c_str());
}

TEST(DistFleet, KilledWorkerFailsLoudlyNamingTheRound) {
  EndpointConfig cfg;
  cfg.scenario_text = kMiniScenario;
  cfg.nworkers = 2;
  cfg.die_at_round = 3;  // worker 0 vanishes mid-run without a goodbye
  auto fleet = run_local_fleet(cfg);
  ASSERT_FALSE(fleet.is_ok());
  EXPECT_NE(fleet.error_message().find("worker 0 is gone"), std::string::npos)
      << fleet.error_message();
  EXPECT_NE(fleet.error_message().find("round 3"), std::string::npos)
      << fleet.error_message();
  EXPECT_NE(fleet.error_message().find("dead"), std::string::npos)
      << fleet.error_message();
}

TEST(DistFleet, ScenarioMismatchIsRefusedAtHandshake) {
  // Same fleet, but worker replicas get a different scenario than the
  // coordinator — impossible through run_local_fleet's one-config API, so
  // drive a 1-worker handshake by hand over a socketpair.
  int sv[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);
  Transport wire(sv[0], "worker 0");
  Transport worker_side(sv[1], "coordinator");

  Frame hello;
  hello.type = FrameType::kHello;
  hello.sender = 0;
  hello.handshake = Handshake{kProtocolVersion, 0, 1, /*seed=*/3,
                              /*scenario_hash=*/0xbad, /*lookahead_us=*/10000};
  ASSERT_TRUE(send_frame(worker_side, hello).is_ok());

  EndpointConfig cfg;
  cfg.scenario_text = kMiniScenario;
  cfg.nworkers = 1;
  std::vector<Transport> links;
  links.push_back(std::move(wire));
  Coordinator coord(cfg, std::move(links));
  std::ostringstream os;
  Status st = coord.run(os);
  ASSERT_FALSE(st.is_ok());
  EXPECT_NE(st.message().find("mismatch"), std::string::npos) << st.message();
  Result<Frame> refusal = recv_frame(worker_side);
  ASSERT_TRUE(refusal.is_ok()) << refusal.error_message();
  EXPECT_EQ(refusal.value().type, FrameType::kError);
}

// --- Typed posts & partition stats on the wire -------------------------------

// sample_done() with post 0 upgraded to a typed descriptor post (post 1
// stays a closure), exercising the desc-posts companion section with a real
// payload instead of two bare closure markers.
Frame sample_typed_done() {
  Frame f = sample_done();
  f.posts[0].kind = sim::kEventTestA;
  f.posts[0].psize = sim::pack_u32s(f.posts[0].payload, {11u, 22u, 33u});
  return f;
}

TEST(DistProtocol, TypedPostsRoundTripKindAndPayload) {
  const Frame f = sample_typed_done();
  Result<Frame> back = decode_frame(encode_frame(f));
  ASSERT_TRUE(back.is_ok()) << back.error_message();
  const Frame& g = back.value();
  ASSERT_EQ(g.posts.size(), 2u);
  EXPECT_EQ(g.posts[0].kind, sim::kEventTestA);
  EXPECT_EQ(g.posts[0].psize, f.posts[0].psize);
  EXPECT_EQ(g.posts[1].kind, sim::kEventClosure);
  for (std::size_t i = 0; i < f.posts.size(); ++i) {
    EXPECT_TRUE(g.posts[i] == f.posts[i]) << "post " << i;
  }
}

TEST(DistProtocol, TypedDoneSurvivesTheFuzzAndFlipsNameDescPosts) {
  const std::vector<std::uint8_t> bytes = encode_frame(sample_typed_done());
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    Result<Frame> r =
        decode_frame(std::span<const std::uint8_t>(bytes.data(), len));
    ASSERT_FALSE(r.is_ok()) << "prefix of " << len << " bytes parsed";
    EXPECT_FALSE(r.error_message().empty());
  }
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    std::vector<std::uint8_t> bad = bytes;
    bad[i] ^= 0x40;
    ASSERT_FALSE(decode_frame(bad).is_ok()) << "flip at byte " << i;
  }
  // A flip inside the descriptor-post payload must name that section.
  SectionContainer c;
  {
    auto pc = codec::parse_container(bytes, frame_spec());
    ASSERT_TRUE(pc.is_ok());
    c = std::move(pc).value();
  }
  std::size_t off = 12 + 20 * c.sections.size();
  bool covered_desc_posts = false;
  for (const Section& sec : c.sections) {
    if (sec.id == kFSecDescPosts) {
      ASSERT_FALSE(sec.bytes.empty());
      std::vector<std::uint8_t> bad = bytes;
      bad[off + sec.bytes.size() / 2] ^= 0xff;
      Result<Frame> r = decode_frame(bad);
      ASSERT_FALSE(r.is_ok());
      EXPECT_NE(r.error_message().find("section 'desc-posts'"),
                std::string::npos)
          << r.error_message();
      covered_desc_posts = true;
    }
    off += sec.bytes.size();
  }
  EXPECT_TRUE(covered_desc_posts)
      << "WindowDone frames must carry the desc-posts section";
}

TEST(DistProtocol, HandshakeModeAndPartitionStatsRoundTrip) {
  Frame hello;
  hello.type = FrameType::kHello;
  hello.sender = 1;
  hello.handshake = Handshake{kProtocolVersion, 1,      2,
                              99,               0xfeed, 10000,
                              RunMode::kPartitioned};
  Result<Frame> h = decode_frame(encode_frame(hello));
  ASSERT_TRUE(h.is_ok()) << h.error_message();
  EXPECT_EQ(h.value().handshake.mode, RunMode::kPartitioned);

  Frame fin;
  fin.type = FrameType::kFinished;
  fin.sender = 1;
  fin.round = 9;
  fin.summary = RunSummary{1, 2, 3, 4, 5, 6, 7, 8};
  fin.partition = PartitionStats{RunMode::kFallback, 123, 456, 78,
                                 /*fallback_round_plus1=*/5,
                                 sim::kEventClosure};
  Result<Frame> back = decode_frame(encode_frame(fin));
  ASSERT_TRUE(back.is_ok()) << back.error_message();
  EXPECT_TRUE(back.value().partition == fin.partition);
  // The human rendering shows the partition story (mode + fallback round).
  const std::string desc = describe_frame(back.value());
  EXPECT_NE(desc.find("fallback"), std::string::npos) << desc;
}

// --- Partitioned fleet -------------------------------------------------------

TEST(DistPartitioned, TwoWorkersMatchSingleAndOwnershipTiles) {
  const std::string scenario =
      read_repo_file("examples/scenarios/tourist.scn");
  auto single = run_single(scenario);
  ASSERT_TRUE(single.is_ok()) << single.error_message();

  for (unsigned threads : {1u, 2u}) {
    EndpointConfig cfg;
    cfg.scenario_text = scenario;
    cfg.nworkers = 2;
    cfg.threads = threads;
    cfg.mode = RunMode::kPartitioned;
    auto fleet = run_local_fleet(cfg);
    ASSERT_TRUE(fleet.is_ok()) << fleet.error_message();
    const FleetResult& res = fleet.value();

    // Same acceptance bar as replica mode: byte-identical report and digest.
    EXPECT_EQ(res.report, single.value().report) << "threads " << threads;
    EXPECT_EQ(res.summary.state_digest,
              single.value().summary.state_digest);

    // No closure crossed a process boundary on this workload, so the run
    // must have stayed partitioned...
    EXPECT_EQ(res.partition.mode, RunMode::kPartitioned);
    ASSERT_EQ(res.workers.size(), 2u);
    // ...and the workers' owned node events must tile the 1-process
    // node-event total exactly (every node event owned by exactly one
    // worker), reasonably evenly (each within 60/40 on tourist).
    std::uint64_t owned = 0;
    for (const PartitionStats& w : res.workers) {
      EXPECT_EQ(w.mode, RunMode::kPartitioned);
      owned += w.owned_events;
    }
    EXPECT_EQ(owned, single.value().node_events);
    for (std::size_t i = 0; i < res.workers.size(); ++i) {
      EXPECT_GE(res.workers[i].owned_events * 10, owned * 4)
          << "worker " << i << " owns too little";
      EXPECT_LE(res.workers[i].owned_events * 10, owned * 6)
          << "worker " << i << " owns too much";
    }
  }
}

TEST(DistPartitioned, CrossProcessClosurePostFallsBackLoudly) {
  EndpointConfig cfg;
  cfg.scenario_text = kMiniScenario;
  cfg.nworkers = 2;
  cfg.mode = RunMode::kPartitioned;
  // Plant a node-0 closure that posts cross-owner work mid-window: it
  // cannot ship as data, so every replica must independently fall back.
  cfg.inject_closure_post_at_us = 2000000;
  auto fleet = run_local_fleet(cfg);
  ASSERT_TRUE(fleet.is_ok()) << fleet.error_message();
  const FleetResult& res = fleet.value();
  EXPECT_EQ(res.partition.mode, RunMode::kFallback);
  EXPECT_GT(res.partition.fallback_round_plus1, 0u);
  EXPECT_EQ(res.partition.fallback_kind,
            static_cast<std::uint32_t>(sim::kEventClosure));
  // The verdict is computed from the merged post list every replica sees
  // identically — all endpoints must agree without coordination frames.
  ASSERT_EQ(res.workers.size(), 2u);
  for (const PartitionStats& w : res.workers) {
    EXPECT_EQ(w.mode, RunMode::kFallback);
    EXPECT_EQ(w.fallback_round_plus1, res.partition.fallback_round_plus1);
  }
}

TEST(DistPartitioned, ReplicaModeRunsKeepPartitionAccountingOff) {
  EndpointConfig cfg;
  cfg.scenario_text = kMiniScenario;
  cfg.nworkers = 2;
  auto fleet = run_local_fleet(cfg);
  ASSERT_TRUE(fleet.is_ok()) << fleet.error_message();
  EXPECT_EQ(fleet.value().partition.mode, RunMode::kReplica);
  for (const PartitionStats& w : fleet.value().workers) {
    EXPECT_EQ(w.mode, RunMode::kReplica);
    EXPECT_EQ(w.owned_events, 0u);
  }
}

// --- CLI argument parsing ----------------------------------------------------

TEST(DistLaunch, WorkerCountParserRejectsGarbage) {
  EXPECT_TRUE(parse_worker_count("1").is_ok());
  EXPECT_EQ(parse_worker_count("64").value(), 64u);
  for (const char* bad : {"0", "65", "", "2x", "-1", "abc"}) {
    auto r = parse_worker_count(bad);
    EXPECT_FALSE(r.is_ok()) << "'" << bad << "' accepted";
  }
}

TEST(DistLaunch, RunModeParserAcceptsOnlyRequestableModes) {
  ASSERT_TRUE(parse_run_mode("replica").is_ok());
  EXPECT_EQ(parse_run_mode("replica").value(), RunMode::kReplica);
  EXPECT_EQ(parse_run_mode("partitioned").value(), RunMode::kPartitioned);
  // "fallback" is an outcome, not a requestable mode.
  for (const char* bad : {"", "fallback", "bogus", "Replica"}) {
    auto r = parse_run_mode(bad);
    EXPECT_FALSE(r.is_ok()) << "'" << bad << "' accepted";
  }
}

// --- Checkpoint / resume error propagation ----------------------------------

TEST(DistErrors, CheckpointWriteFailureFailsTheRun) {
  // Point the checkpoint daemon at a directory that cannot exist: a path
  // *through* an existing regular file. Before the fix the writes failed
  // silently and the run "succeeded" with zero checkpoints.
  const std::string blocker = ::testing::TempDir() + "dist_blocker";
  {
    std::ofstream f(blocker);
    f << "not a directory";
  }
  const std::string scenario = std::string("seed 3\n") +
                               "device a 0 0\n" +
                               "checkpoint every 1s " + blocker + "/sub\n" +
                               "run 2s\n";
  auto parsed = scenario::Scenario::parse(scenario);
  ASSERT_TRUE(parsed.is_ok()) << parsed.error_message();
  std::ostringstream os;
  Status st = parsed.value()->run(os);
  ASSERT_FALSE(st.is_ok());
  EXPECT_NE(st.message().find("checkpoint:"), std::string::npos)
      << st.message();
  std::remove(blocker.c_str());
}

TEST(DistErrors, ResumeFromCorruptSnapshotNamesTheDamage) {
  const std::string scenario = std::string("seed 3\n") +
                               "device a 0 0\n" +
                               "snapshot " + ::testing::TempDir() +
                               "dist_resume.osnap\n" + "run 1s\n";
  auto parsed = scenario::Scenario::parse(scenario);
  ASSERT_TRUE(parsed.is_ok()) << parsed.error_message();
  std::ostringstream os;
  ASSERT_TRUE(parsed.value()->run(os).is_ok());

  // Truncate the snapshot and resume from it: the fail-soft reader's
  // diagnostic must surface through the scenario error, not vanish.
  const std::string path = ::testing::TempDir() + "dist_resume.osnap";
  std::ifstream in(path, std::ios::binary);
  std::vector<char> bytes((std::istreambuf_iterator<char>(in)),
                          std::istreambuf_iterator<char>());
  in.close();
  ASSERT_GT(bytes.size(), 16u);
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size() / 2));
  out.close();
  std::ostringstream os2;
  Status st = parsed.value()->run(os2, 1, false, path);
  ASSERT_FALSE(st.is_ok());
  EXPECT_NE(st.message().find("truncated"), std::string::npos)
      << st.message();
  std::remove(path.c_str());
}

}  // namespace
