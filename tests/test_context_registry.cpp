#include <gtest/gtest.h>

#include "omni/context_registry.h"

namespace omni {
namespace {

TEST(ContextRegistryTest, AddAssignsSequentialIds) {
  ContextRegistry reg;
  ContextId a = reg.add({}, Bytes{1}, nullptr);
  ContextId b = reg.add({}, Bytes{2}, nullptr);
  EXPECT_NE(a, kInvalidContext);
  EXPECT_NE(a, b);
  EXPECT_EQ(reg.size(), 2u);
}

TEST(ContextRegistryTest, FindReturnsRecord) {
  ContextRegistry reg;
  ContextParams params;
  params.interval = Duration::millis(250);
  ContextId id = reg.add(params, Bytes{7, 8}, nullptr);
  ContextRecord* rec = reg.find(id);
  ASSERT_NE(rec, nullptr);
  EXPECT_EQ(rec->id, id);
  EXPECT_EQ(rec->content, (Bytes{7, 8}));
  EXPECT_EQ(rec->params.interval, Duration::millis(250));
  EXPECT_FALSE(rec->tech.has_value());
  EXPECT_FALSE(rec->active);
  EXPECT_EQ(reg.find(999), nullptr);
}

TEST(ContextRegistryTest, RemoveErases) {
  ContextRegistry reg;
  ContextId id = reg.add({}, Bytes{1}, nullptr);
  EXPECT_TRUE(reg.remove(id));
  EXPECT_EQ(reg.find(id), nullptr);
  EXPECT_FALSE(reg.remove(id));
}

TEST(ContextRegistryTest, OnTechFiltersByAssignment) {
  ContextRegistry reg;
  ContextId a = reg.add({}, Bytes{1}, nullptr);
  ContextId b = reg.add({}, Bytes{2}, nullptr);
  ContextId c = reg.add({}, Bytes{3}, nullptr);
  reg.find(a)->tech = Technology::kBle;
  reg.find(b)->tech = Technology::kWifiMulticast;
  reg.find(c)->tech = Technology::kBle;
  auto on_ble = reg.on_tech(Technology::kBle);
  EXPECT_EQ(on_ble.size(), 2u);
  EXPECT_EQ(reg.on_tech(Technology::kWifiMulticast).size(), 1u);
  EXPECT_TRUE(reg.on_tech(Technology::kWifiUnicast).empty());
}

TEST(ContextRegistryTest, IdsListsEverything) {
  ContextRegistry reg;
  reg.add({}, {}, nullptr);
  reg.add({}, {}, nullptr);
  EXPECT_EQ(reg.ids().size(), 2u);
}

}  // namespace
}  // namespace omni
