// Chaos soak: a 12-node neighborhood runs a full minute of virtual time
// under a composite fault schedule — background loss/corruption/latency,
// WiFi and BLE flap windows, two crash+restart cycles with address
// rotation, and a transient geometric partition — while every node keeps
// sending data around the ring.
//
// Asserts the two properties the fault engine promises:
//  * self-healing invariants: every op reaches a terminal status and all
//    manager op tables drain to empty (during the run and after stop());
//  * determinism: a digest over every deterministic observable is
//    byte-identical at 1, 2, and 8 threads.
//
// The checkpointed variant additionally snapshots the full run state every
// 10 virtual seconds; should a divergence ever appear, the first divergent
// checkpoint pins it to a 10 s window and the failure message carries the
// exact omnisnap command line that reproduces the comparison offline.
#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "net/testbed.h"
#include "obs/omniscope.h"
#include "omni/manager_snapshot.h"
#include "omni/omni_node.h"
#include "sim/snapshot.h"

namespace omni {
namespace {

constexpr int kNodes = 12;
constexpr std::uint64_t kSeed = 20260805;

/// FNV-1a accumulator over 64-bit words.
struct Digest {
  std::uint64_t h = 0xcbf29ce484222325ull;
  void add(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xFF;
      h *= 0x00000100000001B3ull;
    }
  }
};

struct ChaosResult {
  std::uint64_t digest = 0;
  int sends_ok = 0;
  int sends_failed = 0;
  std::uint64_t deadline_failovers = 0;
  std::uint64_t beacon_rearms = 0;
  sim::FaultPlan::Stats fault_stats;
  /// Canonical Omniscope metrics dump — a second, independent digest that
  /// must also be thread-count invariant.
  std::string metrics;
  /// Checkpoint files written during the run (empty unless armed).
  std::vector<std::string> checkpoints;
};

ChaosResult run_chaos(unsigned threads, const std::string& ckpt_dir = "") {
  net::Testbed bed(kSeed, radio::Calibration::defaults(), threads);
  obs::Omniscope& scope = bed.enable_observability();
  std::vector<net::Device*> devices;
  std::vector<std::unique_ptr<OmniNode>> nodes;
  for (int i = 0; i < kNodes; ++i) {
    // Two rows of six, 15 m apart: everything inside BLE range of its
    // neighbors, the whole field inside WiFi range.
    sim::Vec2 pos{15.0 * (i % 6), 20.0 * (i / 6)};
    devices.push_back(&bed.add_device("n" + std::to_string(i), pos));
    nodes.push_back(std::make_unique<OmniNode>(*devices.back(), bed.mesh()));
  }

  auto at = [](double s) {
    return TimePoint::origin() + Duration::seconds(s);
  };
  auto& plan = bed.fault_plan();
  // Background degradation on every link for the entire run. Corruption is
  // kept low: every corrupted frame is a decoder WARN line.
  sim::FaultPlan::LinkFault noisy;
  noisy.loss = 0.15;
  noisy.corrupt = 0.01;
  noisy.extra_latency = Duration::millis(2);
  plan.add_link_fault(noisy);
  // Radio flap windows.
  sim::FaultPlan::Blackout wifi_flap;
  wifi_flap.node = devices[2]->node();
  wifi_flap.radio = sim::FaultRadio::kWifi;
  wifi_flap.start = at(10);
  wifi_flap.end = at(30);
  wifi_flap.period = Duration::seconds(3);
  wifi_flap.off_fraction = 0.5;
  plan.add_blackout(wifi_flap);
  sim::FaultPlan::Blackout ble_flap;
  ble_flap.node = devices[5]->node();
  ble_flap.radio = sim::FaultRadio::kBle;
  ble_flap.start = at(15);
  ble_flap.end = at(35);
  ble_flap.period = Duration::seconds(4);
  ble_flap.off_fraction = 0.4;
  plan.add_blackout(ble_flap);
  // Crash/restart churn with BLE address rotation.
  sim::FaultPlan::Crash crash1;
  crash1.node = devices[3]->node();
  crash1.at = at(12);
  crash1.restart = at(20);
  plan.add_crash(crash1);
  sim::FaultPlan::Crash crash2;
  crash2.node = devices[8]->node();
  crash2.at = at(25);
  crash2.restart = at(33);
  plan.add_crash(crash2);
  // Transient partition cutting the field at x = 40.
  sim::FaultPlan::Partition split;
  split.start = at(20);
  split.end = at(35);
  split.a = 1.0;
  split.b = 0.0;
  split.c = 40.0;
  plan.add_partition(split);
  bed.schedule_faults();

  // Auto-checkpointing: full state (sim + managers, deep peer tables) every
  // 10 virtual seconds. Checkpoint capture is itself an event, so only runs
  // with the same cadence are digest-comparable.
  if (!ckpt_dir.empty()) {
    bed.add_snapshot_source([&nodes](sim::Snapshot& snap) {
      std::vector<const OmniManager*> managers;
      managers.reserve(nodes.size());
      for (const auto& n : nodes) managers.push_back(&n->manager());
      capture_managers(managers, /*deep=*/true, snap);
    });
    bed.checkpoint_every(Duration::seconds(10), ckpt_dir);
  }

  for (auto& n : nodes) n->start();

  // Ring traffic: node i sends to node (i+1) twice, staggered, with a mix
  // of BLE-sized and WiFi-sized payloads.
  // Completion callbacks run on each sender's owner context, so with
  // threads > 1 they fire concurrently across shards; the tallies must be
  // atomic (the totals are order-independent, so still deterministic).
  ChaosResult result;
  std::atomic<int> callbacks{0};
  std::atomic<int> sends_ok{0};
  std::atomic<int> sends_failed{0};
  int ops = 0;
  auto count = [&](StatusCode code, const ResponseInfo&) {
    callbacks.fetch_add(1, std::memory_order_relaxed);
    if (code == StatusCode::kSendDataSuccess) {
      sends_ok.fetch_add(1, std::memory_order_relaxed);
    } else {
      sends_failed.fetch_add(1, std::memory_order_relaxed);
    }
  };
  for (int i = 0; i < kNodes; ++i) {
    OmniManager& mgr = nodes[i]->manager();
    OmniAddress dest = nodes[(i + 1) % kNodes]->address();
    std::size_t bytes = (i % 3 == 0) ? 150'000 : 60 + i;
    bed.simulator().at(at(8.0 + 1.5 * i), [&mgr, dest, bytes, &count, &ops] {
      ++ops;
      mgr.send_data({dest}, Bytes(bytes, 0xC4), count);
    });
    bed.simulator().at(at(28.0 + 1.5 * i), [&mgr, dest, &count, &ops] {
      ++ops;
      mgr.send_data({dest}, Bytes(96, 0xC5), count);
    });
  }

  bed.simulator().run_for(Duration::seconds(60));

  // Invariant: every op reached a terminal status and nothing leaked.
  result.sends_ok = sends_ok.load(std::memory_order_relaxed);
  result.sends_failed = sends_failed.load(std::memory_order_relaxed);
  EXPECT_EQ(callbacks.load(std::memory_order_relaxed), ops);
  for (auto& n : nodes) {
    EXPECT_EQ(n->manager().pending_data_count(), 0u);
    EXPECT_EQ(n->manager().data_attempt_count(), 0u);
    EXPECT_EQ(n->manager().context_attempt_count(), 0u);
  }

  // Digest every deterministic observable.
  Digest d;
  d.add(bed.simulator().executed_events());
  d.add(bed.simulator().now().as_micros());
  for (auto& n : nodes) {
    const ManagerStats& s = n->manager().stats();
    d.add(n->manager().peer_table().size());
    d.add(s.packets_received);
    d.add(s.beacons_received);
    d.add(s.data_received);
    d.add(s.data_sends);
    d.add(s.data_failovers);
    d.add(s.context_failovers);
    d.add(s.engagements);
    d.add(s.disengagements);
    d.add(s.deadline_failovers);
    d.add(s.beacon_rearms);
    d.add(s.quarantines);
    d.add(s.overload_rejections);
    result.deadline_failovers += s.deadline_failovers;
    result.beacon_rearms += s.beacon_rearms;
  }
  result.fault_stats = plan.stats();
  d.add(result.fault_stats.drops);
  d.add(result.fault_stats.corruptions);
  d.add(result.fault_stats.delays);
  d.add(result.fault_stats.partition_drops);
  d.add(static_cast<std::uint64_t>(result.sends_ok));
  d.add(static_cast<std::uint64_t>(result.sends_failed));
  result.digest = d.h;
  result.metrics = scope.metrics_dump();
  result.checkpoints = bed.checkpoints();
  EXPECT_GT(scope.metrics().counter_total(scope.core().fault_drops), 0u);

  for (auto& n : nodes) n->stop();
  bed.simulator().run_for(Duration::seconds(1));
  for (auto& n : nodes) {
    EXPECT_EQ(n->manager().pending_data_count(), 0u);
    EXPECT_EQ(n->manager().data_attempt_count(), 0u);
    EXPECT_EQ(n->manager().context_attempt_count(), 0u);
  }
  return result;
}

TEST(ChaosSoakTest, FaultsActuallyInject) {
  ChaosResult r = run_chaos(1);
  EXPECT_GT(r.fault_stats.drops, 0u);
  EXPECT_GT(r.fault_stats.corruptions, 0u);
  EXPECT_GT(r.fault_stats.delays, 0u);
  EXPECT_GT(r.fault_stats.partition_drops, 0u);
  // The schedule is harsh but the neighborhood still mostly works.
  EXPECT_GT(r.sends_ok, 0);
  EXPECT_GT(r.sends_ok + r.sends_failed, 0);
}

// Checkpointed soak at two thread counts: digests must still agree, and
// every pair of same-instant checkpoints must be byte-identical once the
// manifest (which records the capturing thread count) is excluded. If a
// divergence ever slips in, the failure message names the first divergent
// checkpoint — bounding the bug to one 10 s window — and carries the
// omnisnap command line that reproduces the comparison offline.
TEST(ChaosSoakTest, CheckpointBisectionPinpointsDivergence) {
  namespace fs = std::filesystem;
  const fs::path base = fs::temp_directory_path() /
                        ("omni_chaos_bisect_" + std::to_string(::getpid()));
  const std::string dir1 = (base / "t1").string();
  const std::string dir8 = (base / "t8").string();
  ChaosResult r1 = run_chaos(1, dir1);
  ChaosResult r8 = run_chaos(8, dir8);
  EXPECT_EQ(r1.digest, r8.digest);
  ASSERT_EQ(r1.checkpoints.size(), r8.checkpoints.size());
  ASSERT_GE(r1.checkpoints.size(), 5u);  // 60 s run, 10 s cadence

  bool diverged = false;
  for (std::size_t i = 0; i < r1.checkpoints.size(); ++i) {
    auto a = sim::read_snapshot_file(r1.checkpoints[i]);
    auto b = sim::read_snapshot_file(r8.checkpoints[i]);
    ASSERT_TRUE(a.is_ok()) << a.error_message();
    ASSERT_TRUE(b.is_ok()) << b.error_message();
    const std::string diff =
        sim::diff_snapshots(a.value(), b.value(), /*skip_manifest=*/true);
    if (!diff.empty()) {
      char window[64];
      std::snprintf(window, sizeof window, "(%zus, %zus]", 10 * i,
                    10 * (i + 1));
      ADD_FAILURE() << "first divergent checkpoint pins the bug to "
                    << window << "\n"
                    << diff << "\nreproduce offline with:\n  omnisnap diff "
                    << "--state " << r1.checkpoints[i] << " "
                    << r8.checkpoints[i];
      diverged = true;
      break;
    }
  }
  if (!diverged) fs::remove_all(base);
}

TEST(ChaosSoakTest, DigestIsThreadCountInvariant) {
  ChaosResult r1 = run_chaos(1);
  ChaosResult r2 = run_chaos(2);
  ChaosResult r8 = run_chaos(8);
  EXPECT_EQ(r1.digest, r2.digest);
  EXPECT_EQ(r1.digest, r8.digest);
  EXPECT_EQ(r1.sends_ok, r8.sends_ok);
  EXPECT_EQ(r1.sends_failed, r8.sends_failed);
  EXPECT_EQ(r1.metrics, r2.metrics);
  EXPECT_EQ(r1.metrics, r8.metrics);
  EXPECT_FALSE(r1.metrics.empty());
}

}  // namespace
}  // namespace omni
