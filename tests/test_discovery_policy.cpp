// Adaptive discovery scheduler (DiscoveryPolicy, ROADMAP item 4).
//
// Covers the controller's behavioral envelope and its two contracts:
//  * behavior: a dense stable clique ramps the beacon interval to the
//    ceiling and starts suppressing beacons/scan windows; an isolated pair
//    (below sparse_peers) never leaves the floor, so entrant discovery
//    latency stays paper-faithful where it matters;
//  * determinism: the adaptive digest (with and without jitter) is
//    byte-identical at 1, 2 and 8 threads, and the controller leaks no ops
//    under crash/restart churn;
//  * compatibility: an explicit `discovery fixed` directive reproduces the
//    default tourist golden trace byte for byte, and the hint-scaled
//    PeerTable expiry keeps long-interval beaconers alive without touching
//    plain-ttl semantics.
#include <gtest/gtest.h>

#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "net/testbed.h"
#include "omni/omni_node.h"
#include "omni/peer_table.h"
#include "scenario/scenario.h"

namespace omni {
namespace {

constexpr std::uint64_t kSeed = 20260808;

TimePoint at_s(double s) {
  return TimePoint::origin() + Duration::seconds(s);
}

DiscoveryPolicy adaptive_policy() {
  DiscoveryPolicy p;
  p.mode = DiscoveryPolicy::Mode::kAdaptive;
  return p;
}

/// A testbed with `n` full-stack nodes on a tight grid (spacing well inside
/// BLE range), all running `policy`.
struct Clique {
  Clique(int n, const DiscoveryPolicy& policy, unsigned threads,
         double spacing_m = 10.0)
      : bed(kSeed, radio::Calibration::defaults(), threads) {
    bed.set_discovery_policy(policy);
    OmniNodeOptions opts;
    opts.manager.discovery = bed.discovery_policy();
    int side = 1;
    while (side * side < n) ++side;
    for (int i = 0; i < n; ++i) {
      sim::Vec2 pos{spacing_m * (i % side), spacing_m * (i / side)};
      auto& dev = bed.add_device("n" + std::to_string(i), pos);
      nodes.push_back(std::make_unique<OmniNode>(dev, bed.mesh(), opts));
    }
    for (auto& node : nodes) node->start();
  }

  net::Testbed bed;
  std::vector<std::unique_ptr<OmniNode>> nodes;
};

// A 12-clique is saturated (occupancy 11 >= dense_peers 8): after the
// neighborhood stabilizes, every node must ramp to the full ceiling, bank
// suppressed beacons, and shorten its scan windows.
TEST(DiscoveryPolicyTest, DenseCliqueConvergesToCeiling) {
  DiscoveryPolicy policy = adaptive_policy();
  Clique clique(12, policy, 1);
  clique.bed.simulator().run_for(Duration::seconds(60));
  std::uint64_t suppressed = 0;
  std::uint64_t skipped = 0;
  for (auto& node : clique.nodes) {
    EXPECT_EQ(node->manager().current_beacon_interval(), policy.ceiling);
    suppressed += node->manager().stats().beacons_suppressed;
    skipped += node->manager().stats().scan_windows_skipped;
  }
  EXPECT_GT(suppressed, 0u);
  EXPECT_GT(skipped, 0u);
}

// One neighbor is below sparse_peers: the interval must stay pinned to the
// floor forever, so a node that walks up to a lone peer is still discovered
// within one paper-default period.
TEST(DiscoveryPolicyTest, IsolatedPairStaysAtFloor) {
  DiscoveryPolicy policy = adaptive_policy();
  Clique pair(2, policy, 1);
  pair.bed.simulator().run_for(Duration::seconds(60));
  for (auto& node : pair.nodes) {
    EXPECT_EQ(node->manager().peer_table().size(), 1u);
    EXPECT_EQ(node->manager().current_beacon_interval(), policy.floor);
    EXPECT_EQ(node->manager().stats().beacons_suppressed, 0u);
  }
}

/// FNV-1a over every deterministic observable of a clique run.
std::uint64_t run_digest(const DiscoveryPolicy& policy, unsigned threads) {
  Clique clique(12, policy, threads);
  clique.bed.simulator().run_for(Duration::seconds(45));
  std::uint64_t h = 0xcbf29ce484222325ull;
  auto fold = [&h](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xFF;
      h *= 0x00000100000001B3ull;
    }
  };
  fold(clique.bed.simulator().executed_events());
  for (auto& node : clique.nodes) {
    const ManagerStats& s = node->manager().stats();
    fold(node->manager().peer_table().size());
    fold(static_cast<std::uint64_t>(
        node->manager().current_beacon_interval().as_micros()));
    fold(s.beacons_received);
    fold(s.beacons_suppressed);
    fold(s.scan_windows_skipped);
    fold(s.packets_received);
    fold(s.beacon_rearms);
  }
  for (auto& node : clique.nodes) node->stop();
  return h;
}

// The controller's inputs are all deterministic local signals and its only
// randomness is owner-hashed counter-indexed jitter, so the digest must be
// bit-identical at any thread count — with jitter off (the default) and on.
TEST(DiscoveryPolicyTest, AdaptiveDigestIsThreadCountInvariant) {
  DiscoveryPolicy policy = adaptive_policy();
  const std::uint64_t d1 = run_digest(policy, 1);
  EXPECT_EQ(d1, run_digest(policy, 2));
  EXPECT_EQ(d1, run_digest(policy, 8));

  DiscoveryPolicy jittered = adaptive_policy();
  jittered.jitter = 0.25;
  const std::uint64_t j1 = run_digest(jittered, 1);
  EXPECT_EQ(j1, run_digest(jittered, 2));
  EXPECT_EQ(j1, run_digest(jittered, 8));
  // Jitter de-phases the advertising lattice, so it must actually change
  // the run (otherwise the knob is dead code).
  EXPECT_NE(d1, j1);
}

// Crash/restart churn plus background loss under the adaptive scheduler:
// every op still reaches a terminal status, the manager tables drain, and
// the run stays thread-count invariant. Guards against the backoff timer
// wedging re-arms after a restart.
TEST(DiscoveryPolicyTest, AdaptiveChaosSoakIsLeakFree) {
  auto run = [](unsigned threads) {
    Clique clique(8, adaptive_policy(), threads, 15.0);
    auto& plan = clique.bed.fault_plan();
    sim::FaultPlan::LinkFault noisy;
    noisy.loss = 0.10;
    plan.add_link_fault(noisy);
    sim::FaultPlan::Crash crash;
    crash.node = clique.nodes[3]->device().node();
    crash.at = at_s(12);
    crash.restart = at_s(20);
    plan.add_crash(crash);
    clique.bed.schedule_faults();

    int callbacks = 0;
    int ops = 0;
    for (int i = 0; i < 8; ++i) {
      OmniManager& mgr = clique.nodes[i]->manager();
      OmniAddress dest = clique.nodes[(i + 1) % 8]->address();
      clique.bed.simulator().at(at_s(15.0 + 1.5 * i), [&mgr, dest, &callbacks,
                                                       &ops] {
        ++ops;
        mgr.send_data({dest}, Bytes(96, 0xD7),
                      [&callbacks](StatusCode, const ResponseInfo&) {
                        ++callbacks;
                      });
      });
    }
    clique.bed.simulator().run_for(Duration::seconds(60));

    EXPECT_EQ(callbacks, ops);
    std::uint64_t events = clique.bed.simulator().executed_events();
    for (auto& node : clique.nodes) {
      EXPECT_EQ(node->manager().pending_data_count(), 0u);
      EXPECT_EQ(node->manager().data_attempt_count(), 0u);
      EXPECT_EQ(node->manager().context_attempt_count(), 0u);
    }
    for (auto& node : clique.nodes) node->stop();
    return events;
  };
  const std::uint64_t e1 = run(1);
  EXPECT_EQ(e1, run(2));
  EXPECT_EQ(e1, run(8));
}

// `discovery fixed` must be a pure no-op: the tourist scenario with the
// directive spelled out produces the exact bytes of the directive-free run
// (which test_golden_trace pins against the checked-in golden report).
TEST(DiscoveryPolicyTest, FixedDirectiveKeepsGoldenTraceByteIdentical) {
  std::ifstream in(OMNI_REPO_DIR "/examples/scenarios/tourist.scn");
  ASSERT_TRUE(in.good());
  std::ostringstream os;
  os << in.rdbuf();
  const std::string script = os.str();

  const std::string baseline = scenario::run_scenario_text(script);
  const std::string with_directive = scenario::run_scenario_text(
      "discovery fixed floor=500ms ceiling=8s\n" + script);
  ASSERT_FALSE(baseline.empty());
  EXPECT_EQ(with_directive, baseline);
}

// Hint-scaled expiry: a peer advertising every 8 s (adaptive ceiling-ish)
// outlives the 10 s horizon that would falsely expire it, while a floor-rate
// peer keeps the exact plain-ttl lifetime. The default (scale 0) preserves
// the old semantics for both. The manager passes ttl/floor (20x) so a
// backed-off peer keeps the fixed baseline's missed-beacon budget; 3x here
// keeps the arithmetic small.
TEST(DiscoveryPolicyTest, ExpiryHorizonScalesWithIntervalHint) {
  const Duration ttl = Duration::seconds(10);
  const OmniAddress slow{0xA1};
  const OmniAddress fast{0xB2};
  auto build = [&] {
    PeerTable table;
    // Two sightings 8 s apart: interval_hint jumps to 8 s.
    table.observe(slow, Technology::kBle,
                  LowLevelAddress{BleAddress::from_node(1)}, at_s(8), false);
    table.observe(slow, Technology::kBle,
                  LowLevelAddress{BleAddress::from_node(1)}, at_s(16), false);
    // Floor-rate peer: hint stays 0.5 s.
    table.observe(fast, Technology::kBle,
                  LowLevelAddress{BleAddress::from_node(2)}, at_s(15.5), false);
    table.observe(fast, Technology::kBle,
                  LowLevelAddress{BleAddress::from_node(2)}, at_s(16), false);
    return table;
  };

  // t=27: both are past the plain ttl (ages 11 s). With the hint scale the
  // slow peer's horizon is max(10 s, 3 x 8 s) = 24 s, so it survives; the
  // fast peer's horizon stays 10 s and it expires.
  {
    PeerTable table = build();
    EXPECT_EQ(table.expire(at_s(27), ttl, /*hint_ttl_scale=*/3.0), 1u);
    EXPECT_NE(table.find(slow), nullptr);
    EXPECT_EQ(table.find(fast), nullptr);
  }
  // Default flag: exact plain-ttl semantics — both expire.
  {
    PeerTable table = build();
    EXPECT_EQ(table.expire(at_s(27), ttl), 2u);
    EXPECT_TRUE(table.empty());
  }
  // Even the scaled horizon ends: at t=41 the slow peer (age 25 s > 24 s)
  // goes too.
  {
    PeerTable table = build();
    EXPECT_EQ(table.expire(at_s(41), ttl, /*hint_ttl_scale=*/3.0), 2u);
    EXPECT_TRUE(table.empty());
  }
}

}  // namespace
}  // namespace omni
