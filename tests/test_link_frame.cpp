#include <gtest/gtest.h>

#include "net/link_frame.h"

namespace omni {
namespace {

TEST(LinkFrameTest, BroadcastRoundTripBle) {
  Bytes packed{1, 2, 3};
  Bytes frame = frame_broadcast(packed);
  EXPECT_EQ(frame.size(), packed.size() + 1);
  auto out = unframe_ble(frame, BleAddress::from_node(1));
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(*out, packed);
}

TEST(LinkFrameTest, UnicastBleOnlyReachesAddressee) {
  BleAddress me = BleAddress::from_node(1);
  BleAddress other = BleAddress::from_node(2);
  Bytes frame = frame_unicast_ble(me, Bytes{7});
  EXPECT_TRUE(unframe_ble(frame, me).has_value());
  EXPECT_FALSE(unframe_ble(frame, other).has_value());
  EXPECT_EQ(*unframe_ble(frame, me), (Bytes{7}));
}

TEST(LinkFrameTest, UnicastMeshOnlyReachesAddressee) {
  MeshAddress me = MeshAddress::from_node(1);
  MeshAddress other = MeshAddress::from_node(2);
  Bytes frame = frame_unicast_mesh(me, Bytes{7, 8});
  EXPECT_TRUE(unframe_mesh(frame, me).has_value());
  EXPECT_FALSE(unframe_mesh(frame, other).has_value());
  EXPECT_EQ(*unframe_mesh(frame, me), (Bytes{7, 8}));
}

TEST(LinkFrameTest, BroadcastDataFramePassesUnframing) {
  Bytes frame = frame_broadcast_data(Bytes{4, 5});
  EXPECT_EQ(frame[0], kFrameBroadcastData);
  auto out = unframe_mesh(frame, MeshAddress::from_node(1));
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(*out, (Bytes{4, 5}));
}

TEST(LinkFrameTest, MalformedFramesRejected) {
  EXPECT_FALSE(unframe_ble(Bytes{}, BleAddress::from_node(1)).has_value());
  EXPECT_FALSE(unframe_mesh(Bytes{}, MeshAddress::from_node(1)).has_value());
  // Unicast frame too short to carry the address.
  EXPECT_FALSE(
      unframe_ble(Bytes{kFrameUnicast, 1, 2}, BleAddress::from_node(1))
          .has_value());
  EXPECT_FALSE(
      unframe_mesh(Bytes{kFrameUnicast, 1, 2, 3}, MeshAddress::from_node(1))
          .has_value());
  // Unknown frame type.
  EXPECT_FALSE(
      unframe_ble(Bytes{0x7F, 1, 2}, BleAddress::from_node(1)).has_value());
}

TEST(LinkFrameTest, AggregateRoundTrip) {
  std::vector<Bytes> inner{{1, 2}, {}, {3, 4, 5}};
  Bytes frame = frame_aggregate(inner);
  EXPECT_EQ(frame[0], kFrameAggregate);
  auto out = unframe_aggregate(frame);
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0], (Bytes{1, 2}));
  EXPECT_TRUE(out[1].empty());
  EXPECT_EQ(out[2], (Bytes{3, 4, 5}));
}

TEST(LinkFrameTest, AggregateOfNothing) {
  Bytes frame = frame_aggregate({});
  EXPECT_TRUE(unframe_aggregate(frame).empty());
}

TEST(LinkFrameTest, TruncatedAggregateRejectedWholesale) {
  Bytes frame = frame_aggregate({{1, 2, 3}});
  frame.pop_back();
  EXPECT_TRUE(unframe_aggregate(frame).empty());
}

TEST(LinkFrameTest, NonAggregateRejectedByAggregateParser) {
  EXPECT_TRUE(unframe_aggregate(frame_broadcast(Bytes{1})).empty());
  EXPECT_TRUE(unframe_aggregate(Bytes{}).empty());
}

}  // namespace
}  // namespace omni
