// Omni Manager context handling: technology selection by payload size,
// failover when a technology dies, and the full status-callback contract of
// paper Tables 1 & 2.
#include <gtest/gtest.h>

#include "net/testbed.h"
#include "omni/omni_node.h"

namespace omni {
namespace {

class ManagerContextTest : public ::testing::Test {
 protected:
  OmniNodeOptions full_options() {
    OmniNodeOptions options;
    options.ble = true;
    options.wifi_unicast = true;
    options.wifi_multicast = true;
    return options;
  }
  net::Testbed bed{31};
};

TEST_F(ManagerContextTest, SmallContextRidesBle) {
  auto& a = bed.add_device("a", {0, 0});
  OmniNode node(a, bed.mesh(), full_options());
  node.start();
  ContextId id = kInvalidContext;
  node.manager().add_context(
      ContextParams{}, Bytes(10, 1),
      [&](StatusCode code, const ResponseInfo& info) {
        ASSERT_EQ(code, StatusCode::kAddContextSuccess);
        id = info.context_id;
      });
  bed.simulator().run_for(Duration::seconds(1));
  ASSERT_NE(id, kInvalidContext);
  // The BLE radio now carries two advertisements: the address beacon and
  // the application context.
  EXPECT_EQ(a.ble().active_advertisements(), 2u);
}

TEST_F(ManagerContextTest, OversizedContextFallsToMulticast) {
  auto& a = bed.add_device("a", {0, 0});
  OmniNode node(a, bed.mesh(), full_options());
  node.start();
  bool ok = false;
  // 100 bytes exceed a legacy BLE advertisement; multicast absorbs it.
  node.manager().add_context(ContextParams{}, Bytes(100, 1),
                             [&](StatusCode code, const ResponseInfo&) {
                               ok = code == StatusCode::kAddContextSuccess;
                             });
  bed.simulator().run_for(Duration::seconds(2));
  EXPECT_TRUE(ok);
  EXPECT_EQ(a.ble().active_advertisements(), 1u);  // only the beacon
}

TEST_F(ManagerContextTest, HugeContextFailsWithoutMulticast) {
  auto& a = bed.add_device("a", {0, 0});
  OmniNodeOptions options;  // ble + wifi_unicast only
  OmniNode node(a, bed.mesh(), options);
  node.start();
  StatusCode code = StatusCode::kAddContextSuccess;
  std::string why;
  node.manager().add_context(ContextParams{}, Bytes(100, 1),
                             [&](StatusCode c, const ResponseInfo& info) {
                               code = c;
                               why = info.failure_description;
                             });
  bed.simulator().run_for(Duration::seconds(1));
  EXPECT_EQ(code, StatusCode::kAddContextFailure);
  EXPECT_FALSE(why.empty());
}

TEST_F(ManagerContextTest, InvalidIntervalRejected) {
  auto& a = bed.add_device("a", {0, 0});
  OmniNode node(a, bed.mesh());
  node.start();
  StatusCode code = StatusCode::kAddContextSuccess;
  node.manager().add_context(ContextParams{Duration::zero()}, Bytes{1},
                             [&](StatusCode c, const ResponseInfo&) {
                               code = c;
                             });
  bed.simulator().run_for(Duration::seconds(1));
  EXPECT_EQ(code, StatusCode::kAddContextFailure);
}

TEST_F(ManagerContextTest, UpdateUnknownIdFails) {
  auto& a = bed.add_device("a", {0, 0});
  OmniNode node(a, bed.mesh());
  node.start();
  StatusCode code = StatusCode::kUpdateContextSuccess;
  node.manager().update_context(1234, ContextParams{}, Bytes{1},
                                [&](StatusCode c, const ResponseInfo&) {
                                  code = c;
                                });
  bed.simulator().run_for(Duration::seconds(1));
  EXPECT_EQ(code, StatusCode::kUpdateContextFailure);
}

TEST_F(ManagerContextTest, RemoveUnknownIdFails) {
  auto& a = bed.add_device("a", {0, 0});
  OmniNode node(a, bed.mesh());
  node.start();
  StatusCode code = StatusCode::kRemoveContextSuccess;
  node.manager().remove_context(77, [&](StatusCode c, const ResponseInfo&) {
    code = c;
  });
  bed.simulator().run_for(Duration::seconds(1));
  EXPECT_EQ(code, StatusCode::kRemoveContextFailure);
}

TEST_F(ManagerContextTest, UpdateGrowingPayloadRehomesToMulticast) {
  auto& a = bed.add_device("a", {0, 0});
  auto& b = bed.add_device("b", {10, 0});
  OmniNode node(a, bed.mesh(), full_options());
  OmniNode peer(b, bed.mesh(), full_options());

  std::vector<Bytes> received;
  peer.manager().request_context(
      [&](const OmniAddress&, const Bytes& context) {
        received.push_back(context);
      });
  node.start();
  peer.start();

  ContextId id = kInvalidContext;
  node.manager().add_context(ContextParams{}, Bytes(10, 0xAA),
                             [&](StatusCode, const ResponseInfo& info) {
                               id = info.context_id;
                             });
  bed.simulator().run_for(Duration::seconds(2));
  ASSERT_NE(id, kInvalidContext);
  EXPECT_EQ(a.ble().active_advertisements(), 2u);

  // Growing the payload beyond the BLE limit forces a re-home.
  node.manager().update_context(id, ContextParams{}, Bytes(200, 0xBB),
                                nullptr);
  bed.simulator().run_for(Duration::seconds(1));
  EXPECT_EQ(a.ble().active_advertisements(), 1u);  // context left BLE
  // The peer probe-listens on multicast (its BLE coverage means it never
  // engages continuously), so delivery continues at probe cadence rather
  // than at the 500 ms beacon rate. Run past a probe window.
  bed.simulator().run_for(Duration::seconds(12));
  ASSERT_FALSE(received.empty());
  EXPECT_EQ(received.back().size(), 200u);  // still delivered (via WiFi)
}

TEST_F(ManagerContextTest, ContextFailsOverWhenCarrierDies) {
  auto& a = bed.add_device("a", {0, 0});
  auto& b = bed.add_device("b", {10, 0});
  OmniNode node(a, bed.mesh(), full_options());
  OmniNode peer(b, bed.mesh(), full_options());
  std::vector<Bytes> received;
  peer.manager().request_context(
      [&](const OmniAddress&, const Bytes& c) { received.push_back(c); });
  node.start();
  peer.start();

  node.manager().add_context(ContextParams{}, Bytes{0x11}, nullptr);
  bed.simulator().run_for(Duration::seconds(3));
  ASSERT_FALSE(received.empty());

  // BLE dies on the sender: the manager re-homes both the beacon and the
  // context to multicast, and delivery continues.
  received.clear();
  a.ble().set_powered(false);
  // The technology notices on its next operation; give the response and
  // re-dispatch time to propagate.
  bed.simulator().run_for(Duration::seconds(12));
  EXPECT_FALSE(received.empty())
      << "context should keep flowing via WiFi multicast";
  EXPECT_GE(node.manager().stats().context_failovers, 1u);
}

}  // namespace
}  // namespace omni
