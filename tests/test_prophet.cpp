// PROPHET routing: the three predictability rules, summary encoding under
// BLE constraints, forwarding decisions, and end-to-end DTN delivery with
// mobility.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "apps/prophet.h"
#include "baselines/omni_stack.h"
#include "net/testbed.h"
#include "omni/omni_node.h"

namespace omni::apps {
namespace {

class ProphetTest : public ::testing::Test {
 protected:
  struct Actor {
    std::unique_ptr<OmniNode> node;
    std::unique_ptr<baselines::OmniStack> stack;
    std::unique_ptr<ProphetNode> prophet;
  };

  Actor make_actor(const std::string& name, sim::Vec2 pos,
                   ProphetConfig config = {}) {
    auto& dev = bed.add_device(name, pos);
    Actor actor;
    actor.node = std::make_unique<OmniNode>(dev, bed.mesh());
    actor.stack = std::make_unique<baselines::OmniStack>(*actor.node);
    actor.prophet =
        std::make_unique<ProphetNode>(*actor.stack, bed.simulator(), config);
    return actor;
  }

  net::Testbed bed{53};
};

TEST_F(ProphetTest, EncounterRaisesPredictability) {
  auto a = make_actor("a", {0, 0});
  auto b = make_actor("b", {10, 0});
  a.prophet->start();
  b.prophet->start();
  bed.simulator().run_for(Duration::seconds(3));
  // P = 0 + (1-0)*0.75 after the first encounter; subsequent adverts only
  // push it higher.
  EXPECT_GE(a.prophet->predictability(b.stack->self()), 0.75);
  EXPECT_GE(b.prophet->predictability(a.stack->self()), 0.75);
  EXPECT_LE(a.prophet->predictability(b.stack->self()), 1.0);
}

TEST_F(ProphetTest, PredictabilityAges) {
  auto a = make_actor("a", {0, 0});
  a.prophet->start();
  a.prophet->seed_predictability(0x1234, 0.8);
  double p0 = a.prophet->predictability(0x1234);
  EXPECT_DOUBLE_EQ(p0, 0.8);
  bed.simulator().run_for(Duration::seconds(10));
  double p10 = a.prophet->predictability(0x1234);
  EXPECT_NEAR(p10, 0.8 * std::pow(0.98, 10.0), 1e-9);
}

TEST_F(ProphetTest, TransitivityLearnsRemoteDestinations) {
  auto a = make_actor("a", {0, 0});
  auto b = make_actor("b", {10, 0});
  a.prophet->start();
  b.prophet->start();
  const ProphetNode::PeerId kRemote = 0xFEED;
  b.prophet->seed_predictability(kRemote, 0.9);
  bed.simulator().run_for(Duration::seconds(3));
  // P(a, remote) >= P(a,b) * P(b,remote) * beta > 0.
  double p = a.prophet->predictability(kRemote);
  EXPECT_GT(p, 0.1);
  EXPECT_LT(p, 0.9);  // strictly weaker than b's own knowledge
}

TEST_F(ProphetTest, DirectDeliveryToNeighbor) {
  auto a = make_actor("a", {0, 0});
  auto b = make_actor("b", {10, 0});
  int delivered = 0;
  b.prophet->set_delivered_handler(
      [&](std::uint32_t, ProphetNode::PeerId source) {
        EXPECT_EQ(source, a.stack->self());
        ++delivered;
      });
  a.prophet->start();
  b.prophet->start();
  bed.simulator().run_for(Duration::seconds(2));
  a.prophet->originate(b.stack->self(), 500);
  bed.simulator().run_for(Duration::seconds(3));
  EXPECT_EQ(delivered, 1);
  EXPECT_EQ(b.prophet->delivered_count(), 1u);
}

TEST_F(ProphetTest, DeliveryIsIdempotent) {
  auto a = make_actor("a", {0, 0});
  auto b = make_actor("b", {10, 0});
  int delivered = 0;
  b.prophet->set_delivered_handler(
      [&](std::uint32_t, ProphetNode::PeerId) { ++delivered; });
  a.prophet->start();
  b.prophet->start();
  bed.simulator().run_for(Duration::seconds(2));
  a.prophet->originate(b.stack->self(), 500);
  bed.simulator().run_for(Duration::seconds(20));  // many advert rounds
  EXPECT_EQ(delivered, 1);  // duplicates suppressed by the seen-set
}

TEST_F(ProphetTest, NoForwardToWorseCarrier) {
  auto a = make_actor("a", {0, 0});
  auto b = make_actor("b", {10, 0});
  const ProphetNode::PeerId kRemote = 0xBEEF;
  a.prophet->start();
  b.prophet->start();
  // a knows the destination well; b does not: the message stays at a.
  a.prophet->seed_predictability(kRemote, 0.9);
  bed.simulator().run_for(Duration::seconds(2));
  a.prophet->originate(kRemote, 500);
  bed.simulator().run_for(Duration::seconds(5));
  EXPECT_EQ(a.prophet->buffered_messages(), 1u);
  EXPECT_EQ(b.prophet->buffered_messages(), 0u);
}

TEST_F(ProphetTest, RelayThroughMobileCarrier) {
  // The paper's Figure 7 scenario shape: A -> B -> C with B mobile.
  auto a = make_actor("a", {0, 0});
  auto b = make_actor("b", {20, 0});
  auto c = make_actor("c", {400, 0});
  TimePoint delivered_at = TimePoint::max();
  c.prophet->set_delivered_handler([&](std::uint32_t, ProphetNode::PeerId) {
    delivered_at = bed.simulator().now();
  });
  a.prophet->start();
  b.prophet->start();
  c.prophet->start();
  b.prophet->seed_predictability(c.stack->self(), 0.9);
  bed.simulator().run_for(Duration::seconds(2));

  TimePoint originated = bed.simulator().now();
  a.prophet->originate(c.stack->self(), 1000);
  // Five seconds later the carrier (node id 1) walks over to c.
  bed.simulator().after(Duration::seconds(5), [&] {
    bed.world().set_position(1, {380, 0});
  });
  bed.simulator().run_for(Duration::seconds(30));
  ASSERT_NE(delivered_at, TimePoint::max());
  double latency = (delivered_at - originated).as_seconds();
  EXPECT_GT(latency, 5.0);
  EXPECT_LT(latency, 7.0);
}

TEST_F(ProphetTest, SummaryFitsBleBudget) {
  ProphetConfig config;
  auto a = make_actor("a", {0, 0}, config);
  a.prophet->start();
  for (std::uint64_t i = 1; i <= 10; ++i) {
    a.prophet->seed_predictability(0x1000 + i, 0.5);
  }
  bed.simulator().run_for(Duration::seconds(2));
  // With 10 entries known but summary_entries = 2, the encoded summary must
  // stay within a BLE context payload (<= 21 bytes after Omni's header).
  // Indirectly verified: the advert context is accepted by the BLE tech
  // (an oversized one would fail over or fail, leaving no advertisement).
  auto& dev = *a.node;
  EXPECT_EQ(dev.device().ble().active_advertisements(), 2u);
}

TEST_F(ProphetTest, MessageTooSmallForHeaderRejected) {
  auto a = make_actor("a", {0, 0});
  a.prophet->start();
  EXPECT_DEATH(a.prophet->originate(0x1, 3), "header");
}


TEST_F(ProphetTest, BufferCapacityEvictsOldest) {
  ProphetConfig config;
  config.buffer_capacity = 3;
  auto a = make_actor("a", {0, 0}, config);
  a.prophet->start();
  bed.simulator().run_for(Duration::seconds(1));
  for (int i = 0; i < 5; ++i) {
    a.prophet->originate(0x9000 + i, 500);
  }
  EXPECT_EQ(a.prophet->buffered_messages(), 3u);
  EXPECT_EQ(a.prophet->dropped_capacity(), 2u);
}

TEST_F(ProphetTest, ExpiredMessagesPurgedNotForwarded) {
  ProphetConfig config;
  config.message_ttl = Duration::seconds(5);
  auto a = make_actor("a", {0, 0}, config);
  auto b = make_actor("b", {500, 0}, config);  // out of range initially
  int delivered = 0;
  b.prophet->set_delivered_handler(
      [&](std::uint32_t, ProphetNode::PeerId) { ++delivered; });
  a.prophet->start();
  b.prophet->start();
  bed.simulator().run_for(Duration::seconds(1));
  a.prophet->originate(b.stack->self(), 500);
  // b only comes into range after the TTL has passed.
  bed.simulator().run_for(Duration::seconds(10));
  bed.world().set_position(1, {10, 0});
  bed.simulator().run_for(Duration::seconds(10));
  EXPECT_EQ(delivered, 0);
  EXPECT_EQ(a.prophet->buffered_messages(), 0u);
  EXPECT_EQ(a.prophet->expired_messages(), 1u);
}

}  // namespace
}  // namespace omni::apps
