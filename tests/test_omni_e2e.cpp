// End-to-end middleware tests: two Omni devices discover each other via BLE
// address beacons, exchange context, and transfer data over the technology
// the manager selects.
#include <gtest/gtest.h>

#include "baselines/omni_stack.h"
#include "net/testbed.h"
#include "omni/omni_node.h"

namespace omni {
namespace {

class OmniE2eTest : public ::testing::Test {
 protected:
  net::Testbed bed{42};
};

TEST_F(OmniE2eTest, DiscoversPeerViaBleAddressBeacon) {
  auto& a = bed.add_device("a", {0, 0});
  auto& b = bed.add_device("b", {10, 0});
  OmniNode na(a, bed.mesh());
  OmniNode nb(b, bed.mesh());
  na.start();
  nb.start();

  bed.simulator().run_for(Duration::seconds(5));

  const PeerEntry* peer = na.manager().peer_table().find(nb.address());
  ASSERT_NE(peer, nullptr);
  EXPECT_TRUE(peer->reachable_on(Technology::kBle));
  // The BLE address beacon carries the mesh address, so the WiFi mapping is
  // known without any WiFi traffic — and it is fresh (no ritual needed).
  ASSERT_TRUE(peer->reachable_on(Technology::kWifiUnicast));
  EXPECT_FALSE(peer->techs.at(Technology::kWifiUnicast).requires_refresh);
  EXPECT_EQ(peer->techs.at(Technology::kWifiUnicast).address,
            LowLevelAddress{b.wifi().address()});
}

TEST_F(OmniE2eTest, ContextAddUpdateRemoveLifecycle) {
  auto& a = bed.add_device("a", {0, 0});
  auto& b = bed.add_device("b", {10, 0});
  OmniNode na(a, bed.mesh());
  OmniNode nb(b, bed.mesh());

  std::vector<std::pair<OmniAddress, Bytes>> received;
  nb.manager().request_context(
      [&](const OmniAddress& source, const Bytes& context) {
        received.emplace_back(source, context);
      });

  na.start();
  nb.start();

  ContextId ctx = kInvalidContext;
  std::vector<StatusCode> codes;
  na.manager().add_context(
      ContextParams{Duration::millis(500)}, Bytes{1, 2, 3},
      [&](StatusCode code, const ResponseInfo& info) {
        codes.push_back(code);
        ctx = info.context_id;
      });

  bed.simulator().run_for(Duration::seconds(3));
  ASSERT_EQ(codes.size(), 1u);
  EXPECT_EQ(codes[0], StatusCode::kAddContextSuccess);
  ASSERT_NE(ctx, kInvalidContext);
  ASSERT_FALSE(received.empty());
  EXPECT_EQ(received[0].first, na.address());
  EXPECT_EQ(received[0].second, (Bytes{1, 2, 3}));

  // Update changes the payload carried by subsequent transmissions.
  na.manager().update_context(
      ctx, ContextParams{Duration::millis(500)}, Bytes{9, 9},
      [&](StatusCode code, const ResponseInfo&) { codes.push_back(code); });
  bed.simulator().run_for(Duration::seconds(2));
  ASSERT_GE(codes.size(), 2u);
  EXPECT_EQ(codes[1], StatusCode::kUpdateContextSuccess);
  EXPECT_EQ(received.back().second, (Bytes{9, 9}));

  // Remove stops the transmissions.
  na.manager().remove_context(
      ctx, [&](StatusCode code, const ResponseInfo&) {
        codes.push_back(code);
      });
  bed.simulator().run_for(Duration::seconds(1));
  ASSERT_GE(codes.size(), 3u);
  EXPECT_EQ(codes[2], StatusCode::kRemoveContextSuccess);
  std::size_t count_after_remove = received.size();
  bed.simulator().run_for(Duration::seconds(3));
  EXPECT_EQ(received.size(), count_after_remove);
}

TEST_F(OmniE2eTest, SendsSmallDataOverDiscoveredPeer) {
  auto& a = bed.add_device("a", {0, 0});
  auto& b = bed.add_device("b", {10, 0});
  OmniNode na(a, bed.mesh());
  OmniNode nb(b, bed.mesh());

  std::vector<Bytes> data_received;
  OmniAddress data_source;
  nb.manager().request_data(
      [&](const OmniAddress& source, const Bytes& data) {
        data_source = source;
        data_received.push_back(data);
      });

  na.start();
  nb.start();
  bed.simulator().run_for(Duration::seconds(5));  // discovery

  std::vector<StatusCode> codes;
  na.manager().send_data({nb.address()}, Bytes{7, 7, 7},
                         [&](StatusCode code, const ResponseInfo&) {
                           codes.push_back(code);
                         });
  bed.simulator().run_for(Duration::seconds(2));

  ASSERT_EQ(codes.size(), 1u);
  EXPECT_EQ(codes[0], StatusCode::kSendDataSuccess);
  ASSERT_EQ(data_received.size(), 1u);
  EXPECT_EQ(data_received[0], (Bytes{7, 7, 7}));
  EXPECT_EQ(data_source, na.address());
}

TEST_F(OmniE2eTest, SendsLargeDataOverWifiUnicast) {
  auto& a = bed.add_device("a", {0, 0});
  auto& b = bed.add_device("b", {10, 0});
  OmniNode na(a, bed.mesh());
  OmniNode nb(b, bed.mesh());

  std::size_t received_size = 0;
  nb.manager().request_data(
      [&](const OmniAddress&, const Bytes& data) {
        received_size = data.size();
      });

  na.start();
  nb.start();
  bed.simulator().run_for(Duration::seconds(5));

  // 1 MB cannot ride BLE: the manager must choose WiFi unicast.
  const std::size_t kSize = 1'000'000;
  bool ok = false;
  TimePoint t0 = bed.simulator().now();
  TimePoint t_done;
  na.manager().send_data({nb.address()}, Bytes(kSize, 0x5A),
                         [&](StatusCode code, const ResponseInfo&) {
                           ok = code == StatusCode::kSendDataSuccess;
                           t_done = bed.simulator().now();
                         });
  bed.simulator().run_for(Duration::seconds(5));

  ASSERT_TRUE(ok);
  EXPECT_GE(received_size, kSize);
  // ~16 ms setup + 1 MB / 8.1 MB/s ~ 140 ms.
  double secs = (t_done - t0).as_seconds();
  EXPECT_GT(secs, 0.05);
  EXPECT_LT(secs, 0.5);
}

TEST_F(OmniE2eTest, SendToUnknownPeerFailsAsync) {
  auto& a = bed.add_device("a", {0, 0});
  OmniNode na(a, bed.mesh());
  na.start();
  bed.simulator().run_for(Duration::seconds(1));

  std::vector<StatusCode> codes;
  na.manager().send_data({OmniAddress{0xDEAD}}, Bytes{1},
                         [&](StatusCode code, const ResponseInfo& info) {
                           codes.push_back(code);
                           EXPECT_FALSE(info.failure_description.empty());
                         });
  EXPECT_TRUE(codes.empty());  // asynchronous
  bed.simulator().run_for(Duration::seconds(1));
  ASSERT_EQ(codes.size(), 1u);
  EXPECT_EQ(codes[0], StatusCode::kSendDataFailure);
}

TEST_F(OmniE2eTest, DataFailsOverToBleWhenWifiDies) {
  auto& a = bed.add_device("a", {0, 0});
  auto& b = bed.add_device("b", {10, 0});
  OmniNode na(a, bed.mesh());
  OmniNode nb(b, bed.mesh());

  Bytes got;
  nb.manager().request_data(
      [&](const OmniAddress&, const Bytes& data) { got = data; });

  na.start();
  nb.start();
  bed.simulator().run_for(Duration::seconds(5));

  // Kill b's WiFi: the TCP attempt fails, and the manager retries on BLE
  // without surfacing a failure to the application.
  b.wifi().set_powered(false);

  bool ok = false;
  na.manager().send_data({nb.address()}, Bytes{4, 2},
                         [&](StatusCode code, const ResponseInfo&) {
                           ok = code == StatusCode::kSendDataSuccess;
                         });
  bed.simulator().run_for(Duration::seconds(5));
  EXPECT_TRUE(ok);
  EXPECT_EQ(got, (Bytes{4, 2}));
  EXPECT_GE(na.manager().stats().data_failovers, 0u);
}

}  // namespace
}  // namespace omni
