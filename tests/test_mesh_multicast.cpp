// 802.11 multicast model: datagram delivery, bulk fragmentation at the base
// rate, and the airtime deduction that slows concurrent TCP flows (the
// mechanism behind the paper's Table 5 "multicast impedes TCP" effect).
#include <gtest/gtest.h>

#include "net/testbed.h"
#include "radio/mesh.h"
#include "radio/wifi_radio.h"

namespace omni::radio {
namespace {

class MeshMulticastTest : public ::testing::Test {
 protected:
  net::Device& joined_device(const std::string& name, sim::Vec2 pos) {
    auto& dev = bed.add_device(name, pos);
    dev.wifi().set_powered(true);
    dev.wifi().join(bed.mesh(), [](Status) {});
    return dev;
  }
  void settle() { bed.simulator().run_for(Duration::seconds(1)); }

  net::Testbed bed{9};
};

TEST_F(MeshMulticastTest, DatagramReachesAllMembersInRange) {
  auto& a = joined_device("a", {0, 0});
  auto& b = joined_device("b", {10, 0});
  auto& c = joined_device("c", {20, 0});
  auto& far = joined_device("far", {500, 0});
  settle();

  int b_got = 0, c_got = 0, far_got = 0, a_got = 0;
  auto counter = [](int* n) {
    return [n](const MeshAddress&, const Bytes&, bool multicast) {
      if (multicast) ++*n;
    };
  };
  a.wifi().add_datagram_handler(counter(&a_got));
  b.wifi().add_datagram_handler(counter(&b_got));
  c.wifi().add_datagram_handler(counter(&c_got));
  far.wifi().add_datagram_handler(counter(&far_got));

  ASSERT_TRUE(bed.mesh().multicast_datagram(a.wifi(), Bytes{1}).is_ok());
  bed.simulator().run_for(Duration::seconds(1));
  EXPECT_EQ(a_got, 0);  // no self-delivery
  EXPECT_EQ(b_got, 1);
  EXPECT_EQ(c_got, 1);
  EXPECT_EQ(far_got, 0);  // out of range
}

TEST_F(MeshMulticastTest, NonMemberCannotMulticast) {
  auto& a = bed.add_device("a", {0, 0});
  a.wifi().set_powered(true);
  EXPECT_FALSE(bed.mesh().multicast_datagram(a.wifi(), Bytes{1}).is_ok());
}

TEST_F(MeshMulticastTest, BulkTransferRunsAtBaseRateGoodput) {
  auto& a = joined_device("a", {0, 0});
  auto& b = joined_device("b", {10, 0});
  settle();

  const std::uint64_t kBytes = 1'400'000;  // 1000 fragments
  TimePoint t0 = bed.simulator().now();
  TimePoint done;
  ASSERT_TRUE(bed.mesh()
                  .multicast_bulk(a.wifi(), kBytes, Bytes{9},
                                  [&](std::vector<WifiRadio*> rx) {
                                    EXPECT_EQ(rx.size(), 1u);
                                    done = bed.simulator().now();
                                  })
                  .is_ok());
  bed.simulator().run_for(Duration::seconds(60));

  const auto& cal = bed.calibration();
  double frag_occ = static_cast<double>(cal.wifi_multicast_mtu) * 8.0 /
                        cal.wifi_multicast_base_rate_bps +
                    cal.wifi_multicast_overhead.as_seconds();
  double expected = 1000 * frag_occ;  // ~9.87 s: the slow multicast path
  EXPECT_NEAR((done - t0).as_seconds(), expected, expected * 0.05);
  // Payload metadata delivered to the receiver.
  (void)b;
}

TEST_F(MeshMulticastTest, BulkItemsAreServedInOrder) {
  auto& a = joined_device("a", {0, 0});
  joined_device("b", {10, 0});
  settle();

  std::vector<int> order;
  bed.mesh().multicast_bulk(a.wifi(), 140'000, Bytes{1},
                            [&](auto) { order.push_back(1); });
  bed.mesh().multicast_bulk(a.wifi(), 140'000, Bytes{2},
                            [&](auto) { order.push_back(2); });
  bed.simulator().run_for(Duration::seconds(30));
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST_F(MeshMulticastTest, PeriodicLoadReducesTcpCapacity) {
  auto& a = joined_device("a", {0, 0});
  auto& b = joined_device("b", {10, 0});
  settle();

  const auto& cal = bed.calibration();
  double clean = bed.mesh().effective_capacity_Bps();
  EXPECT_DOUBLE_EQ(clean, cal.wifi_capacity_Bps);

  // Three devices beaconing every 500 ms, like the SA Disseminate setup.
  auto l1 = bed.mesh().register_periodic_multicast(Duration::millis(500));
  auto l2 = bed.mesh().register_periodic_multicast(Duration::millis(500));
  auto l3 = bed.mesh().register_periodic_multicast(Duration::millis(500));
  double loaded = bed.mesh().effective_capacity_Bps();
  double beacon_frac = cal.wifi_multicast_beacon_occupancy.as_seconds() / 0.5;
  EXPECT_NEAR(loaded / clean, 1.0 - 3 * beacon_frac, 1e-9);

  // And a flow actually slows down by that factor.
  TimePoint t0 = bed.simulator().now();
  TimePoint done;
  bed.mesh().open_flow(a.wifi(), b.wifi().address(), 8'100'000,
                       [&](Status) { done = bed.simulator().now(); });
  bed.simulator().run_for(Duration::seconds(10));
  EXPECT_NEAR((done - t0).as_seconds(), 1.0 / (1.0 - 3 * beacon_frac), 0.05);

  bed.mesh().unregister_periodic_multicast(l1);
  bed.mesh().unregister_periodic_multicast(l2);
  bed.mesh().unregister_periodic_multicast(l3);
  EXPECT_DOUBLE_EQ(bed.mesh().effective_capacity_Bps(), clean);
}

TEST_F(MeshMulticastTest, BulkBacklogHalvesTcpCapacity) {
  auto& a = joined_device("a", {0, 0});
  joined_device("b", {10, 0});
  settle();
  double clean = bed.mesh().effective_capacity_Bps();
  bed.mesh().multicast_bulk(a.wifi(), 14'000'000, Bytes{1}, nullptr);
  bed.simulator().run_for(Duration::millis(10));
  EXPECT_NEAR(bed.mesh().effective_capacity_Bps(), clean * 0.5, 1.0);
  bed.simulator().run_for(Duration::seconds(300));  // backlog drains
  EXPECT_DOUBLE_EQ(bed.mesh().effective_capacity_Bps(), clean);
}

TEST_F(MeshMulticastTest, RateChangeMidFlowPreservesTotalBytes) {
  auto& a = joined_device("a", {0, 0});
  auto& b = joined_device("b", {10, 0});
  settle();

  // 8.1 MB flow; halfway through, multicast load appears.
  TimePoint t0 = bed.simulator().now();
  TimePoint done;
  bed.mesh().open_flow(a.wifi(), b.wifi().address(), 8'100'000,
                       [&](Status) { done = bed.simulator().now(); });
  PeriodicLoadId load = 0;
  bed.simulator().after(Duration::millis(500), [&] {
    load = bed.mesh().register_periodic_multicast(Duration::millis(100));
  });
  bed.simulator().run_for(Duration::seconds(10));
  const auto& cal = bed.calibration();
  double frac = cal.wifi_multicast_beacon_occupancy.as_seconds() / 0.1;
  // First 0.5 s at full rate moves 4.05 MB (minus setup), the rest at the
  // reduced rate. Completion should be within a sane envelope.
  double remaining_fraction = 0.5 / (1 - frac);
  EXPECT_NEAR((done - t0).as_seconds(), 0.5 + remaining_fraction + 0.016,
              0.05);
  bed.mesh().unregister_periodic_multicast(load);
}

}  // namespace
}  // namespace omni::radio
