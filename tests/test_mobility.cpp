#include <gtest/gtest.h>

#include <memory>

#include "net/testbed.h"
#include "omni/omni_node.h"
#include "sim/mobility.h"

namespace omni::sim {
namespace {

TEST(ScriptedMobilityTest, TimetableExecutes) {
  Simulator sim;
  World world(sim);
  NodeId n = world.add_node("n", {0, 0});
  ScriptedMobility script(world, n);
  script.teleport_at(TimePoint::origin() + Duration::seconds(5), {100, 0})
      .walk_at(TimePoint::origin() + Duration::seconds(10), {100, 50}, 5.0);
  EXPECT_EQ(script.scheduled_steps(), 2u);

  sim.run_until(TimePoint::origin() + Duration::seconds(4));
  EXPECT_EQ(world.position(n), (Vec2{0, 0}));
  sim.run_until(TimePoint::origin() + Duration::seconds(6));
  EXPECT_EQ(world.position(n), (Vec2{100, 0}));
  sim.run_until(TimePoint::origin() + Duration::seconds(15));
  EXPECT_NEAR(world.position(n).y, 25.0, 1e-9);  // halfway through the walk
  sim.run_until(TimePoint::origin() + Duration::seconds(30));
  EXPECT_NEAR(world.position(n).y, 50.0, 1e-9);
}

TEST(RandomWaypointTest, StaysInsideArea) {
  Simulator sim(7);
  World world(sim);
  NodeId n = world.add_node("n", {50, 50});
  RandomWaypointMobility::Options options;
  options.area_min = {10, 20};
  options.area_max = {90, 80};
  options.min_speed_mps = 2.0;
  options.max_speed_mps = 5.0;
  options.max_pause = Duration::seconds(2);
  RandomWaypointMobility rwp(world, n, options, 99);
  rwp.start();
  for (int i = 0; i < 200; ++i) {
    sim.run_for(Duration::seconds(5));
    Vec2 p = world.position(n);
    // The node may still be travelling from its (out-of-area) start, but
    // after the first leg it must remain inside.
    if (i > 5) {
      EXPECT_GE(p.x, options.area_min.x - 1e-9);
      EXPECT_LE(p.x, options.area_max.x + 1e-9);
      EXPECT_GE(p.y, options.area_min.y - 1e-9);
      EXPECT_LE(p.y, options.area_max.y + 1e-9);
    }
  }
  EXPECT_GT(rwp.legs_walked(), 10u);
}

TEST(RandomWaypointTest, StopFreezesNode) {
  Simulator sim(8);
  World world(sim);
  NodeId n = world.add_node("n", {0, 0});
  RandomWaypointMobility rwp(world, n, {}, 5);
  rwp.start();
  sim.run_for(Duration::seconds(30));
  rwp.stop();
  // Let any in-progress leg finish, then confirm no new legs start.
  sim.run_for(Duration::seconds(300));
  Vec2 before = world.position(n);
  std::uint64_t legs = rwp.legs_walked();
  sim.run_for(Duration::seconds(300));
  EXPECT_EQ(world.position(n), before);
  EXPECT_EQ(rwp.legs_walked(), legs);
}

TEST(RandomWaypointTest, DeterministicUnderSeed) {
  auto run = [](std::uint64_t seed) {
    Simulator sim(1);
    World world(sim);
    NodeId n = world.add_node("n", {0, 0});
    RandomWaypointMobility rwp(world, n, {}, seed);
    rwp.start();
    sim.run_for(Duration::seconds(120));
    return world.position(n);
  };
  Vec2 a = run(42), b = run(42), c = run(43);
  EXPECT_EQ(a, b);
  EXPECT_FALSE(a == c);
}

TEST(RandomWaypointTest, PauseRangeRespected) {
  // With zero pause the node is essentially always moving; with a long
  // forced pause it spends most time parked. Compare leg counts.
  auto legs = [](Duration pause) {
    Simulator sim(3);
    World world(sim);
    NodeId n = world.add_node("n", {0, 0});
    RandomWaypointMobility::Options options;
    options.area_min = {0, 0};
    options.area_max = {20, 20};  // short legs
    options.min_speed_mps = 5.0;
    options.max_speed_mps = 5.0;
    options.min_pause = pause;
    options.max_pause = pause;
    RandomWaypointMobility rwp(world, n, options, 11);
    rwp.start();
    sim.run_for(Duration::seconds(300));
    return rwp.legs_walked();
  };
  EXPECT_GT(legs(Duration::seconds(0)), 2 * legs(Duration::seconds(30)));
}

TEST(MobilityIntegrationTest, RandomWalkersDiscoverAndForget) {
  // Two random walkers in a 300x300 m field drift in and out of BLE range;
  // Omni's peer tables must track the churn (discoveries happen, stale
  // entries expire) without wedging.
  net::Testbed bed(101);
  auto& da = bed.add_device("a", {0, 0});
  auto& db = bed.add_device("b", {300, 300});
  OmniNode a(da, bed.mesh());
  OmniNode b(db, bed.mesh());
  a.start();
  b.start();

  RandomWaypointMobility::Options options;
  options.area_min = {0, 0};
  options.area_max = {300, 300};
  options.min_speed_mps = 8.0;  // brisk, to force churn
  options.max_speed_mps = 15.0;
  options.max_pause = Duration::seconds(3);
  RandomWaypointMobility walker_a(bed.world(), da.node(), options, 1);
  RandomWaypointMobility walker_b(bed.world(), db.node(), options, 2);
  walker_a.start();
  walker_b.start();

  int known_samples = 0;
  int unknown_samples = 0;
  for (int i = 0; i < 600; ++i) {
    bed.simulator().run_for(Duration::seconds(2));
    bool known = a.manager().peer_table().find(b.address()) != nullptr;
    bool in_range = bed.world().in_range(da.node(), db.node(),
                                         bed.calibration().ble_range_m);
    (known ? known_samples : unknown_samples) += 1;
    // Consistency: a peer *well* out of range for longer than the TTL
    // cannot still be in the table; being conservative, only check gross
    // violations (the table may lag by one TTL).
    if (!in_range && known) {
      const PeerEntry* e = a.manager().peer_table().find(b.address());
      EXPECT_LE(bed.simulator().now() - e->last_seen,
                a.manager().options().peer_ttl + Duration::seconds(6));
    }
  }
  // Over 20 virtual minutes of random walking, both states were observed.
  EXPECT_GT(known_samples, 5);
  EXPECT_GT(unknown_samples, 5);
}

}  // namespace
}  // namespace omni::sim
