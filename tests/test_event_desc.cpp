// Typed event descriptors (sim/event_desc.h): kind-dispatch through the
// Simulator registry, cancel/reschedule parity with closures, mixed
// closure/descriptor ordering at one instant, the callback-slot directory,
// snapshot round trips of pending descriptors, and hardened wire decoding.
#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "sim/event_desc.h"
#include "sim/event_queue.h"
#include "sim/simulator.h"
#include "sim/snapshot.h"

namespace omni::sim {
namespace {

std::uint8_t pack_one(unsigned char* payload, std::uint32_t v) {
  return pack_u32s(payload, {v});
}

struct Seen {
  std::vector<std::uint32_t> values;
  std::vector<EventKind> kinds;
};

void record_handler(void* ctx, Simulator& sim, const EventDesc& d) {
  (void)sim;
  auto* seen = static_cast<Seen*>(ctx);
  seen->values.push_back(d.payload_u32(0));
  seen->kinds.push_back(d.kind);
}

TEST(EventDescDispatch, RegisteredHandlerReceivesKindAndPayload) {
  Simulator sim;
  Seen seen;
  sim.register_desc_handler(kEventTestA, &seen, &record_handler);
  unsigned char p[kEventPayloadMax];
  sim.schedule_desc_on(kGlobalOwner, Duration::millis(5), kEventTestA, p,
                       pack_one(p, 42));
  sim.run();
  ASSERT_EQ(seen.values.size(), 1u);
  EXPECT_EQ(seen.values[0], 42u);
  EXPECT_EQ(seen.kinds[0], kEventTestA);
}

TEST(EventDescDispatch, EachKindRoutesToItsOwnHandlerAndContext) {
  Simulator sim;
  Seen a, b;
  sim.register_desc_handler(kEventTestA, &a, &record_handler);
  sim.register_desc_handler(kEventTestB, &b, &record_handler);
  unsigned char p[kEventPayloadMax];
  sim.schedule_desc_on(kGlobalOwner, Duration::millis(1), kEventTestB, p,
                       pack_one(p, 7));
  sim.schedule_desc_on(kGlobalOwner, Duration::millis(2), kEventTestA, p,
                       pack_one(p, 9));
  sim.run();
  ASSERT_EQ(a.values, (std::vector<std::uint32_t>{9}));
  ASSERT_EQ(b.values, (std::vector<std::uint32_t>{7}));
  EXPECT_EQ(a.kinds[0], kEventTestA);
  EXPECT_EQ(b.kinds[0], kEventTestB);
}

TEST(EventDescDispatchDeathTest, UnregisteredKindAbortsNamingTheKind) {
  // Scheduling a kind nobody handles is a programming error; the fast
  // dispatch path asserts with the kind's name rather than firing into
  // nothing (which would silently drop typed work).
  Simulator sim;
  unsigned char p[kEventPayloadMax];
  sim.schedule_desc_on(kGlobalOwner, Duration::millis(1), kEventTestB, p,
                       pack_one(p, 1));
  EXPECT_DEATH(sim.run(), "no handler registered for test-b");
}

TEST(EventDescHandle, CancelPreventsDispatch) {
  Simulator sim;
  Seen seen;
  sim.register_desc_handler(kEventTestA, &seen, &record_handler);
  unsigned char p[kEventPayloadMax];
  EventHandle h = sim.schedule_desc_on(kGlobalOwner, Duration::millis(5),
                                       kEventTestA, p, pack_one(p, 1));
  EXPECT_TRUE(h.pending());
  h.cancel();
  EXPECT_FALSE(h.pending());
  sim.run();
  EXPECT_TRUE(seen.values.empty());
}

TEST(EventDescHandle, CancelThenRescheduleFiresOnceAtTheNewTime) {
  Simulator sim;
  Seen seen;
  std::vector<std::int64_t> fired_at;
  sim.register_desc_handler(kEventTestA, &seen, &record_handler);
  unsigned char p[kEventPayloadMax];
  EventHandle h = sim.schedule_desc_on(kGlobalOwner, Duration::millis(5),
                                       kEventTestA, p, pack_one(p, 1));
  h.cancel();
  sim.schedule_desc_on(kGlobalOwner, Duration::millis(9), kEventTestA, p,
                       pack_one(p, 2));
  sim.run();
  ASSERT_EQ(seen.values, (std::vector<std::uint32_t>{2}));
  EXPECT_EQ(sim.now(), TimePoint::origin() + Duration::millis(9));
}

TEST(EventDescOrdering, MixedClosureAndDescriptorSameInstantFifo) {
  Simulator sim;
  std::vector<int> order;
  struct Ctx {
    std::vector<int>* order;
  } ctx{&order};
  sim.register_desc_handler(
      kEventTestA, &ctx, [](void* c, Simulator&, const EventDesc& d) {
        static_cast<Ctx*>(c)->order->push_back(
            static_cast<int>(d.payload_u32(0)));
      });
  unsigned char p[kEventPayloadMax];
  // Interleave closures and descriptors at the same instant: fire order
  // must be schedule order regardless of flavor (one generation counter).
  sim.after_global(Duration::millis(3), [&] { order.push_back(0); });
  sim.schedule_desc_on(kGlobalOwner, Duration::millis(3), kEventTestA, p,
                       pack_one(p, 1));
  sim.after_global(Duration::millis(3), [&] { order.push_back(2); });
  sim.schedule_desc_on(kGlobalOwner, Duration::millis(3), kEventTestA, p,
                       pack_one(p, 3));
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
}

TEST(EventDescSlots, DirectoryAssignsDeterministicIdsAndReusesFreed) {
  Simulator sim;
  int hits_a = 0, hits_b = 0;
  auto bump = [](void* ctx) { ++*static_cast<int*>(ctx); };
  const std::uint32_t a = sim.register_callback_slot(&hits_a, bump);
  const std::uint32_t b = sim.register_callback_slot(&hits_b, bump);
  EXPECT_NE(a, b);
  sim.invoke_callback_slot(a);
  EXPECT_EQ(hits_a, 1);
  sim.unregister_callback_slot(a);
  sim.invoke_callback_slot(a);  // freed slot: deterministic no-op
  EXPECT_EQ(hits_a, 1);
  const std::uint32_t c = sim.register_callback_slot(&hits_b, bump);
  EXPECT_EQ(c, a) << "freed ids must be reused deterministically";
  sim.invoke_callback_slot(b);
  EXPECT_EQ(hits_b, 1);
}

TEST(EventDescSlots, SlotKindDescriptorInvokesTheSlotOnFire) {
  Simulator sim;
  int hits = 0;
  const std::uint32_t slot = sim.register_callback_slot(
      &hits, [](void* ctx) { ++*static_cast<int*>(ctx); });
  // kEventQueueDrain is one of the pre-registered {u32 slot} kinds.
  sim.schedule_slot_on(kGlobalOwner, Duration::millis(2), kEventQueueDrain,
                       slot);
  sim.run();
  EXPECT_EQ(hits, 1);
}

// --- Snapshot round trip -----------------------------------------------------

TEST(EventDescSnapshot, PendingDescriptorRoundTripsThroughTheDescSection) {
  Simulator sim;
  unsigned char p[kEventPayloadMax];
  const std::uint8_t psize = pack_u32s(p, {0xfeedbeefu, 77u});
  sim.schedule_desc_on(kGlobalOwner, Duration::millis(10), kEventTestA, p,
                       psize);
  sim.after_global(Duration::millis(20), [] {});

  Snapshot snap;
  capture_events(sim, sim.now(), snap);
  const std::vector<std::uint8_t> bytes = serialize_snapshot(snap);
  Result<Snapshot> back = parse_snapshot(bytes);
  ASSERT_TRUE(back.is_ok()) << back.error_message();

  const codec::Section* sec = back.value().find(kSecEventDescs);
  ASSERT_NE(sec, nullptr) << "snapshot must carry the event-descs section";
  ByteReader r(sec->bytes);
  ASSERT_EQ(r.var(), 2u) << "one entry per pending event, index-aligned";
  // Canonical order is (time, fire order) within the owner: the descriptor
  // (10 ms) precedes the closure (20 ms).
  EventDesc d;
  ASSERT_TRUE(decode_event_desc(r, d));
  EXPECT_EQ(d.kind, kEventTestA);
  EXPECT_EQ(d.psize, psize);
  EXPECT_EQ(d.payload_u32(0), 0xfeedbeefu);
  EXPECT_EQ(d.payload_u32(4), 77u);
  EXPECT_EQ(r.var(), static_cast<std::uint64_t>(kEventClosure))
      << "closures appear as a bare kind-0 entry";
  EXPECT_TRUE(r.done());
}

// --- Hardened decode ---------------------------------------------------------

TEST(EventDescWire, DecodeRejectsEveryTruncationLength) {
  ByteWriter w;
  unsigned char p[kEventPayloadMax];
  const std::uint8_t psize = pack_u32s(p, {1u, 2u, 3u});
  encode_event_desc(w, kEventTestA, psize, p);
  const std::vector<std::uint8_t> bytes(w.bytes().begin(), w.bytes().end());
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    ByteReader r(std::span<const std::uint8_t>(bytes.data(), len));
    EventDesc out;
    EXPECT_FALSE(decode_event_desc(r, out)) << "prefix of " << len;
  }
  ByteReader whole(bytes);
  EventDesc out;
  EXPECT_TRUE(decode_event_desc(whole, out));
  EXPECT_TRUE(whole.done());
}

TEST(EventDescWire, DecodeRejectsBadKindsAndOversizePayloads) {
  // kind 0 (closure marker) is not a valid descriptor on its own.
  {
    ByteWriter w;
    w.var(kEventClosure);
    w.var(0);
    ByteReader r(w.bytes());
    EventDesc out;
    EXPECT_FALSE(decode_event_desc(r, out));
  }
  // Out-of-range kind.
  {
    ByteWriter w;
    w.var(kEventKindCount);
    w.var(0);
    ByteReader r(w.bytes());
    EventDesc out;
    EXPECT_FALSE(decode_event_desc(r, out));
  }
  // psize beyond the inline budget must fail before reading payload bytes.
  {
    ByteWriter w;
    w.var(kEventTestA);
    w.var(kEventPayloadMax + 1);
    for (std::size_t i = 0; i < kEventPayloadMax + 1; ++i) w.u8(0);
    ByteReader r(w.bytes());
    EventDesc out;
    EXPECT_FALSE(decode_event_desc(r, out));
  }
}

TEST(EventDescWire, KindNamesCoverEveryKindAndTolerateUnknown) {
  for (EventKind k = 0; k < kEventKindCount; ++k) {
    const char* name = event_kind_name(k);
    ASSERT_NE(name, nullptr);
    EXPECT_NE(std::string(name), "");
  }
  EXPECT_NE(std::string(event_kind_name(0xffff)), "");
}

}  // namespace
}  // namespace omni::sim
