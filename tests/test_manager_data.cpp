// Omni Manager data handling: technology selection policies, payload
// limits, failover chains, and multi-destination sends.
#include <gtest/gtest.h>

#include "net/testbed.h"
#include "omni/omni_node.h"

namespace omni {
namespace {

class ManagerDataTest : public ::testing::Test {
 protected:
  OmniNodeOptions full_options() {
    OmniNodeOptions options;
    options.ble = true;
    options.wifi_unicast = true;
    options.wifi_multicast = true;
    return options;
  }

  struct Pair {
    OmniNode a;
    OmniNode b;
  };

  void discover(OmniNode& a, OmniNode& b) {
    a.start();
    b.start();
    bed.simulator().run_for(Duration::seconds(3));
    ASSERT_NE(a.manager().peer_table().find(b.address()), nullptr);
  }

  net::Testbed bed{17};
};

TEST_F(ManagerDataTest, ExpectedTimePolicyPicksWifiForSmallData) {
  // With a fresh BLE-derived mesh mapping, WiFi TCP (16 ms) beats the BLE
  // fast-advertising path (41 ms) even for tiny payloads.
  auto& da = bed.add_device("a", {0, 0});
  auto& db = bed.add_device("b", {10, 0});
  OmniNode a(da, bed.mesh());
  OmniNode b(db, bed.mesh());
  discover(a, b);

  TimePoint t0 = bed.simulator().now();
  TimePoint done;
  b.manager().request_data([&](const OmniAddress&, const Bytes&) {
    done = bed.simulator().now();
  });
  a.manager().send_data({b.address()}, Bytes(30, 1), nullptr);
  bed.simulator().run_for(Duration::seconds(1));
  EXPECT_NEAR((done - t0).as_millis(), 16.0, 1.0);
}

TEST_F(ManagerDataTest, PreferLowEnergyPolicyPicksBle) {
  auto& da = bed.add_device("a", {0, 0});
  auto& db = bed.add_device("b", {10, 0});
  OmniNodeOptions options;
  options.manager.data_policy = ManagerOptions::DataPolicy::kPreferLowEnergy;
  OmniNode a(da, bed.mesh(), options);
  OmniNode b(db, bed.mesh(), options);
  discover(a, b);

  TimePoint t0 = bed.simulator().now();
  TimePoint done;
  b.manager().request_data([&](const OmniAddress&, const Bytes&) {
    done = bed.simulator().now();
  });
  a.manager().send_data({b.address()}, Bytes(30, 1), nullptr);
  bed.simulator().run_for(Duration::seconds(1));
  // BLE fast-advertising latency = interval/2 + event = 41 ms.
  EXPECT_NEAR((done - t0).as_millis(), 41.0, 2.0);
}

TEST_F(ManagerDataTest, LargePayloadSkipsBleEvenWhenPreferred) {
  auto& da = bed.add_device("a", {0, 0});
  auto& db = bed.add_device("b", {10, 0});
  OmniNodeOptions options;
  options.manager.data_policy = ManagerOptions::DataPolicy::kPreferLowEnergy;
  OmniNode a(da, bed.mesh(), options);
  OmniNode b(db, bed.mesh(), options);
  discover(a, b);

  std::size_t got = 0;
  b.manager().request_data([&](const OmniAddress&, const Bytes& data) {
    got = data.size();
  });
  bool ok = false;
  a.manager().send_data({b.address()}, Bytes(10'000, 1),
                        [&](StatusCode code, const ResponseInfo&) {
                          ok = code == StatusCode::kSendDataSuccess;
                        });
  bed.simulator().run_for(Duration::seconds(2));
  EXPECT_TRUE(ok);
  EXPECT_EQ(got, 10'000u);  // BLE cannot carry it; WiFi did
}

TEST_F(ManagerDataTest, MultiDestinationCallbacksFirePerDestination) {
  auto& da = bed.add_device("a", {0, 0});
  auto& db = bed.add_device("b", {10, 0});
  auto& dc = bed.add_device("c", {20, 0});
  OmniNode a(da, bed.mesh());
  OmniNode b(db, bed.mesh());
  OmniNode c(dc, bed.mesh());
  a.start();
  b.start();
  c.start();
  bed.simulator().run_for(Duration::seconds(3));

  std::vector<OmniAddress> succeeded;
  a.manager().send_data({b.address(), c.address()}, Bytes{1, 2},
                        [&](StatusCode code, const ResponseInfo& info) {
                          if (code == StatusCode::kSendDataSuccess) {
                            succeeded.push_back(info.destination);
                          }
                        });
  bed.simulator().run_for(Duration::seconds(2));
  ASSERT_EQ(succeeded.size(), 2u);
  EXPECT_NE(succeeded[0], succeeded[1]);
}

TEST_F(ManagerDataTest, FailoverExhaustionReportsFailure) {
  auto& da = bed.add_device("a", {0, 0});
  auto& db = bed.add_device("b", {10, 0});
  OmniNode a(da, bed.mesh());
  OmniNode b(db, bed.mesh());
  discover(a, b);

  // Kill every technology at the peer, then send. WiFi fails (peer left
  // mesh and powered off), BLE fails to ack... BLE datagrams are
  // unacknowledged, so to force full exhaustion we use a payload only WiFi
  // could carry.
  db.wifi().set_powered(false);
  db.ble().set_powered(false);
  StatusCode code = StatusCode::kSendDataSuccess;
  std::string why;
  a.manager().send_data({b.address()}, Bytes(50'000, 1),
                        [&](StatusCode c, const ResponseInfo& info) {
                          code = c;
                          why = info.failure_description;
                        });
  bed.simulator().run_for(Duration::seconds(10));
  EXPECT_EQ(code, StatusCode::kSendDataFailure);
  EXPECT_FALSE(why.empty());
}

TEST_F(ManagerDataTest, StalePeerMappingFailsAfterTtl) {
  auto& da = bed.add_device("a", {0, 0});
  auto& db = bed.add_device("b", {10, 0});
  OmniNode a(da, bed.mesh());
  OmniNode b(db, bed.mesh());
  discover(a, b);

  // b disappears entirely; after the peer TTL its mappings expire and a
  // send fails as "unknown peer".
  b.stop();
  db.ble().set_powered(false);
  db.wifi().set_powered(false);
  bed.simulator().run_for(Duration::seconds(30));

  StatusCode code = StatusCode::kSendDataSuccess;
  a.manager().send_data({b.address()}, Bytes{1},
                        [&](StatusCode c, const ResponseInfo&) { code = c; });
  bed.simulator().run_for(Duration::seconds(5));
  EXPECT_EQ(code, StatusCode::kSendDataFailure);
}

TEST_F(ManagerDataTest, DataSendCountsTracked) {
  auto& da = bed.add_device("a", {0, 0});
  auto& db = bed.add_device("b", {10, 0});
  OmniNode a(da, bed.mesh());
  OmniNode b(db, bed.mesh());
  discover(a, b);
  a.manager().send_data({b.address()}, Bytes{1}, nullptr);
  a.manager().send_data({b.address()}, Bytes{2}, nullptr);
  bed.simulator().run_for(Duration::seconds(1));
  EXPECT_EQ(a.manager().stats().data_sends, 2u);
}

TEST_F(ManagerDataTest, ReceiverLearnsSenderMappingFromData) {
  // Paper §3.3: "by including the omni_address, we are able to refresh part
  // of the peer mapping with each message". A device that never heard the
  // sender's beacons still learns it from a received data packet.
  auto& da = bed.add_device("a", {0, 0});
  auto& db = bed.add_device("b", {10, 0});
  OmniNode a(da, bed.mesh());
  OmniNode b(db, bed.mesh());
  a.start();
  b.start();
  bed.simulator().run_for(Duration::seconds(3));

  a.manager().send_data({b.address()}, Bytes{9}, nullptr);
  bed.simulator().run_for(Duration::seconds(1));
  const PeerEntry* entry = b.manager().peer_table().find(a.address());
  ASSERT_NE(entry, nullptr);
  EXPECT_TRUE(entry->reachable_on(Technology::kWifiUnicast));
  EXPECT_FALSE(
      entry->techs.at(Technology::kWifiUnicast).requires_refresh);
}

}  // namespace
}  // namespace omni
