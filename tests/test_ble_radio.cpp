#include <gtest/gtest.h>

#include "net/testbed.h"
#include "radio/ble.h"

namespace omni::radio {
namespace {

class BleRadioTest : public ::testing::Test {
 protected:
  net::Testbed bed{3};
};

TEST_F(BleRadioTest, PeriodicAdvertisementsReachScanners) {
  auto& a = bed.add_device("a", {0, 0});
  auto& b = bed.add_device("b", {10, 0});
  b.ble().set_scanning(true, 1.0);
  int received = 0;
  b.ble().set_receive_handler(
      [&](const BleAddress& from, const Bytes& payload) {
        EXPECT_EQ(from, a.ble().address());
        EXPECT_EQ(payload, (Bytes{1, 2, 3}));
        ++received;
      });
  auto adv = a.ble().start_advertising(Bytes{1, 2, 3}, Duration::millis(500));
  ASSERT_TRUE(adv.is_ok());
  bed.simulator().run_for(Duration::seconds(10));
  // ~20 events at 90% capture.
  EXPECT_GE(received, 12);
  EXPECT_LE(received, 20);
}

TEST_F(BleRadioTest, OutOfRangeScannersHearNothing) {
  auto& a = bed.add_device("a", {0, 0});
  auto& b = bed.add_device("b", {500, 0});  // beyond ble_range_m
  b.ble().set_scanning(true, 1.0);
  int received = 0;
  b.ble().set_receive_handler(
      [&](const BleAddress&, const Bytes&) { ++received; });
  ASSERT_TRUE(
      a.ble().start_advertising(Bytes{1}, Duration::millis(100)).is_ok());
  bed.simulator().run_for(Duration::seconds(5));
  EXPECT_EQ(received, 0);
}

TEST_F(BleRadioTest, PayloadLimitEnforced) {
  auto& a = bed.add_device("a", {0, 0});
  std::size_t limit = bed.calibration().ble_legacy_adv_payload;
  EXPECT_EQ(a.ble().max_payload(), limit);
  EXPECT_TRUE(
      a.ble().start_advertising(Bytes(limit, 0), Duration::millis(100))
          .is_ok());
  EXPECT_FALSE(
      a.ble().start_advertising(Bytes(limit + 1, 0), Duration::millis(100))
          .is_ok());
}

TEST_F(BleRadioTest, ExtendedAdvertisingRaisesLimit) {
  radio::Calibration cal = radio::Calibration::defaults();
  cal.ble_extended_advertising = true;
  net::Testbed bed5(3, cal);
  auto& a = bed5.add_device("a", {0, 0});
  EXPECT_EQ(a.ble().max_payload(), cal.ble_extended_adv_payload);
  EXPECT_TRUE(
      a.ble().start_advertising(Bytes(200, 0), Duration::millis(100)).is_ok());
}

TEST_F(BleRadioTest, UpdateChangesPayloadAndStopEndsTransmission) {
  auto& a = bed.add_device("a", {0, 0});
  auto& b = bed.add_device("b", {10, 0});
  b.ble().set_scanning(true, 1.0);
  Bytes last;
  int count = 0;
  b.ble().set_receive_handler([&](const BleAddress&, const Bytes& payload) {
    last = payload;
    ++count;
  });
  auto adv = a.ble().start_advertising(Bytes{1}, Duration::millis(100));
  ASSERT_TRUE(adv.is_ok());
  bed.simulator().run_for(Duration::seconds(2));
  ASSERT_GT(count, 0);
  EXPECT_EQ(last, (Bytes{1}));

  ASSERT_TRUE(
      a.ble().update_advertising(adv.value(), Bytes{2}, Duration::millis(100))
          .is_ok());
  bed.simulator().run_for(Duration::seconds(2));
  EXPECT_EQ(last, (Bytes{2}));

  ASSERT_TRUE(a.ble().stop_advertising(adv.value()).is_ok());
  // A frame broadcast at the stop instant is still on the air (delivery
  // lands one adv event after transmission); flush it before sampling.
  bed.simulator().run_for(bed.calibration().ble_adv_event);
  int count_at_stop = count;
  bed.simulator().run_for(Duration::seconds(2));
  EXPECT_EQ(count, count_at_stop);
  EXPECT_EQ(a.ble().active_advertisements(), 0u);
}

TEST_F(BleRadioTest, UpdateUnknownIdFails) {
  auto& a = bed.add_device("a", {0, 0});
  EXPECT_FALSE(
      a.ble().update_advertising(99, Bytes{1}, Duration::millis(100)).is_ok());
  EXPECT_FALSE(a.ble().stop_advertising(99).is_ok());
}

TEST_F(BleRadioTest, DatagramLatencyIsFastAdvMean) {
  auto& a = bed.add_device("a", {0, 0});
  auto& b = bed.add_device("b", {10, 0});
  b.ble().set_scanning(true, 1.0);
  TimePoint delivered;
  b.ble().set_receive_handler([&](const BleAddress&, const Bytes&) {
    delivered = bed.simulator().now();
  });
  TimePoint t0 = bed.simulator().now();
  ASSERT_TRUE(a.ble().send_datagram(Bytes(30, 0), nullptr).is_ok());
  bed.simulator().run_for(Duration::seconds(1));
  const auto& cal = bed.calibration();
  Duration expected = Duration::micros(
      cal.ble_fast_adv_interval.as_micros() / 2) + cal.ble_adv_event;
  EXPECT_EQ(delivered - t0, expected);
}

TEST_F(BleRadioTest, DatagramSizeLimit) {
  auto& a = bed.add_device("a", {0, 0});
  std::size_t cap = 2 * a.ble().max_payload();
  EXPECT_TRUE(a.ble().send_datagram(Bytes(cap, 0), nullptr).is_ok());
  EXPECT_FALSE(a.ble().send_datagram(Bytes(cap + 1, 0), nullptr).is_ok());
}

TEST_F(BleRadioTest, PowerOffCancelsEverything) {
  auto& a = bed.add_device("a", {0, 0});
  auto& b = bed.add_device("b", {10, 0});
  b.ble().set_scanning(true, 1.0);
  int received = 0;
  b.ble().set_receive_handler(
      [&](const BleAddress&, const Bytes&) { ++received; });
  ASSERT_TRUE(
      a.ble().start_advertising(Bytes{1}, Duration::millis(100)).is_ok());
  bed.simulator().run_for(Duration::seconds(1));
  int before = received;
  EXPECT_GT(before, 0);
  a.ble().set_powered(false);
  // Power-off cannot recall a frame already on the air; flush the one
  // adv event of in-flight latency before sampling.
  bed.simulator().run_for(bed.calibration().ble_adv_event);
  before = received;
  bed.simulator().run_for(Duration::seconds(2));
  EXPECT_EQ(received, before);
  EXPECT_FALSE(
      a.ble().start_advertising(Bytes{1}, Duration::millis(100)).is_ok());
}

TEST_F(BleRadioTest, ScanDutyScalesEnergyLevel) {
  auto& a = bed.add_device("a", {0, 0});
  a.ble().set_scanning(true, 0.5);
  bed.simulator().run_for(Duration::seconds(10));
  double avg = a.meter().average_ma(TimePoint::origin(),
                                    bed.simulator().now());
  EXPECT_NEAR(avg, bed.calibration().ble_scan_ma * 0.5, 1e-9);
}

TEST_F(BleRadioTest, LowDutyScannerMissesSomeBeacons) {
  auto& a = bed.add_device("a", {0, 0});
  auto& b = bed.add_device("b", {10, 0});
  b.ble().set_scanning(true, 0.1);
  int received = 0;
  b.ble().set_receive_handler(
      [&](const BleAddress&, const Bytes&) { ++received; });
  ASSERT_TRUE(
      a.ble().start_advertising(Bytes{1}, Duration::millis(100)).is_ok());
  bed.simulator().run_for(Duration::seconds(20));  // 200 events
  // Expect roughly 9% captures, certainly far fewer than a full-duty scan.
  EXPECT_GT(received, 2);
  EXPECT_LT(received, 60);
}

}  // namespace
}  // namespace omni::radio
