// Randomized churn fuzzing: a neighborhood subjected to random sends, power
// flaps, mobility jumps, and context churn. Checks the middleware's two
// strongest liveness/safety invariants under chaos:
//   * every send_data callback fires exactly once per destination;
//   * the simulation never crashes, wedges, or leaks pending operations
//     unboundedly.
#include <gtest/gtest.h>

#include <map>
#include <memory>

#include "net/testbed.h"
#include "omni/omni_node.h"

namespace omni {
namespace {

class FuzzSweep : public ::testing::TestWithParam<int> {};

TEST_P(FuzzSweep, ChurnPreservesCallbackContract) {
  net::Testbed bed(static_cast<std::uint64_t>(GetParam()));
  auto& rng = bed.simulator().rng();

  constexpr int kNodes = 6;
  std::vector<net::Device*> devices;
  std::vector<std::unique_ptr<OmniNode>> nodes;
  for (int i = 0; i < kNodes; ++i) {
    devices.push_back(&bed.add_device("n" + std::to_string(i),
                                      {rng.uniform(0, 25),
                                       rng.uniform(0, 25)}));
    OmniNodeOptions options;
    options.wifi_multicast = rng.chance(0.5);
    nodes.push_back(
        std::make_unique<OmniNode>(*devices.back(), bed.mesh(), options));
    nodes.back()->start();
  }
  bed.simulator().run_for(Duration::seconds(3));

  // Track per-send callback counts.
  std::map<int, int> callbacks;  // send id -> count
  int next_send = 0;

  for (int round = 0; round < 40; ++round) {
    int action = static_cast<int>(rng.uniform_int(0, 5));
    int who = static_cast<int>(rng.uniform_int(0, kNodes - 1));
    int other = static_cast<int>(rng.uniform_int(0, kNodes - 1));
    switch (action) {
      case 0:
      case 1: {  // random-size send (bias toward sends)
        std::size_t size =
            static_cast<std::size_t>(rng.uniform_int(1, 200'000));
        int id = next_send++;
        callbacks[id] = 0;
        nodes[who]->manager().send_data(
            {nodes[other]->address()}, Bytes(size, 0x11),
            [&callbacks, id](StatusCode, const ResponseInfo&) {
              ++callbacks[id];
            });
        break;
      }
      case 2: {  // teleport somewhere (possibly far away)
        double spread = rng.chance(0.3) ? 500.0 : 25.0;
        bed.world().set_position(devices[who]->node(),
                                 {rng.uniform(0, spread),
                                  rng.uniform(0, spread)});
        break;
      }
      case 3: {  // power flap a radio
        if (rng.chance(0.5)) {
          devices[who]->ble().set_powered(!devices[who]->ble().powered());
        } else {
          devices[who]->wifi().set_powered(
              !devices[who]->wifi().powered());
        }
        break;
      }
      case 4: {  // context churn
        nodes[who]->manager().add_context(
            ContextParams{Duration::millis(
                static_cast<std::int64_t>(rng.uniform_int(100, 2000)))},
            Bytes(static_cast<std::size_t>(rng.uniform_int(1, 15)), 0x22),
            nullptr);
        break;
      }
      case 5: {  // self-send to an unknown address
        int id = next_send++;
        callbacks[id] = 0;
        nodes[who]->manager().send_data(
            {OmniAddress{rng.engine()() | 1}}, Bytes{1},
            [&callbacks, id](StatusCode, const ResponseInfo&) {
              ++callbacks[id];
            });
        break;
      }
    }
    bed.simulator().run_for(Duration::millis(
        static_cast<std::int64_t>(rng.uniform_int(50, 1500))));
  }

  // Drain everything in flight (rituals can take seconds; timeouts too).
  bed.simulator().run_for(Duration::seconds(30));

  for (const auto& [id, count] : callbacks) {
    EXPECT_EQ(count, 1) << "send " << id
                        << " callback fired " << count << " times (seed "
                        << GetParam() << ")";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzSweep, ::testing::Range(9000, 9012));

}  // namespace
}  // namespace omni
