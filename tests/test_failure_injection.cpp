// Failure injection across the stack: mid-transfer range loss with
// technology failover, radio flapping, mobility churn, silently stalled
// technologies, and crash/restart churn. Exercises the paper's §3.3
// "Handling Failures" behavior end to end.
#include <gtest/gtest.h>

#include <memory>

#include "net/testbed.h"
#include "omni/omni_node.h"

namespace omni {
namespace {

class FailureInjectionTest : public ::testing::Test {
 protected:
  net::Testbed bed{71};
};

/// A data technology that accepts every request and never responds: the
/// "silently stalled" plugin the manager's op deadlines exist for.
class StallTech final : public CommTechnology {
 public:
  EnableResult enable(const TechQueues& queues) override {
    queues_ = queues;
    enabled_ = true;
    queues_.send->set_consumer([this] {
      while (auto request = queues_.send->try_pop()) ++swallowed_;
    });
    return EnableResult{Technology::kWifiUnicast,
                        LowLevelAddress{MeshAddress{0xBEEF}}};
  }
  void disable() override {
    queues_.send->clear_consumer();
    enabled_ = false;
  }
  Technology type() const override { return Technology::kWifiUnicast; }
  bool enabled() const override { return enabled_; }
  bool supports_context() const override { return false; }
  bool supports_data() const override { return true; }
  std::size_t max_context_payload() const override { return 0; }
  std::size_t max_data_payload() const override { return 0; }
  Duration estimate_data_time(std::size_t, bool) const override {
    return Duration::millis(20);
  }
  void set_engaged(bool engaged) override { engaged_ = engaged; }
  bool engaged() const override { return engaged_; }

  /// Fabricate an address-beacon sighting so the manager learns `peer`.
  void inject_beacon(OmniAddress peer, MeshAddress from) {
    queues_.receive->produce([&](ReceivedPacket& pkt) {
      pkt.tech = Technology::kWifiUnicast;
      pkt.from = LowLevelAddress{from};
      AddressBeaconInfo info;
      info.mesh = from;
      pkt.packed = PackedStruct::address_beacon(peer, info).encode();
    });
  }

  std::uint64_t swallowed() const { return swallowed_; }

 private:
  TechQueues queues_;
  bool enabled_ = false;
  bool engaged_ = false;
  std::uint64_t swallowed_ = 0;
};

/// A context technology whose first `fail_first` beacon adds fail (the
/// radio hiccuped), exercising the beacon re-arm backoff path.
class FlakyBeaconTech final : public CommTechnology {
 public:
  explicit FlakyBeaconTech(int fail_first) : fail_first_(fail_first) {}

  EnableResult enable(const TechQueues& queues) override {
    queues_ = queues;
    enabled_ = true;
    queues_.send->set_consumer([this] {
      while (auto request = queues_.send->try_pop()) {
        bool ok = true;
        if (request->op == SendOp::kAddContext) {
          ok = add_attempts_++ >= fail_first_;
        }
        queues_.response->push(TechResponse::result(
            Technology::kBle, *request, ok, ok ? "" : "radio hiccup"));
      }
    });
    return EnableResult{Technology::kBle,
                        LowLevelAddress{BleAddress::from_node(7)}};
  }
  void disable() override {
    queues_.send->clear_consumer();
    enabled_ = false;
  }
  Technology type() const override { return Technology::kBle; }
  bool enabled() const override { return enabled_; }
  bool supports_context() const override { return true; }
  bool supports_data() const override { return false; }
  std::size_t max_context_payload() const override { return 10'000; }
  std::size_t max_data_payload() const override { return 0; }
  Duration estimate_data_time(std::size_t, bool) const override {
    return Duration::millis(50);
  }
  void set_engaged(bool engaged) override { engaged_ = engaged; }
  bool engaged() const override { return engaged_; }

  int add_attempts() const { return add_attempts_; }

 private:
  TechQueues queues_;
  int fail_first_;
  int add_attempts_ = 0;
  bool enabled_ = false;
  bool engaged_ = false;
};

TEST(SelfHealingTest, SilentlyStalledTechFailsOverByDeadline) {
  sim::Simulator sim(9);
  StallTech stall;
  OmniManager manager(sim, OmniAddress{0xA11CE});
  manager.add_technology(stall);
  manager.start();

  OmniAddress peer{0xB0B};
  stall.inject_beacon(peer, MeshAddress{0xD00D});
  sim.run_for(Duration::millis(10));
  ASSERT_NE(manager.peer_table().find(peer), nullptr);

  StatusCode code = StatusCode::kSendDataSuccess;
  std::string why;
  manager.send_data({peer}, Bytes{0x55},
                    [&](StatusCode c, const ResponseInfo& info) {
                      code = c;
                      why = info.failure_description;
                    });
  sim.run_for(Duration::millis(500));
  // The technology swallowed the request; nothing has failed yet.
  EXPECT_GE(stall.swallowed(), 1u);
  EXPECT_EQ(manager.pending_data_count(), 1u);
  EXPECT_EQ(manager.data_attempt_count(), 1u);

  // The deadline (>= min_op_deadline) fires and, with no alternative
  // technology, the application hears a terminal failure. Tables drain.
  sim.run_for(Duration::seconds(5));
  EXPECT_EQ(code, StatusCode::kSendDataFailure);
  EXPECT_GE(manager.stats().deadline_failovers, 1u);
  EXPECT_EQ(manager.pending_data_count(), 0u);
  EXPECT_EQ(manager.data_attempt_count(), 0u);
  EXPECT_EQ(manager.context_attempt_count(), 0u);
  manager.stop();
  sim.run_for(Duration::seconds(1));
}

TEST(SelfHealingTest, BeaconRearmRetriesAfterBeaconOpFailure) {
  sim::Simulator sim(11);
  FlakyBeaconTech flaky(/*fail_first=*/1);
  OmniManager manager(sim, OmniAddress{0xA11CE});
  manager.add_technology(flaky);
  manager.start();

  // The first beacon add fails: beaconing drops and a backoff re-arm is
  // scheduled instead of going dark forever.
  sim.run_for(Duration::millis(100));
  EXPECT_FALSE(manager.technology_beaconing(Technology::kBle));
  EXPECT_GE(manager.stats().beacon_rearms, 1u);

  // After the backoff (500 ms +/- jitter) the retry succeeds.
  sim.run_for(Duration::seconds(2));
  EXPECT_TRUE(manager.technology_beaconing(Technology::kBle));
  EXPECT_GE(flaky.add_attempts(), 2);
  manager.stop();
  sim.run_for(Duration::seconds(1));
}

TEST(SelfHealingTest, OverloadShedsBeyondMaxPendingOps) {
  sim::Simulator sim(13);
  StallTech stall;
  ManagerOptions options;
  options.self_healing.max_pending_ops = 4;
  OmniManager manager(sim, OmniAddress{0xA11CE}, options);
  manager.add_technology(stall);
  manager.start();
  OmniAddress peer{0xB0B};
  stall.inject_beacon(peer, MeshAddress{0xD00D});
  sim.run_for(Duration::millis(10));

  int failures = 0;
  for (int i = 0; i < 8; ++i) {
    manager.send_data({peer}, Bytes{0x55},
                      [&](StatusCode c, const ResponseInfo&) {
                        if (c == StatusCode::kSendDataFailure) ++failures;
                      });
  }
  sim.run_for(Duration::millis(10));
  EXPECT_EQ(manager.pending_data_count(), 4u);
  EXPECT_EQ(manager.stats().overload_rejections, 4u);
  EXPECT_EQ(failures, 4);  // the shed ops failed immediately
  manager.stop();
  sim.run_for(Duration::seconds(1));
  EXPECT_EQ(manager.pending_data_count(), 0u);
  EXPECT_EQ(failures, 8);  // stop() failed the queued ops too
}

TEST_F(FailureInjectionTest, MidTransferRangeLossFailsOverToBle) {
  auto& da = bed.add_device("a", {0, 0});
  auto& db = bed.add_device("b", {10, 0});
  OmniNode a(da, bed.mesh());
  OmniNode b(db, bed.mesh());
  Bytes got;
  b.manager().request_data(
      [&](const OmniAddress&, const Bytes& d) { got = d; });
  a.start();
  b.start();
  bed.simulator().run_for(Duration::seconds(3));

  // Small payload that BLE *could* carry: a long WiFi transfer is forced by
  // queueing a big one first... simpler: break WiFi right as the send
  // starts, so the TCP attempt fails and the manager retries on BLE.
  StatusCode final_code = StatusCode::kSendDataFailure;
  a.manager().send_data({b.address()}, Bytes{0x77},
                        [&](StatusCode code, const ResponseInfo&) {
                          final_code = code;
                        });
  // Move b out of WiFi range but inside BLE range is impossible (BLE range
  // is shorter), so instead kill b's mesh membership: TCP fails, BLE works.
  db.wifi().leave();
  bed.simulator().run_for(Duration::seconds(10));
  EXPECT_EQ(final_code, StatusCode::kSendDataSuccess);
  EXPECT_EQ(got, (Bytes{0x77}));
  EXPECT_GE(a.manager().stats().data_failovers, 1u);
}

TEST_F(FailureInjectionTest, TotalRangeLossEventuallyFailsRequest) {
  auto& da = bed.add_device("a", {0, 0});
  auto& db = bed.add_device("b", {10, 0});
  OmniNode a(da, bed.mesh());
  OmniNode b(db, bed.mesh());
  a.start();
  b.start();
  bed.simulator().run_for(Duration::seconds(3));

  // b walks away entirely mid-transfer.
  StatusCode final_code = StatusCode::kSendDataSuccess;
  a.manager().send_data({b.address()}, Bytes(5'000'000, 1),
                        [&](StatusCode code, const ResponseInfo&) {
                          final_code = code;
                        });
  bed.simulator().after(Duration::millis(200), [&] {
    bed.world().set_position(db.node(), {5000, 0});
  });
  bed.simulator().run_for(Duration::seconds(20));
  EXPECT_EQ(final_code, StatusCode::kSendDataFailure);
}

TEST_F(FailureInjectionTest, BleRadioFlappingRecoversBeacons) {
  auto& da = bed.add_device("a", {0, 0});
  auto& db = bed.add_device("b", {10, 0});
  OmniNode a(da, bed.mesh());
  OmniNode b(db, bed.mesh());
  a.start();
  b.start();
  bed.simulator().run_for(Duration::seconds(3));
  ASSERT_NE(b.manager().peer_table().find(a.address()), nullptr);

  // Flap a's BLE radio a few times.
  for (int i = 0; i < 3; ++i) {
    da.ble().set_powered(false);
    bed.simulator().run_for(Duration::seconds(1));
    da.ble().set_powered(true);
    bed.simulator().run_for(Duration::seconds(1));
  }
  // After recovery the beacon advertisement is re-established and b keeps
  // hearing a (its mapping stays fresh past the original TTL).
  bed.simulator().run_for(Duration::seconds(8));
  const PeerEntry* entry = b.manager().peer_table().find(a.address());
  ASSERT_NE(entry, nullptr);
  EXPECT_GE(entry->last_seen,
            bed.simulator().now() - Duration::seconds(2));
}

TEST_F(FailureInjectionTest, MobilityChurnKeepsTableConsistent) {
  auto& da = bed.add_device("a", {0, 0});
  auto& db = bed.add_device("b", {10, 0});
  OmniNode a(da, bed.mesh());
  OmniNode b(db, bed.mesh());
  a.start();
  b.start();

  // b oscillates in and out of all radio range every 6 s.
  for (int cycle = 0; cycle < 4; ++cycle) {
    bed.world().set_position(db.node(), {10, 0});
    bed.simulator().run_for(Duration::seconds(6));
    EXPECT_NE(a.manager().peer_table().find(b.address()), nullptr)
        << "cycle " << cycle;
    bed.world().set_position(db.node(), {5000, 0});
    bed.simulator().run_for(Duration::seconds(15));  // > peer TTL
    EXPECT_EQ(a.manager().peer_table().find(b.address()), nullptr)
        << "cycle " << cycle;
  }
}

TEST_F(FailureInjectionTest, ConnectionlessContextSurvivesMeshCollapse) {
  // Paper §3.3: "connection-less technologies by design have no connections
  // to break". Killing the whole mesh must not interrupt context delivery.
  auto& da = bed.add_device("a", {0, 0});
  auto& db = bed.add_device("b", {10, 0});
  OmniNode a(da, bed.mesh());
  OmniNode b(db, bed.mesh());
  int contexts = 0;
  b.manager().request_context(
      [&](const OmniAddress&, const Bytes&) { ++contexts; });
  a.start();
  b.start();
  a.manager().add_context(ContextParams{}, Bytes{1}, nullptr);
  bed.simulator().run_for(Duration::seconds(3));
  int before = contexts;
  ASSERT_GT(before, 0);

  da.wifi().set_powered(false);
  db.wifi().set_powered(false);
  bed.simulator().run_for(Duration::seconds(3));
  EXPECT_GT(contexts, before + 3) << "context harvest continues over BLE";
}

TEST_F(FailureInjectionTest, PendingTablesDrainUnderRandomizedFaults) {
  // Leak invariant: whatever a randomized fault schedule does to the
  // network, every op table drains once every operation has completed or
  // timed out — no pending_data_/attempt entries may survive.
  auto& da = bed.add_device("a", {0, 0});
  auto& db = bed.add_device("b", {10, 0});
  auto& dc = bed.add_device("c", {20, 0});
  OmniNode a(da, bed.mesh());
  OmniNode b(db, bed.mesh());
  OmniNode c(dc, bed.mesh());

  auto& plan = bed.fault_plan();
  sim::FaultPlan::LinkFault noisy;
  noisy.loss = 0.3;
  noisy.corrupt = 0.02;
  noisy.extra_latency = Duration::millis(5);
  plan.add_link_fault(noisy);
  sim::FaultPlan::Blackout flap;
  flap.node = db.node();
  flap.radio = sim::FaultRadio::kWifi;
  flap.start = TimePoint::origin() + Duration::seconds(6);
  flap.end = TimePoint::origin() + Duration::seconds(14);
  flap.period = Duration::seconds(2);
  flap.off_fraction = 0.5;
  plan.add_blackout(flap);
  bed.schedule_faults();

  a.start();
  b.start();
  c.start();
  bed.simulator().run_for(Duration::seconds(4));

  int callbacks = 0;
  auto count = [&](StatusCode, const ResponseInfo&) { ++callbacks; };
  int ops = 0;
  for (int round = 0; round < 5; ++round) {
    bed.simulator().run_for(Duration::seconds(2));
    a.manager().send_data({b.address()}, Bytes(40 + round, 1), count);
    b.manager().send_data({c.address()}, Bytes(200'000, 2), count);
    c.manager().send_data({a.address()}, Bytes(64, 3), count);
    ops += 3;
  }
  bed.simulator().run_for(Duration::seconds(40));

  EXPECT_EQ(callbacks, ops) << "every op reached a terminal status";
  for (OmniNode* n : {&a, &b, &c}) {
    EXPECT_EQ(n->manager().pending_data_count(), 0u);
    EXPECT_EQ(n->manager().data_attempt_count(), 0u);
    EXPECT_EQ(n->manager().context_attempt_count(), 0u);
  }
  EXPECT_GT(plan.stats().drops, 0u) << "the schedule actually injected";

  a.stop();
  b.stop();
  c.stop();
  bed.simulator().run_for(Duration::seconds(1));
  for (OmniNode* n : {&a, &b, &c}) {
    EXPECT_EQ(n->manager().pending_data_count(), 0u);
    EXPECT_EQ(n->manager().data_attempt_count(), 0u);
    EXPECT_EQ(n->manager().context_attempt_count(), 0u);
  }
}

TEST_F(FailureInjectionTest, CrashRestartChurnRelearnsRotatedAddress) {
  // A crashed node that reboots with fresh link-layer addresses (BLE
  // private-address rotation) must be re-learned under the same omni
  // address — the stale mapping gets overwritten, not shadowed.
  auto& da = bed.add_device("a", {0, 0});
  auto& db = bed.add_device("b", {10, 0});
  OmniNode a(da, bed.mesh());
  OmniNode b(db, bed.mesh());

  auto& plan = bed.fault_plan();
  sim::FaultPlan::Crash crash;
  crash.node = db.node();
  crash.at = TimePoint::origin() + Duration::seconds(5);
  crash.restart = TimePoint::origin() + Duration::seconds(8);
  crash.rotate_addresses = true;
  plan.add_crash(crash);
  bed.schedule_faults();

  a.start();
  b.start();
  bed.simulator().run_for(Duration::seconds(3));
  const PeerEntry* entry = a.manager().peer_table().find(b.address());
  ASSERT_NE(entry, nullptr);
  auto ble_it = entry->techs.find(Technology::kBle);
  ASSERT_NE(ble_it, entry->techs.end());
  const BleAddress before = std::get<BleAddress>(ble_it->second.address);
  EXPECT_EQ(before, db.ble().address());

  // Through the crash, the restart, and a few beacon intervals.
  bed.simulator().run_for(Duration::seconds(12));
  const BleAddress after = db.ble().address();
  EXPECT_NE(after, before) << "the reboot rotated the BLE address";

  entry = a.manager().peer_table().find(b.address());
  ASSERT_NE(entry, nullptr) << "the restarted node was re-learned";
  ble_it = entry->techs.find(Technology::kBle);
  ASSERT_NE(ble_it, entry->techs.end());
  EXPECT_EQ(std::get<BleAddress>(ble_it->second.address), after)
      << "the mapping tracks the fresh address, not the stale one";
  EXPECT_GE(entry->last_seen,
            bed.simulator().now() - Duration::seconds(2));

  // And the mapping is actually usable: a data send lands.
  StatusCode code = StatusCode::kSendDataFailure;
  a.manager().send_data({b.address()}, Bytes{0x42},
                        [&](StatusCode sc, const ResponseInfo&) {
                          code = sc;
                        });
  bed.simulator().run_for(Duration::seconds(5));
  EXPECT_EQ(code, StatusCode::kSendDataSuccess);
}

TEST_F(FailureInjectionTest, ManagerStopIsClean) {
  auto& da = bed.add_device("a", {0, 0});
  OmniNode a(da, bed.mesh());
  a.start();
  a.manager().add_context(ContextParams{}, Bytes{1}, nullptr);
  bed.simulator().run_for(Duration::seconds(2));
  a.stop();
  // Advertisements are withdrawn; the remaining event queue drains without
  // touching freed state.
  bed.simulator().run_for(Duration::seconds(5));
  EXPECT_EQ(da.ble().active_advertisements(), 0u);
}

}  // namespace
}  // namespace omni
