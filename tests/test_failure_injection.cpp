// Failure injection across the stack: mid-transfer range loss with
// technology failover, radio flapping, and mobility churn. Exercises the
// paper's §3.3 "Handling Failures" behavior end to end.
#include <gtest/gtest.h>

#include <memory>

#include "net/testbed.h"
#include "omni/omni_node.h"

namespace omni {
namespace {

class FailureInjectionTest : public ::testing::Test {
 protected:
  net::Testbed bed{71};
};

TEST_F(FailureInjectionTest, MidTransferRangeLossFailsOverToBle) {
  auto& da = bed.add_device("a", {0, 0});
  auto& db = bed.add_device("b", {10, 0});
  OmniNode a(da, bed.mesh());
  OmniNode b(db, bed.mesh());
  Bytes got;
  b.manager().request_data(
      [&](const OmniAddress&, const Bytes& d) { got = d; });
  a.start();
  b.start();
  bed.simulator().run_for(Duration::seconds(3));

  // Small payload that BLE *could* carry: a long WiFi transfer is forced by
  // queueing a big one first... simpler: break WiFi right as the send
  // starts, so the TCP attempt fails and the manager retries on BLE.
  StatusCode final_code = StatusCode::kSendDataFailure;
  a.manager().send_data({b.address()}, Bytes{0x77},
                        [&](StatusCode code, const ResponseInfo&) {
                          final_code = code;
                        });
  // Move b out of WiFi range but inside BLE range is impossible (BLE range
  // is shorter), so instead kill b's mesh membership: TCP fails, BLE works.
  db.wifi().leave();
  bed.simulator().run_for(Duration::seconds(10));
  EXPECT_EQ(final_code, StatusCode::kSendDataSuccess);
  EXPECT_EQ(got, (Bytes{0x77}));
  EXPECT_GE(a.manager().stats().data_failovers, 1u);
}

TEST_F(FailureInjectionTest, TotalRangeLossEventuallyFailsRequest) {
  auto& da = bed.add_device("a", {0, 0});
  auto& db = bed.add_device("b", {10, 0});
  OmniNode a(da, bed.mesh());
  OmniNode b(db, bed.mesh());
  a.start();
  b.start();
  bed.simulator().run_for(Duration::seconds(3));

  // b walks away entirely mid-transfer.
  StatusCode final_code = StatusCode::kSendDataSuccess;
  a.manager().send_data({b.address()}, Bytes(5'000'000, 1),
                        [&](StatusCode code, const ResponseInfo&) {
                          final_code = code;
                        });
  bed.simulator().after(Duration::millis(200), [&] {
    bed.world().set_position(db.node(), {5000, 0});
  });
  bed.simulator().run_for(Duration::seconds(20));
  EXPECT_EQ(final_code, StatusCode::kSendDataFailure);
}

TEST_F(FailureInjectionTest, BleRadioFlappingRecoversBeacons) {
  auto& da = bed.add_device("a", {0, 0});
  auto& db = bed.add_device("b", {10, 0});
  OmniNode a(da, bed.mesh());
  OmniNode b(db, bed.mesh());
  a.start();
  b.start();
  bed.simulator().run_for(Duration::seconds(3));
  ASSERT_NE(b.manager().peer_table().find(a.address()), nullptr);

  // Flap a's BLE radio a few times.
  for (int i = 0; i < 3; ++i) {
    da.ble().set_powered(false);
    bed.simulator().run_for(Duration::seconds(1));
    da.ble().set_powered(true);
    bed.simulator().run_for(Duration::seconds(1));
  }
  // After recovery the beacon advertisement is re-established and b keeps
  // hearing a (its mapping stays fresh past the original TTL).
  bed.simulator().run_for(Duration::seconds(8));
  const PeerEntry* entry = b.manager().peer_table().find(a.address());
  ASSERT_NE(entry, nullptr);
  EXPECT_GE(entry->last_seen,
            bed.simulator().now() - Duration::seconds(2));
}

TEST_F(FailureInjectionTest, MobilityChurnKeepsTableConsistent) {
  auto& da = bed.add_device("a", {0, 0});
  auto& db = bed.add_device("b", {10, 0});
  OmniNode a(da, bed.mesh());
  OmniNode b(db, bed.mesh());
  a.start();
  b.start();

  // b oscillates in and out of all radio range every 6 s.
  for (int cycle = 0; cycle < 4; ++cycle) {
    bed.world().set_position(db.node(), {10, 0});
    bed.simulator().run_for(Duration::seconds(6));
    EXPECT_NE(a.manager().peer_table().find(b.address()), nullptr)
        << "cycle " << cycle;
    bed.world().set_position(db.node(), {5000, 0});
    bed.simulator().run_for(Duration::seconds(15));  // > peer TTL
    EXPECT_EQ(a.manager().peer_table().find(b.address()), nullptr)
        << "cycle " << cycle;
  }
}

TEST_F(FailureInjectionTest, ConnectionlessContextSurvivesMeshCollapse) {
  // Paper §3.3: "connection-less technologies by design have no connections
  // to break". Killing the whole mesh must not interrupt context delivery.
  auto& da = bed.add_device("a", {0, 0});
  auto& db = bed.add_device("b", {10, 0});
  OmniNode a(da, bed.mesh());
  OmniNode b(db, bed.mesh());
  int contexts = 0;
  b.manager().request_context(
      [&](const OmniAddress&, const Bytes&) { ++contexts; });
  a.start();
  b.start();
  a.manager().add_context(ContextParams{}, Bytes{1}, nullptr);
  bed.simulator().run_for(Duration::seconds(3));
  int before = contexts;
  ASSERT_GT(before, 0);

  da.wifi().set_powered(false);
  db.wifi().set_powered(false);
  bed.simulator().run_for(Duration::seconds(3));
  EXPECT_GT(contexts, before + 3) << "context harvest continues over BLE";
}

TEST_F(FailureInjectionTest, ManagerStopIsClean) {
  auto& da = bed.add_device("a", {0, 0});
  OmniNode a(da, bed.mesh());
  a.start();
  a.manager().add_context(ContextParams{}, Bytes{1}, nullptr);
  bed.simulator().run_for(Duration::seconds(2));
  a.stop();
  // Advertisements are withdrawn; the remaining event queue drains without
  // touching freed state.
  bed.simulator().run_for(Duration::seconds(5));
  EXPECT_EQ(da.ble().active_advertisements(), 0u);
}

}  // namespace
}  // namespace omni
