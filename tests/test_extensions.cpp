// The paper's §5 future-work extensions: multi-hop context relay ("BLE Mesh
// offers a promising solution for low-energy context sharing across longer
// ranges") and adaptive beacon intervals ("plugging in existing neighbor
// discovery protocols that use adaptive transmission frequencies").
#include <gtest/gtest.h>

#include <memory>

#include "net/testbed.h"
#include "omni/omni_node.h"

namespace omni {
namespace {

// Relayed packets exceed legacy advertisement limits, so these scenarios
// run with Bluetooth 5 extended advertising, as the paper anticipates.
radio::Calibration bt5_calibration() {
  radio::Calibration cal = radio::Calibration::defaults();
  cal.ble_extended_advertising = true;
  return cal;
}

OmniNodeOptions relay_options(int hops) {
  OmniNodeOptions options;
  options.manager.context_relay_hops = hops;
  return options;
}

TEST(RelayTest, TwoHopContextDelivery) {
  // A --35m-- B --35m-- C: BLE range is 40 m, so A and C (70 m apart) only
  // hear each other through B's relay.
  net::Testbed bed(91, bt5_calibration());
  auto& da = bed.add_device("a", {0, 0});
  auto& db = bed.add_device("b", {35, 0});
  auto& dc = bed.add_device("c", {70, 0});
  OmniNode a(da, bed.mesh(), relay_options(1));
  OmniNode b(db, bed.mesh(), relay_options(1));
  OmniNode c(dc, bed.mesh(), relay_options(1));

  std::vector<std::pair<OmniAddress, Bytes>> contexts_at_c;
  c.manager().request_context(
      [&](const OmniAddress& source, const Bytes& ctx) {
        contexts_at_c.emplace_back(source, ctx);
      });

  a.start();
  b.start();
  c.start();
  a.manager().add_context(ContextParams{}, Bytes{0xAA}, nullptr);
  bed.simulator().run_for(Duration::seconds(6));

  // C heard A's context, attributed to A (not to the relayer B).
  bool found = false;
  for (const auto& [source, ctx] : contexts_at_c) {
    if (source == a.address() && ctx == Bytes{0xAA}) found = true;
  }
  EXPECT_TRUE(found);
  EXPECT_GT(b.manager().stats().relayed_out, 0u);
  EXPECT_GT(c.manager().stats().relayed_in, 0u);
}

TEST(RelayTest, RelayedAddressBeaconEnablesDirectWifiData) {
  // C learns A's mesh address through B's relayed beacon; since WiFi range
  // (100 m) exceeds BLE range, C can then send data to A directly over
  // WiFi — paying the re-validation ritual, because the mapping is
  // relay-derived rather than ND-verified.
  net::Testbed bed(92, bt5_calibration());
  auto& da = bed.add_device("a", {0, 0});
  auto& db = bed.add_device("b", {35, 0});
  auto& dc = bed.add_device("c", {70, 0});
  OmniNode a(da, bed.mesh(), relay_options(1));
  OmniNode b(db, bed.mesh(), relay_options(1));
  OmniNode c(dc, bed.mesh(), relay_options(1));

  Bytes data_at_a;
  a.manager().request_data(
      [&](const OmniAddress&, const Bytes& d) { data_at_a = d; });

  a.start();
  b.start();
  c.start();
  bed.simulator().run_for(Duration::seconds(6));

  const PeerEntry* a_at_c = c.manager().peer_table().find(a.address());
  ASSERT_NE(a_at_c, nullptr);
  ASSERT_TRUE(a_at_c->reachable_on(Technology::kWifiUnicast));
  EXPECT_TRUE(a_at_c->techs.at(Technology::kWifiUnicast).requires_refresh);
  EXPECT_FALSE(a_at_c->reachable_on(Technology::kBle));  // out of BLE range

  bool ok = false;
  c.manager().send_data({a.address()}, Bytes{0xCC},
                        [&](StatusCode code, const ResponseInfo&) {
                          ok = code == StatusCode::kSendDataSuccess;
                        });
  bed.simulator().run_for(Duration::seconds(10));
  EXPECT_TRUE(ok);
  EXPECT_EQ(data_at_a, (Bytes{0xCC}));
}

TEST(RelayTest, HopBudgetLimitsPropagation) {
  // A line of four: A - B - C - D, 35 m spacing. With 1 hop, A's context
  // reaches C (via B) but not D (that would take two relays).
  net::Testbed bed(93, bt5_calibration());
  auto& da = bed.add_device("a", {0, 0});
  auto& db = bed.add_device("b", {35, 0});
  auto& dc = bed.add_device("c", {70, 0});
  auto& dd = bed.add_device("d", {105, 0});
  OmniNode a(da, bed.mesh(), relay_options(1));
  OmniNode b(db, bed.mesh(), relay_options(1));
  OmniNode c(dc, bed.mesh(), relay_options(1));
  OmniNode d(dd, bed.mesh(), relay_options(1));

  bool c_heard = false, d_heard = false;
  c.manager().request_context(
      [&](const OmniAddress& s, const Bytes&) {
        if (s == a.address()) c_heard = true;
      });
  d.manager().request_context(
      [&](const OmniAddress& s, const Bytes&) {
        if (s == a.address()) d_heard = true;
      });
  a.start();
  b.start();
  c.start();
  d.start();
  a.manager().add_context(ContextParams{}, Bytes{0x11}, nullptr);
  bed.simulator().run_for(Duration::seconds(8));
  EXPECT_TRUE(c_heard);
  EXPECT_FALSE(d_heard);
}

TEST(RelayTest, TwoHopBudgetReachesFourthNode) {
  net::Testbed bed(94, bt5_calibration());
  auto& da = bed.add_device("a", {0, 0});
  auto& db = bed.add_device("b", {35, 0});
  auto& dc = bed.add_device("c", {70, 0});
  auto& dd = bed.add_device("d", {105, 0});
  OmniNode a(da, bed.mesh(), relay_options(2));
  OmniNode b(db, bed.mesh(), relay_options(2));
  OmniNode c(dc, bed.mesh(), relay_options(2));
  OmniNode d(dd, bed.mesh(), relay_options(2));

  bool d_heard = false;
  d.manager().request_context(
      [&](const OmniAddress& s, const Bytes&) {
        if (s == a.address()) d_heard = true;
      });
  a.start();
  b.start();
  c.start();
  d.start();
  a.manager().add_context(ContextParams{}, Bytes{0x22}, nullptr);
  bed.simulator().run_for(Duration::seconds(10));
  EXPECT_TRUE(d_heard);
}

TEST(RelayTest, DisabledByDefault) {
  net::Testbed bed(95, bt5_calibration());
  auto& da = bed.add_device("a", {0, 0});
  auto& db = bed.add_device("b", {35, 0});
  auto& dc = bed.add_device("c", {70, 0});
  OmniNode a(da, bed.mesh());
  OmniNode b(db, bed.mesh());
  OmniNode c(dc, bed.mesh());
  a.start();
  b.start();
  c.start();
  bed.simulator().run_for(Duration::seconds(6));
  EXPECT_EQ(b.manager().stats().relayed_out, 0u);
  EXPECT_EQ(c.manager().peer_table().find(a.address()), nullptr);
}

TEST(AdaptiveBeaconTest, BacksOffWhenNeighborhoodStatic) {
  net::Testbed bed(96);
  auto& da = bed.add_device("a", {0, 0});
  auto& db = bed.add_device("b", {10, 0});
  OmniNodeOptions options;
  options.manager.adaptive_beacon.enabled = true;
  OmniNode a(da, bed.mesh(), options);
  OmniNode b(db, bed.mesh(), options);
  a.start();
  b.start();
  EXPECT_EQ(a.manager().current_beacon_interval(),
            options.manager.adaptive_beacon.min_interval);
  // After discovery the neighborhood is static: several quiet maintenance
  // ticks double the interval up to the maximum.
  bed.simulator().run_for(Duration::seconds(40));
  EXPECT_EQ(a.manager().current_beacon_interval(),
            options.manager.adaptive_beacon.max_interval);
}

TEST(AdaptiveBeaconTest, ChurnResetsToMinimum) {
  net::Testbed bed(97);
  auto& da = bed.add_device("a", {0, 0});
  auto& db = bed.add_device("b", {2000, 0});  // far away initially
  OmniNodeOptions options;
  options.manager.adaptive_beacon.enabled = true;
  OmniNode a(da, bed.mesh(), options);
  OmniNode b(db, bed.mesh(), options);
  a.start();
  b.start();
  bed.simulator().run_for(Duration::seconds(40));
  ASSERT_EQ(a.manager().current_beacon_interval(),
            options.manager.adaptive_beacon.max_interval);

  // b arrives: a's neighborhood changes, the beacon tightens again. The
  // reset happens on the first maintenance tick after b's (backed-off, 4 s
  // cadence) beacon is heard — poll rather than sample a fixed instant, as
  // a later quiet tick starts doubling the interval again.
  bed.world().set_position(db.node(), {10, 0});
  bool tightened = false;
  for (int i = 0; i < 12 && !tightened; ++i) {
    bed.simulator().run_for(Duration::seconds(1));
    tightened = a.manager().current_beacon_interval() ==
                options.manager.adaptive_beacon.min_interval;
  }
  EXPECT_TRUE(tightened);
}

TEST(AdaptiveBeaconTest, SavesIdleEnergy) {
  double energy[2];
  for (int variant = 0; variant < 2; ++variant) {
    net::Testbed bed(98);
    auto& da = bed.add_device("a", {0, 0});
    OmniNodeOptions options;
    options.wifi_standby = false;   // isolate the BLE advertising cost
    options.wifi_unicast = false;   // BLE-only node
    options.manager.adaptive_beacon.enabled = variant == 1;
    options.manager.adaptive_beacon.min_interval = Duration::millis(100);
    options.manager.beacon_interval = Duration::millis(100);
    OmniNode a(da, bed.mesh(), options);
    a.start();
    bed.simulator().run_for(Duration::seconds(120));
    energy[variant] = da.meter().average_ma(
        TimePoint::origin() + Duration::seconds(60),
        bed.simulator().now());
  }
  // The adaptive node backed off to a 4 s interval: ~40x fewer beacon
  // events in steady state. The continuous scanner dominates the absolute
  // draw, so assert on the advertising delta.
  EXPECT_LT(energy[1], energy[0] - 0.5);
}


TEST(AddressRotationTest, CommunicationSurvivesBleAddressRotation) {
  // BLE privacy rotates the link address; the paper's §3.2 contract makes
  // the technology report it, and the manager re-advertises the fresh
  // mapping in its address beacons. Peers must keep working throughout.
  net::Testbed bed(501);
  auto& da = bed.add_device("a", {0, 0});
  auto& db = bed.add_device("b", {10, 0});
  OmniNode a(da, bed.mesh());
  OmniNode b(db, bed.mesh());
  Bytes got;
  a.manager().request_data(
      [&](const OmniAddress&, const Bytes& d) { got = d; });
  a.start();
  b.start();
  bed.simulator().run_for(Duration::seconds(3));

  BleAddress before = da.ble().address();
  da.ble().rotate_address();
  EXPECT_NE(da.ble().address(), before);

  // After the next beacon round, b's mapping for a points at the fresh
  // address...
  bed.simulator().run_for(Duration::seconds(2));
  const PeerEntry* entry = b.manager().peer_table().find(a.address());
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(entry->techs.at(Technology::kBle).address,
            LowLevelAddress{da.ble().address()});
  // ...and the omni_address identity is unchanged.
  EXPECT_EQ(a.address(), a.manager().address());

  // Data over BLE still lands (force the BLE path: kill the mesh member).
  da.wifi().set_powered(false);
  bool ok = false;
  b.manager().send_data({a.address()}, Bytes{0x5E},
                        [&](StatusCode code, const ResponseInfo&) {
                          ok = code == StatusCode::kSendDataSuccess;
                        });
  bed.simulator().run_for(Duration::seconds(5));
  EXPECT_TRUE(ok);
  EXPECT_EQ(got, (Bytes{0x5E}));
}

TEST(AddressRotationTest, RepeatedRotationsStayFresh) {
  net::Testbed bed(502);
  auto& da = bed.add_device("a", {0, 0});
  auto& db = bed.add_device("b", {10, 0});
  OmniNode a(da, bed.mesh());
  OmniNode b(db, bed.mesh());
  a.start();
  b.start();
  bed.simulator().run_for(Duration::seconds(2));
  for (int i = 0; i < 5; ++i) {
    da.ble().rotate_address();
    bed.simulator().run_for(Duration::seconds(2));
    const PeerEntry* entry = b.manager().peer_table().find(a.address());
    ASSERT_NE(entry, nullptr) << "rotation " << i;
    EXPECT_EQ(entry->techs.at(Technology::kBle).address,
              LowLevelAddress{da.ble().address()})
        << "rotation " << i;
  }
}

}  // namespace
}  // namespace omni
