// Beacon fast path: deterministic perf oracles (counter-based, never
// wall-clock) plus equivalence and invalidation checks for the receive-side
// frame memo. See DESIGN.md "Beacon fast path".
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <string>
#include <vector>

#include "net/testbed.h"
#include "obs/omniscope.h"
#include "omni/omni_node.h"

namespace omni {
namespace {

struct Fleet {
  std::unique_ptr<net::Testbed> bed;
  std::vector<std::unique_ptr<OmniNode>> nodes;

  std::uint64_t sum(std::uint64_t ManagerStats::*field) const {
    std::uint64_t total = 0;
    for (const auto& n : nodes) total += n->manager().stats().*field;
    return total;
  }
};

/// Constant-density grid (the bench_scale layout): 25 m spacing gives every
/// node BLE neighbors without anyone hearing the whole field.
Fleet make_grid(std::size_t n, unsigned threads, bool memo,
                bool observability) {
  Fleet f;
  f.bed = std::make_unique<net::Testbed>(42, radio::Calibration::defaults(),
                                         threads);
  if (observability) {
    f.bed->enable_observability(/*ring_capacity=*/1 << 14, /*detail=*/false);
  }
  const auto side = static_cast<std::size_t>(
      std::ceil(std::sqrt(static_cast<double>(n))));
  OmniNodeOptions options;
  options.manager.beacon_rx_memo = memo;
  f.nodes.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    net::Device& dev = f.bed->add_device(
        "n" + std::to_string(i),
        {static_cast<double>(i % side) * 25.0,
         static_cast<double>(i / side) * 25.0});
    f.nodes.push_back(
        std::make_unique<OmniNode>(dev, f.bed->mesh(), options));
  }
  for (auto& node : f.nodes) node->start();
  return f;
}

TEST(BeaconFastPathTest, PerfOracle250Nodes) {
  // Deterministic perf oracle: instead of timing anything, assert the
  // counters that make the fast path fast. Steady-state beacons are
  // byte-identical repeats, so almost every reception after the first from
  // a given (tech, sender) must skip the decode, and the sender-side frame
  // cache must hold encodes to a handful per node for 10 s of beaconing.
  Fleet f = make_grid(250, /*threads=*/1, /*memo=*/true,
                      /*observability=*/true);
  f.bed->simulator().run_for(Duration::seconds(10));

  const std::uint64_t beacons = f.sum(&ManagerStats::beacons_received);
  const std::uint64_t skips = f.sum(&ManagerStats::beacon_decode_skips);
  const std::uint64_t encodes = f.sum(&ManagerStats::beacon_encodes);
  const std::uint64_t sweeps = f.sum(&ManagerStats::peer_expire_sweeps);
  ASSERT_GT(beacons, 0u);
  EXPECT_GT(skips, 0u) << "the receive memo never fired";
  EXPECT_GT(skips * 2, beacons)
      << "steady-state beacons should mostly be byte-identical repeats";
  EXPECT_LT(encodes * 8, beacons)
      << "the sender frame cache should re-encode rarely, not per beacon";
  EXPECT_GT(sweeps, 0u) << "the amortized peer-expiry sweep never ran";

  // The Omniscope mirrors of the same counters must agree with the
  // ManagerStats sums (both stay live in this configuration).
  std::string dump = f.bed->observability()->metrics_dump();
  EXPECT_NE(dump.find("mgr.beacon_decode_skips"), std::string::npos);
  EXPECT_NE(dump.find("mgr.peer_expire_sweeps"), std::string::npos);
}

TEST(BeaconFastPathTest, MetricsDigestInvariantAcrossThreadCounts) {
  // The fast path must not perturb PR 2 determinism: the full metrics dump
  // (every counter on every owner, fast-path counters included) is
  // byte-identical at any thread count.
  auto digest = [](unsigned threads) {
    Fleet f = make_grid(100, threads, /*memo=*/true, /*observability=*/true);
    f.bed->simulator().run_for(Duration::seconds(6));
    return f.bed->observability()->metrics_dump();
  };
  std::string sequential = digest(1);
  EXPECT_NE(sequential.find("mgr.beacon_decode_skips"), std::string::npos);
  EXPECT_EQ(sequential, digest(2));
  EXPECT_EQ(sequential, digest(8));
}

TEST(BeaconFastPathTest, MemoOffIsObservablyEquivalent) {
  // The memo is an ablation switch, not a semantics switch: with it off the
  // same scenario must land in the same protocol state — same peer tables,
  // same packet/beacon counts — just without the skips.
  Fleet on = make_grid(64, 1, /*memo=*/true, /*observability=*/false);
  Fleet off = make_grid(64, 1, /*memo=*/false, /*observability=*/false);
  on.bed->simulator().run_for(Duration::seconds(8));
  off.bed->simulator().run_for(Duration::seconds(8));

  EXPECT_GT(on.sum(&ManagerStats::beacon_decode_skips), 0u);
  EXPECT_EQ(off.sum(&ManagerStats::beacon_decode_skips), 0u);
  EXPECT_EQ(on.sum(&ManagerStats::packets_received),
            off.sum(&ManagerStats::packets_received));
  EXPECT_EQ(on.sum(&ManagerStats::beacons_received),
            off.sum(&ManagerStats::beacons_received));
  EXPECT_EQ(on.sum(&ManagerStats::engagements),
            off.sum(&ManagerStats::engagements));
  for (std::size_t i = 0; i < on.nodes.size(); ++i) {
    EXPECT_EQ(on.nodes[i]->manager().peer_table().peers(),
              off.nodes[i]->manager().peer_table().peers())
        << "node " << i;
  }
}

TEST(BeaconFastPathTest, RotatedAddressAfterCrashInvalidatesMemo) {
  // PR 3 crash/restart with BLE private-address rotation: the rotated
  // sender's beacons arrive from a new link address with new frame bytes,
  // so the memo must miss and the fresh mapping must be learned — a stale
  // memo hit would keep re-recording the dead address.
  net::Testbed bed(71);
  auto& da = bed.add_device("a", {0, 0});
  auto& db = bed.add_device("b", {10, 0});
  OmniNodeOptions options;
  options.manager.beacon_rx_memo = true;
  OmniNode a(da, bed.mesh(), options);
  OmniNode b(db, bed.mesh(), options);

  auto& plan = bed.fault_plan();
  sim::FaultPlan::Crash crash;
  crash.node = db.node();
  crash.at = TimePoint::origin() + Duration::seconds(5);
  crash.restart = TimePoint::origin() + Duration::seconds(8);
  crash.rotate_addresses = true;
  plan.add_crash(crash);
  bed.schedule_faults();

  a.start();
  b.start();
  bed.simulator().run_for(Duration::seconds(3));
  const PeerEntry* entry = a.manager().peer_table().find(b.address());
  ASSERT_NE(entry, nullptr);
  auto ble_it = entry->techs.find(Technology::kBle);
  ASSERT_NE(ble_it, entry->techs.end());
  const BleAddress before = std::get<BleAddress>(ble_it->second.address);
  EXPECT_GT(a.manager().stats().beacon_decode_skips, 0u)
      << "repeats before the crash should hit the memo";

  bed.simulator().run_for(Duration::seconds(12));
  const BleAddress after = db.ble().address();
  ASSERT_NE(after, before) << "the reboot rotated the BLE address";

  entry = a.manager().peer_table().find(b.address());
  ASSERT_NE(entry, nullptr) << "the restarted node was re-learned";
  ble_it = entry->techs.find(Technology::kBle);
  ASSERT_NE(ble_it, entry->techs.end());
  EXPECT_EQ(std::get<BleAddress>(ble_it->second.address), after)
      << "a stale memo hit would have pinned the old address";

  // The relearned mapping is usable end to end.
  StatusCode code = StatusCode::kSendDataFailure;
  a.manager().send_data({b.address()}, Bytes{0x42},
                        [&](StatusCode sc, const ResponseInfo&) { code = sc; });
  bed.simulator().run_for(Duration::seconds(5));
  EXPECT_EQ(code, StatusCode::kSendDataSuccess);
}

}  // namespace
}  // namespace omni
