// SP and SA baseline stacks: discovery, advert/data dispatch, the WiFi
// resolution costs that distinguish them from Omni, and the D2dStack
// contract they share with the OmniStack adapter.
#include <gtest/gtest.h>

#include <memory>

#include "baselines/directory.h"
#include "baselines/omni_stack.h"
#include "baselines/sa_node.h"
#include "baselines/sp_ble_node.h"
#include "baselines/sp_wifi_node.h"
#include "net/testbed.h"
#include "omni/omni_node.h"

namespace omni::baselines {
namespace {

class BaselineTest : public ::testing::Test {
 protected:
  net::Testbed bed{37};
};

TEST_F(BaselineTest, SpBleDiscoveryAndSmallData) {
  auto& da = bed.add_device("a", {0, 0});
  auto& db = bed.add_device("b", {10, 0});
  SpBleNode a(da), b(db);

  Bytes b_advert_seen;
  a.set_advert_handler([&](D2dStack::PeerId from, const Bytes& info) {
    EXPECT_EQ(from, b.self());
    b_advert_seen = info;
  });
  Bytes data_seen;
  b.set_data_handler(
      [&](D2dStack::PeerId, const Bytes& data) { data_seen = data; });

  a.start();
  b.start();
  a.advertise(Bytes{'a'}, Duration::millis(500));
  b.advertise(Bytes{'b'}, Duration::millis(500));
  // Low idle scan duty: discovery takes a few beacons but happens.
  bed.simulator().run_for(Duration::seconds(30));
  EXPECT_EQ(b_advert_seen, (Bytes{'b'}));
  ASSERT_EQ(a.known_peers().size(), 1u);

  bool ok = false;
  a.send(b.self(), Bytes{1, 2, 3}, [&](Status s) { ok = s.is_ok(); });
  bed.simulator().run_for(Duration::seconds(1));
  EXPECT_TRUE(ok);
  EXPECT_EQ(data_seen, (Bytes{1, 2, 3}));
}

TEST_F(BaselineTest, SpBleTurnsWifiOff) {
  auto& da = bed.add_device("a", {0, 0});
  da.wifi().set_powered(true);
  SpBleNode a(da);
  a.start();
  EXPECT_FALSE(da.wifi().powered());
  bed.simulator().run_for(Duration::seconds(10));
  // Negative "relative to WiFi-standby" energy: the paper's SP hallmark.
  double rel = da.meter().average_ma(TimePoint::origin(),
                                     bed.simulator().now()) -
               bed.calibration().wifi_standby_ma;
  EXPECT_LT(rel, -85.0);
}

TEST_F(BaselineTest, SpBleSendToUnknownPeerFails) {
  auto& da = bed.add_device("a", {0, 0});
  SpBleNode a(da);
  a.start();
  bool failed = false;
  a.send(0xDEAD, Bytes{1}, [&](Status s) { failed = !s.is_ok(); });
  EXPECT_TRUE(failed);
}

TEST_F(BaselineTest, SpWifiFirstSendPaysFullRitual) {
  auto& da = bed.add_device("a", {0, 0});
  auto& db = bed.add_device("b", {10, 0});
  SpWifiNode a(da, bed.mesh()), b(db, bed.mesh());
  Bytes got;
  b.set_data_handler([&](D2dStack::PeerId, const Bytes& d) { got = d; });
  a.start();
  b.start();
  a.advertise(Bytes{'a'}, Duration::millis(500));
  b.advertise(Bytes{'b'}, Duration::millis(500));
  bed.simulator().run_for(Duration::seconds(3));
  ASSERT_FALSE(a.known_peers().empty());

  TimePoint t0 = bed.simulator().now();
  TimePoint done;
  a.send(b.self(), Bytes{7}, [&](Status s) {
    ASSERT_TRUE(s.is_ok());
    done = bed.simulator().now();
  });
  bed.simulator().run_for(Duration::seconds(10));
  EXPECT_EQ(got, (Bytes{7}));
  // scan + join + query + advert wait + TCP: the paper's ~3.2s.
  EXPECT_NEAR((done - t0).as_millis(), 3245.0, 30.0);

  // Second send: validated, so only TCP time.
  t0 = bed.simulator().now();
  a.send(b.self(), Bytes{8}, [&](Status) { done = bed.simulator().now(); });
  bed.simulator().run_for(Duration::seconds(2));
  EXPECT_NEAR((done - t0).as_millis(), 16.0, 2.0);
}

TEST_F(BaselineTest, SpWifiBroadcastDataReachesAll) {
  auto& da = bed.add_device("a", {0, 0});
  auto& db = bed.add_device("b", {10, 0});
  auto& dc = bed.add_device("c", {20, 0});
  SpWifiNode a(da, bed.mesh()), b(db, bed.mesh()), c(dc, bed.mesh());
  int b_got = 0, c_got = 0;
  b.set_data_handler([&](D2dStack::PeerId, const Bytes&) { ++b_got; });
  c.set_data_handler([&](D2dStack::PeerId, const Bytes&) { ++c_got; });
  a.start();
  b.start();
  c.start();
  bed.simulator().run_for(Duration::seconds(1));
  bool ok = false;
  a.broadcast_data(Bytes(3000, 5), [&](Status s) { ok = s.is_ok(); });
  bed.simulator().run_for(Duration::seconds(2));
  EXPECT_TRUE(ok);
  EXPECT_EQ(b_got, 1);
  EXPECT_EQ(c_got, 1);
}

TEST_F(BaselineTest, SaDiscoversOnBothRadios) {
  auto& da = bed.add_device("a", {0, 0});
  auto& db = bed.add_device("b", {10, 0});
  Directory dir;
  SaNode a(da, bed.mesh(), dir), b(db, bed.mesh(), dir);
  int adverts = 0;
  a.set_advert_handler([&](D2dStack::PeerId, const Bytes&) { ++adverts; });
  a.start();
  b.start();
  a.advertise(Bytes{'x'}, Duration::millis(500));
  b.advertise(Bytes{'y'}, Duration::millis(500));
  bed.simulator().run_for(Duration::seconds(5));
  // Overlay beacons arrive on BLE (most of ~10 at 90% capture) and WiFi
  // multicast (~9-10): roughly twice the single-radio rate.
  EXPECT_GT(adverts, 12);
  EXPECT_EQ(a.known_peers().size(), 1u);
}

TEST_F(BaselineTest, SaBleDiscoveredPeerSkipsAdvertWait) {
  auto& da = bed.add_device("a", {0, 0});
  auto& db = bed.add_device("b", {10, 0});
  Directory dir;
  SaNode a(da, bed.mesh(), dir), b(db, bed.mesh(), dir);
  Bytes got;
  b.set_data_handler([&](D2dStack::PeerId, const Bytes& d) { got = d; });
  a.start();
  b.start();
  bed.simulator().run_for(Duration::seconds(3));
  ASSERT_FALSE(a.known_peers().empty());

  TimePoint t0 = bed.simulator().now();
  TimePoint done;
  a.send(b.self(), Bytes{3}, [&](Status s) {
    ASSERT_TRUE(s.is_ok()) << s.message();
    done = bed.simulator().now();
  });
  bed.simulator().run_for(Duration::seconds(10));
  EXPECT_EQ(got, (Bytes{3}));
  // Ritual without advert wait (~2.79s) + TCP: the paper's SA BLE/WiFi row.
  EXPECT_NEAR((done - t0).as_millis(), 2809.0, 30.0);
}

TEST_F(BaselineTest, SaWithoutWifiSendsOverBle) {
  auto& da = bed.add_device("a", {0, 0});
  auto& db = bed.add_device("b", {10, 0});
  Directory dir;
  SaNode::Options options;
  options.data_over_wifi = false;
  SaNode a(da, bed.mesh(), dir, options), b(db, bed.mesh(), dir, options);
  Bytes got;
  b.set_data_handler([&](D2dStack::PeerId, const Bytes& d) { got = d; });
  a.start();
  b.start();
  bed.simulator().run_for(Duration::seconds(2));
  TimePoint t0 = bed.simulator().now();
  TimePoint done;
  a.send(b.self(), Bytes{9}, [&](Status) { done = bed.simulator().now(); });
  bed.simulator().run_for(Duration::seconds(1));
  EXPECT_EQ(got, (Bytes{9}));
  EXPECT_NEAR((done - t0).as_millis(), 41.0, 2.0);  // BLE datagram path
}

TEST_F(BaselineTest, OmniStackImplementsSameContract) {
  auto& da = bed.add_device("a", {0, 0});
  auto& db = bed.add_device("b", {10, 0});
  OmniNode na(da, bed.mesh());
  OmniNode nb(db, bed.mesh());
  OmniStack a(na), b(nb);

  Bytes advert_seen, data_seen;
  a.set_advert_handler(
      [&](D2dStack::PeerId, const Bytes& info) { advert_seen = info; });
  b.set_data_handler(
      [&](D2dStack::PeerId, const Bytes& d) { data_seen = d; });
  a.start();
  b.start();
  b.advertise(Bytes{'B'}, Duration::millis(500));
  bed.simulator().run_for(Duration::seconds(3));
  EXPECT_EQ(advert_seen, (Bytes{'B'}));
  ASSERT_FALSE(a.known_peers().empty());

  bool ok = false;
  a.send(b.self(), Bytes{1, 1}, [&](Status s) { ok = s.is_ok(); });
  bed.simulator().run_for(Duration::seconds(1));
  EXPECT_TRUE(ok);
  EXPECT_EQ(data_seen, (Bytes{1, 1}));

  // advertise() twice updates rather than duplicates.
  b.advertise(Bytes{'C'}, Duration::millis(500));
  bed.simulator().run_for(Duration::seconds(2));
  EXPECT_EQ(advert_seen, (Bytes{'C'}));
  b.stop_advertising();
  bed.simulator().run_for(Duration::seconds(1));
  advert_seen.clear();
  bed.simulator().run_for(Duration::seconds(3));
  EXPECT_TRUE(advert_seen.empty());
}

}  // namespace
}  // namespace omni::baselines
