// The simulation-integrated queues of the Communication Technology API:
// pushes never invoke the consumer re-entrantly, wakeups coalesce, and
// consumers drain in FIFO order.
#include <gtest/gtest.h>

#include <vector>

#include "omni/queues.h"

namespace omni {
namespace {

TEST(SimQueueTest, ConsumerRunsInFreshEvent) {
  sim::Simulator sim;
  SimQueue<int> q(sim);
  std::vector<int> got;
  bool in_push_scope = false;
  q.set_consumer([&] {
    EXPECT_FALSE(in_push_scope);  // never re-entrant
    while (auto v = q.try_pop()) got.push_back(*v);
  });
  in_push_scope = true;
  q.push(1);
  q.push(2);
  in_push_scope = false;
  EXPECT_TRUE(got.empty());  // nothing until the event loop spins
  sim.run();
  EXPECT_EQ(got, (std::vector<int>{1, 2}));
}

TEST(SimQueueTest, WakeupsCoalesce) {
  sim::Simulator sim;
  SimQueue<int> q(sim);
  int wakeups = 0;
  q.set_consumer([&] {
    ++wakeups;
    while (q.try_pop()) {
    }
  });
  for (int i = 0; i < 100; ++i) q.push(i);
  sim.run();
  EXPECT_EQ(wakeups, 1);
}

TEST(SimQueueTest, ConsumerSetAfterPushStillWakes) {
  sim::Simulator sim;
  SimQueue<int> q(sim);
  q.push(5);
  sim.run();
  int got = 0;
  q.set_consumer([&] {
    if (auto v = q.try_pop()) got = *v;
  });
  sim.run();
  EXPECT_EQ(got, 5);
}

TEST(SimQueueTest, ClearConsumerStopsDelivery) {
  sim::Simulator sim;
  SimQueue<int> q(sim);
  int wakeups = 0;
  q.set_consumer([&] { ++wakeups; });
  q.clear_consumer();
  q.push(1);
  sim.run();
  EXPECT_EQ(wakeups, 0);
  EXPECT_EQ(q.size(), 1u);
}

TEST(SimQueueTest, PushFromConsumerSchedulesAnotherWakeup) {
  sim::Simulator sim;
  SimQueue<int> q(sim);
  std::vector<int> got;
  q.set_consumer([&] {
    while (auto v = q.try_pop()) {
      got.push_back(*v);
      if (*v == 1) q.push(2);  // produced while consuming
    }
  });
  q.push(1);
  sim.run();
  EXPECT_EQ(got, (std::vector<int>{1, 2}));
}

TEST(SimQueueTest, DrainReturnsBacklogInOrder) {
  sim::Simulator sim;
  SimQueue<int> q(sim);
  for (int i = 0; i < 4; ++i) q.push(i);
  EXPECT_EQ(q.drain(), (std::vector<int>{0, 1, 2, 3}));
  EXPECT_TRUE(q.empty());
  EXPECT_TRUE(q.drain().empty());
}

TEST(SimQueueTest, DrainIntoReportsLivePrefixAndRecyclesSlots) {
  sim::Simulator sim;
  SimQueue<std::vector<int>> q(sim);
  q.push({1});
  q.push({2});
  q.push({3});
  std::vector<std::vector<int>> scratch;
  ASSERT_EQ(q.drain_into(scratch), 3u);
  EXPECT_EQ(scratch[0], (std::vector<int>{1}));
  EXPECT_EQ(scratch[2], (std::vector<int>{3}));
  EXPECT_TRUE(q.empty());

  // Deliberately no clear() between exchanges: the processed batch swaps
  // back into the queue as recycled slots.
  q.push({4});
  ASSERT_EQ(q.drain_into(scratch), 1u);  // queue now holds the 3 dead slots
  EXPECT_EQ(scratch[0], (std::vector<int>{4}));

  // A new batch overwrites the recycled slots in place; the third element
  // of the swapped-out vector is still a dead slot from the first batch.
  q.push({5});
  q.produce([](std::vector<int>& slot) { slot.assign(1, 6); });
  ASSERT_EQ(q.drain_into(scratch), 2u);
  ASSERT_EQ(scratch.size(), 3u);
  EXPECT_EQ(scratch[0], (std::vector<int>{5}));
  EXPECT_EQ(scratch[1], (std::vector<int>{6}));
  EXPECT_EQ(scratch[2], (std::vector<int>{3}));  // dead slot, buffer kept
}

TEST(SimQueueTest, ProduceWakesConsumerLikePush) {
  sim::Simulator sim;
  SimQueue<std::vector<int>> q(sim);
  std::vector<int> sizes;
  std::vector<std::vector<int>> scratch;
  q.set_consumer([&] {
    std::size_t n = q.drain_into(scratch);
    for (std::size_t i = 0; i < n; ++i) {
      sizes.push_back(static_cast<int>(scratch[i].size()));
    }
  });
  q.produce([](std::vector<int>& slot) { slot.assign(2, 7); });
  q.produce([](std::vector<int>& slot) { slot.assign(5, 7); });
  EXPECT_EQ(q.size(), 2u);
  sim.run();
  EXPECT_EQ(sizes, (std::vector<int>{2, 5}));
}

TEST(SimQueueTest, TryPopInterleavesWithRecycledSlots) {
  sim::Simulator sim;
  SimQueue<int> q(sim);
  q.push(1);
  q.push(2);
  EXPECT_EQ(q.try_pop(), 1);
  q.push(3);
  EXPECT_EQ(q.try_pop(), 2);
  EXPECT_EQ(q.try_pop(), 3);
  EXPECT_EQ(q.try_pop(), std::nullopt);
}

}  // namespace
}  // namespace omni
