// The simulation-integrated queues of the Communication Technology API:
// pushes never invoke the consumer re-entrantly, wakeups coalesce, and
// consumers drain in FIFO order.
#include <gtest/gtest.h>

#include <vector>

#include "omni/queues.h"

namespace omni {
namespace {

TEST(SimQueueTest, ConsumerRunsInFreshEvent) {
  sim::Simulator sim;
  SimQueue<int> q(sim);
  std::vector<int> got;
  bool in_push_scope = false;
  q.set_consumer([&] {
    EXPECT_FALSE(in_push_scope);  // never re-entrant
    while (auto v = q.try_pop()) got.push_back(*v);
  });
  in_push_scope = true;
  q.push(1);
  q.push(2);
  in_push_scope = false;
  EXPECT_TRUE(got.empty());  // nothing until the event loop spins
  sim.run();
  EXPECT_EQ(got, (std::vector<int>{1, 2}));
}

TEST(SimQueueTest, WakeupsCoalesce) {
  sim::Simulator sim;
  SimQueue<int> q(sim);
  int wakeups = 0;
  q.set_consumer([&] {
    ++wakeups;
    while (q.try_pop()) {
    }
  });
  for (int i = 0; i < 100; ++i) q.push(i);
  sim.run();
  EXPECT_EQ(wakeups, 1);
}

TEST(SimQueueTest, ConsumerSetAfterPushStillWakes) {
  sim::Simulator sim;
  SimQueue<int> q(sim);
  q.push(5);
  sim.run();
  int got = 0;
  q.set_consumer([&] {
    if (auto v = q.try_pop()) got = *v;
  });
  sim.run();
  EXPECT_EQ(got, 5);
}

TEST(SimQueueTest, ClearConsumerStopsDelivery) {
  sim::Simulator sim;
  SimQueue<int> q(sim);
  int wakeups = 0;
  q.set_consumer([&] { ++wakeups; });
  q.clear_consumer();
  q.push(1);
  sim.run();
  EXPECT_EQ(wakeups, 0);
  EXPECT_EQ(q.size(), 1u);
}

TEST(SimQueueTest, PushFromConsumerSchedulesAnotherWakeup) {
  sim::Simulator sim;
  SimQueue<int> q(sim);
  std::vector<int> got;
  q.set_consumer([&] {
    while (auto v = q.try_pop()) {
      got.push_back(*v);
      if (*v == 1) q.push(2);  // produced while consuming
    }
  });
  q.push(1);
  sim.run();
  EXPECT_EQ(got, (std::vector<int>{1, 2}));
}

}  // namespace
}  // namespace omni
