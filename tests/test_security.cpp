// Context-beacon encryption (paper §3.4): cipher soundness, and the
// middleware-level guarantee that unprovisioned devices learn nothing.
#include <gtest/gtest.h>

#include "net/testbed.h"
#include "omni/omni_node.h"
#include "omni/security.h"

namespace omni {
namespace {

Bytes key_bytes(const std::string& s) { return Bytes(s.begin(), s.end()); }

TEST(BeaconCipherTest, SealOpenRoundTrip) {
  BeaconCipher cipher(key_bytes("tour-group-42"));
  Bytes plain{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11};
  Bytes sealed = cipher.seal(plain, 1);
  EXPECT_EQ(sealed.size(), plain.size() + kSealOverhead);
  EXPECT_TRUE(BeaconCipher::looks_sealed(sealed));
  auto opened = cipher.open(sealed);
  ASSERT_TRUE(opened.has_value());
  EXPECT_EQ(*opened, plain);
}

TEST(BeaconCipherTest, EmptyPlaintext) {
  BeaconCipher cipher(key_bytes("k"));
  Bytes sealed = cipher.seal(Bytes{}, 7);
  auto opened = cipher.open(sealed);
  ASSERT_TRUE(opened.has_value());
  EXPECT_TRUE(opened->empty());
}

TEST(BeaconCipherTest, CiphertextDiffersFromPlaintext) {
  BeaconCipher cipher(key_bytes("key"));
  Bytes plain(64, 0x00);
  Bytes sealed = cipher.seal(plain, 1);
  // The ciphertext body must not be the plaintext.
  Bytes body(sealed.begin() + kSealOverhead, sealed.end());
  EXPECT_NE(body, plain);
}

TEST(BeaconCipherTest, DistinctNoncesGiveDistinctCiphertexts) {
  BeaconCipher cipher(key_bytes("key"));
  Bytes plain{9, 9, 9, 9};
  Bytes a = cipher.seal(plain, 1);
  Bytes b = cipher.seal(plain, 2);
  EXPECT_NE(a, b);
  EXPECT_EQ(*cipher.open(a), *cipher.open(b));
}

TEST(BeaconCipherTest, WrongKeyFails) {
  BeaconCipher alice(key_bytes("alice"));
  BeaconCipher eve(key_bytes("eve"));
  Bytes sealed = alice.seal(Bytes{1, 2, 3}, 1);
  EXPECT_FALSE(eve.open(sealed).has_value());
}

TEST(BeaconCipherTest, TamperingDetected) {
  BeaconCipher cipher(key_bytes("key"));
  Bytes sealed = cipher.seal(Bytes{1, 2, 3, 4}, 1);
  for (std::size_t i = 0; i < sealed.size(); ++i) {
    Bytes tampered = sealed;
    tampered[i] ^= 0x01;
    if (i == 0) {
      // Marker flips make it not-a-sealed-packet at all.
      EXPECT_FALSE(BeaconCipher::looks_sealed(tampered));
    } else {
      EXPECT_FALSE(cipher.open(tampered).has_value()) << "byte " << i;
    }
  }
}

TEST(BeaconCipherTest, MalformedInputRejected) {
  BeaconCipher cipher(key_bytes("key"));
  EXPECT_FALSE(cipher.open(Bytes{}).has_value());
  EXPECT_FALSE(cipher.open(Bytes{kSealedPacketMarker, 1, 2}).has_value());
  EXPECT_FALSE(cipher.open(Bytes{0x01, 0x02}).has_value());
}

class SecureOmniTest : public ::testing::Test {
 protected:
  SecureOmniTest() {
    // Sealed beacons exceed the legacy 31-byte advertisement, so encrypted
    // deployments rely on Bluetooth 5 extended advertising — the paper's
    // future-work item made necessary by its own §3.4.
    radio::Calibration cal = radio::Calibration::defaults();
    cal.ble_extended_advertising = true;
    bed = std::make_unique<net::Testbed>(83, cal);
  }

  OmniNodeOptions keyed_options(const std::string& key) {
    OmniNodeOptions options;
    options.manager.context_key = key_bytes(key);
    return options;
  }

  std::unique_ptr<net::Testbed> bed;
};

TEST_F(SecureOmniTest, SharedKeyDevicesInteroperate) {
  auto& da = bed->add_device("a", {0, 0});
  auto& db = bed->add_device("b", {10, 0});
  OmniNode a(da, bed->mesh(), keyed_options("tour-42"));
  OmniNode b(db, bed->mesh(), keyed_options("tour-42"));
  Bytes context_seen;
  b.manager().request_context(
      [&](const OmniAddress&, const Bytes& c) { context_seen = c; });
  a.start();
  b.start();
  a.manager().add_context(ContextParams{}, Bytes{0x42}, nullptr);
  bed->simulator().run_for(Duration::seconds(3));
  EXPECT_NE(a.manager().peer_table().find(b.address()), nullptr);
  EXPECT_EQ(context_seen, (Bytes{0x42}));

  // Data still flows (the TCP path rides the discovered mapping).
  Bytes data_seen;
  b.manager().request_data(
      [&](const OmniAddress&, const Bytes& d) { data_seen = d; });
  a.manager().send_data({b.address()}, Bytes{0x99}, nullptr);
  bed->simulator().run_for(Duration::seconds(1));
  EXPECT_EQ(data_seen, (Bytes{0x99}));
}

TEST_F(SecureOmniTest, UnprovisionedDeviceLearnsNothing) {
  auto& da = bed->add_device("a", {0, 0});
  auto& db = bed->add_device("b", {10, 0});
  auto& de = bed->add_device("eve", {5, 0});
  OmniNode a(da, bed->mesh(), keyed_options("tour-42"));
  OmniNode b(db, bed->mesh(), keyed_options("tour-42"));
  OmniNode eve(de, bed->mesh());  // no key
  a.start();
  b.start();
  eve.start();
  bed->simulator().run_for(Duration::seconds(5));
  // a and b see each other; eve sees neither (all their beacons are
  // sealed), though they see eve's plaintext beacons.
  EXPECT_NE(a.manager().peer_table().find(b.address()), nullptr);
  EXPECT_EQ(eve.manager().peer_table().find(a.address()), nullptr);
  EXPECT_EQ(eve.manager().peer_table().find(b.address()), nullptr);
  EXPECT_GT(eve.manager().stats().sealed_drops, 0u);
  EXPECT_NE(a.manager().peer_table().find(eve.address()), nullptr);
}

TEST_F(SecureOmniTest, WrongKeyDeviceDropsEverything) {
  auto& da = bed->add_device("a", {0, 0});
  auto& dm = bed->add_device("mallory", {5, 0});
  OmniNode a(da, bed->mesh(), keyed_options("tour-42"));
  OmniNode mallory(dm, bed->mesh(), keyed_options("tour-43"));
  a.start();
  mallory.start();
  bed->simulator().run_for(Duration::seconds(5));
  EXPECT_EQ(mallory.manager().peer_table().find(a.address()), nullptr);
  EXPECT_GT(mallory.manager().stats().sealed_drops, 0u);
}

TEST_F(SecureOmniTest, LegacyAdvertisingCannotCarrySealedBeacons) {
  // With Bluetooth 4 payloads the sealed 36-byte beacon does not fit: the
  // devices stay mutually invisible (and the failure is visible in stats).
  net::Testbed legacy(84);  // default calibration: legacy advertising
  auto& da = legacy.add_device("a", {0, 0});
  auto& db = legacy.add_device("b", {10, 0});
  OmniNodeOptions options;
  options.manager.context_key = key_bytes("tour-42");
  options.wifi_multicast = false;
  OmniNode a(da, legacy.mesh(), options);
  OmniNode b(db, legacy.mesh(), options);
  a.start();
  b.start();
  legacy.simulator().run_for(Duration::seconds(5));
  EXPECT_EQ(a.manager().peer_table().find(b.address()), nullptr);
}

}  // namespace
}  // namespace omni
