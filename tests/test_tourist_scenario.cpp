// The paper's Figure 3 smart-city tourism scenario as a verified
// integration test: a guide, landmark beacons offering a visualization
// service, and walking tourists whose devices discover, express interest,
// and receive streamed media — all via the Developer API, with the
// technology choices asserted (context over BLE, media over WiFi TCP).
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>

#include "net/testbed.h"
#include "omni/omni_node.h"
#include "omni/service.h"

namespace omni {
namespace {

class TouristScenarioTest : public ::testing::Test {
 protected:
  net::Testbed bed{808};
};

TEST_F(TouristScenarioTest, Figure3EndToEnd) {
  auto& sim = bed.simulator();

  // --- The landmark beacon with its visualization service.
  auto& landmark_dev = bed.add_device("landmark", {60, 5});
  OmniNode landmark(landmark_dev, bed.mesh());
  std::map<OmniAddress, int> streams_started;
  landmark.manager().request_context(
      [&](const OmniAddress& source, const Bytes& context) {
        if (!ServiceDescriptor::looks_like_service(context)) {
          // An interest context from a tourist.
          std::string s(context.begin(), context.end());
          if (s == "interest:viz" && streams_started[source]++ == 0) {
            Bytes viz(1'500'000, 0x56);
            landmark.manager().send_data({source}, std::move(viz), nullptr);
          }
        }
      });
  landmark.start();
  ServicePublisher landmark_service(landmark.manager());
  ServiceDescriptor descriptor;
  descriptor.service_type = service_types::kVisualization;
  descriptor.name = "townhall";
  landmark_service.publish(descriptor);

  // --- Two tourists, initially out of the landmark's BLE range.
  struct Tourist {
    net::Device* dev;
    std::unique_ptr<OmniNode> node;
    std::unique_ptr<ServiceBrowser> browser;
    std::uint64_t media = 0;
    TimePoint media_at = TimePoint::max();
  };
  Tourist tourists[2];
  for (int i = 0; i < 2; ++i) {
    tourists[i].dev =
        &bed.add_device("tourist" + std::to_string(i), {i * 3.0, 0});
    tourists[i].node = std::make_unique<OmniNode>(*tourists[i].dev,
                                                  bed.mesh());
    auto* t = &tourists[i];
    t->node->manager().request_data(
        [t, &sim](const OmniAddress&, const Bytes& data) {
          t->media += data.size();
          if (t->media_at == TimePoint::max()) t->media_at = sim.now();
        });
    t->node->start();
    t->browser = std::make_unique<ServiceBrowser>(t->node->manager(), sim);
    t->node->manager().add_context(
        ContextParams{},
        Bytes{'i', 'n', 't', 'e', 'r', 'e', 's', 't', ':', 'v', 'i', 'z'},
        nullptr);
  }

  // Before the walk: nobody sees the landmark (60 m > BLE range).
  sim.run_for(Duration::seconds(4));
  EXPECT_TRUE(tourists[0].browser->services().empty());

  // --- The tour: walk past the landmark at strolling pace.
  for (int i = 0; i < 2; ++i) {
    bed.world().move_to(tourists[i].dev->node(), {55.0 + i * 3, 0}, 1.4);
  }
  sim.run_for(Duration::seconds(60));

  // Both tourists discovered the typed service...
  for (int i = 0; i < 2; ++i) {
    auto services = tourists[i].browser->services();
    ASSERT_EQ(services.size(), 1u) << "tourist " << i;
    EXPECT_EQ(services[0].descriptor.name, "townhall");
    EXPECT_EQ(services[0].provider, landmark.address());
    // ...and received the 1.5 MB visualization, exactly once.
    EXPECT_EQ(tourists[i].media, 1'500'000u) << "tourist " << i;
  }
  EXPECT_EQ(streams_started.size(), 2u);

  // Technology assertions: the tourists heard the landmark on BLE (context)
  // and the media moved at TCP speed (a 1.5 MB transfer completes in
  // ~200 ms; multicast would need ~10 s).
  const PeerEntry* lm =
      tourists[0].node->manager().peer_table().find(landmark.address());
  ASSERT_NE(lm, nullptr);
  EXPECT_TRUE(lm->reachable_on(Technology::kBle));
  EXPECT_TRUE(lm->reachable_on(Technology::kWifiUnicast));
  EXPECT_FALSE(lm->techs.at(Technology::kWifiUnicast).requires_refresh);

  // Energy sanity: a tourist's draw stays within the idle-Omni envelope
  // (BLE scan + beacons + one short burst), far from multicast territory.
  double avg = tourists[0].dev->meter().average_ma(TimePoint::origin(),
                                                   sim.now()) -
               bed.calibration().wifi_standby_ma;
  EXPECT_LT(avg, 15.0);
  EXPECT_GT(avg, 5.0);
}

TEST_F(TouristScenarioTest, LeavingRangeLosesTheService) {
  auto& landmark_dev = bed.add_device("landmark", {0, 0});
  OmniNode landmark(landmark_dev, bed.mesh());
  landmark.start();
  ServicePublisher publisher(landmark.manager());
  ServiceDescriptor d;
  d.service_type = service_types::kVisualization;
  d.name = "fountain";
  publisher.publish(d);

  auto& tourist_dev = bed.add_device("tourist", {10, 0});
  OmniNode tourist(tourist_dev, bed.mesh());
  tourist.start();
  ServiceBrowser browser(tourist.manager(), bed.simulator());
  int lost = 0;
  browser.on_lost([&](const ServiceBrowser::Entry&) { ++lost; });

  bed.simulator().run_for(Duration::seconds(3));
  ASSERT_EQ(browser.services().size(), 1u);

  // The tourist walks on; the directory ages the service out.
  bed.world().set_position(tourist_dev.node(), {1000, 0});
  bed.simulator().run_for(Duration::seconds(20));
  EXPECT_TRUE(browser.services().empty());
  EXPECT_EQ(lost, 1);
}

}  // namespace
}  // namespace omni
