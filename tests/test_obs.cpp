// Omniscope observability layer: metrics registry sharding, flight-recorder
// ring semantics, trace-file round trips, Perfetto export structure, the
// scenario `dump trace` directive, and the energy ledger's agreement with
// the float-integral EnergyMeter it mirrors.
#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "net/testbed.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/omniscope.h"
#include "obs/perfetto.h"
#include "obs/strings.h"
#include "obs/trace_file.h"
#include "scenario/scenario.h"

namespace omni::obs {
namespace {

// --- Metrics registry ------------------------------------------------------

TEST(MetricsRegistryTest, CounterAggregatesAcrossLanesAndOwners) {
  MetricsRegistry reg;
  MetricId c = reg.counter("test.counter");
  reg.shape(/*owner_count=*/4, /*lanes=*/3);
  // Attribution is independent of the writing lane: the same owner bumped
  // from different lanes sums, which is what makes aggregates identical
  // for any shard partition.
  reg.add(0, c, /*owner=*/2, 5);
  reg.add(1, c, /*owner=*/2, 7);
  reg.add(2, c, /*owner=*/0, 1);
  reg.add(0, c, sim::kGlobalOwner, 100);
  EXPECT_EQ(reg.counter_value(c, 2), 12u);
  EXPECT_EQ(reg.counter_value(c, 0), 1u);
  EXPECT_EQ(reg.counter_value(c, sim::kGlobalOwner), 100u);
  EXPECT_EQ(reg.counter_total(c), 113u);
}

TEST(MetricsRegistryTest, RegistrationIsIdempotent) {
  MetricsRegistry reg;
  EXPECT_EQ(reg.counter("same"), reg.counter("same"));
  EXPECT_EQ(reg.metric_count(), 1u);
}

TEST(MetricsRegistryTest, GaugeLatestStampWins) {
  MetricsRegistry reg;
  MetricId g = reg.gauge("test.gauge");
  reg.shape(2, 3);
  reg.set_gauge(0, g, 1, 10, /*stamp_us=*/100);
  reg.set_gauge(2, g, 1, 99, /*stamp_us=*/200);
  reg.set_gauge(1, g, 1, 50, /*stamp_us=*/150);
  EXPECT_EQ(reg.gauge_value(g, 1), 99u);
}

TEST(MetricsRegistryTest, HistogramBucketsBySample) {
  MetricsRegistry reg;
  const std::array<double, 3> bounds = {1.0, 5.0, 10.0};
  MetricId h = reg.histogram("test.hist", bounds);
  reg.shape(2, 2);
  reg.observe(0, h, 0, 0.5);   // bucket 0 (<= 1)
  reg.observe(1, h, 0, 3.0);   // bucket 1 (<= 5)
  reg.observe(0, h, 0, 9.0);   // bucket 2 (<= 10)
  reg.observe(1, h, 0, 11.0);  // overflow bucket
  reg.observe(0, h, 1, 3.0);   // other owner
  auto counts = reg.histogram_counts(h, 0);
  ASSERT_EQ(counts.size(), 4u);
  EXPECT_EQ(counts[0], 1u);
  EXPECT_EQ(counts[1], 1u);
  EXPECT_EQ(counts[2], 1u);
  EXPECT_EQ(counts[3], 1u);
  auto total = reg.histogram_total(h);
  EXPECT_EQ(total[1], 2u);
}

TEST(MetricsRegistryTest, ShapeGrowthPreservesCells) {
  MetricsRegistry reg;
  MetricId c = reg.counter("grow");
  reg.shape(1, 2);
  reg.add(0, c, 0, 42);
  reg.shape(8, 4);  // more owners, more lanes
  EXPECT_EQ(reg.counter_value(c, 0), 42u);
  reg.add(3, c, 7, 1);
  EXPECT_EQ(reg.counter_total(c), 43u);
}

// --- Flight recorder -------------------------------------------------------

TraceRecord rec(std::int64_t t_us, std::uint32_t owner, Cat c) {
  TraceRecord r;
  r.t_us = t_us;
  r.owner = owner;
  r.cat = static_cast<std::uint16_t>(c);
  return r;
}

TEST(FlightRecorderTest, RingWrapKeepsNewestAndCountsDrops) {
  FlightRecorder fr;
  fr.configure(/*lanes=*/1, /*capacity=*/16);
  EXPECT_EQ(fr.capacity(), 16u);
  for (int i = 0; i < 20; ++i) {
    fr.write(0, rec(i, 0, Cat::kBleAdv));
  }
  EXPECT_EQ(fr.total_written(), 20u);
  EXPECT_EQ(fr.dropped(), 4u);
  std::vector<TraceRecord> out;
  fr.collect(out);
  ASSERT_EQ(out.size(), 16u);
  EXPECT_EQ(out.front().t_us, 4);  // oldest four overwritten
  EXPECT_EQ(out.back().t_us, 19);
}

TEST(FlightRecorderTest, CollectMergesLanesIntoCanonicalOrder) {
  FlightRecorder fr;
  fr.configure(2, 16);
  fr.write(0, rec(30, 1, Cat::kBleAdv));
  fr.write(1, rec(10, 2, Cat::kBleRx));
  fr.write(0, rec(20, 0, Cat::kMeshTx));
  std::vector<TraceRecord> out;
  fr.collect(out);
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0].t_us, 10);
  EXPECT_EQ(out[1].t_us, 20);
  EXPECT_EQ(out[2].t_us, 30);
}

TEST(StringTableTest, InternsDenseIdsAboveBase) {
  StringTable tab(kCatCount);
  std::uint32_t a = tab.intern("alpha");
  std::uint32_t b = tab.intern("beta");
  EXPECT_EQ(a, kCatCount);
  EXPECT_EQ(b, kCatCount + 1u);
  EXPECT_EQ(tab.intern("alpha"), a);
  EXPECT_EQ(tab.name(a), "alpha");
  EXPECT_EQ(tab.name(3), "?");  // below base
}

// --- Trace file round trip -------------------------------------------------

TEST(TraceFileTest, RoundTripPreservesEverything) {
  TraceCapture cap;
  cap.records.push_back(rec(100, 0, Cat::kBleAdv));
  cap.records.push_back(rec(200, 1, Cat::kOpData));
  cap.records.back().phase = static_cast<std::uint8_t>(Phase::kAsyncBegin);
  cap.records.back().a0 = 7;
  cap.records.back().a1 = 1234;
  cap.records.back().tech = 2;
  cap.categories.emplace_back(kCatCount, "custom.cat");
  cap.owner_names.emplace_back(0, "alice");
  cap.owner_names.emplace_back(1, "bob");
  cap.dropped = 3;

  std::stringstream ss;
  write_trace_file(ss, cap);
  TraceCapture back;
  ASSERT_TRUE(read_trace_file(ss, back));
  ASSERT_EQ(back.records.size(), 2u);
  EXPECT_EQ(back.records[1].t_us, 200);
  EXPECT_EQ(back.records[1].a1, 1234u);
  EXPECT_EQ(back.records[1].tech, 2);
  EXPECT_EQ(back.dropped, 3u);
  EXPECT_EQ(back.category_name(static_cast<std::uint16_t>(Cat::kBleAdv)),
            "ble.adv");
  EXPECT_EQ(back.category_name(kCatCount), "custom.cat");
  EXPECT_EQ(back.owner_name(0), "alice");
  EXPECT_EQ(back.owner_name(1), "bob");
  EXPECT_EQ(back.owner_name(9), "node9");  // fallback
}

TEST(TraceFileTest, RejectsCorruptHeader) {
  std::stringstream ss;
  ss << "NOTATRACE-file-at-all";
  TraceCapture cap;
  EXPECT_FALSE(read_trace_file(ss, cap));
}

// --- Testbed integration ---------------------------------------------------

TEST(OmniscopeTest, ScopeIsNullUntilEnabled) {
  net::Testbed bed(1);
  EXPECT_EQ(OMNI_SCOPE(bed.simulator()), nullptr);
  Omniscope& sc = bed.enable_observability();
  EXPECT_EQ(OMNI_SCOPE(bed.simulator()), &sc);
  EXPECT_TRUE(sc.recording());
  // Idempotent: the second call returns the same scope.
  EXPECT_EQ(&bed.enable_observability(), &sc);
}

TEST(OmniscopeTest, DevicesGetOwnerNamesEitherSideOfEnable) {
  net::Testbed bed(1);
  bed.add_device("early", {0, 0});
  Omniscope& sc = bed.enable_observability();
  bed.add_device("late", {10, 0});
  bool saw_early = false, saw_late = false;
  for (const auto& [owner, name] : sc.owner_names()) {
    if (name == "early") saw_early = true;
    if (name == "late") saw_late = true;
  }
  EXPECT_TRUE(saw_early);
  EXPECT_TRUE(saw_late);
}

TEST(OmniscopeTest, BleBeaconingProducesRecordsAndCounters) {
  net::Testbed bed(1);
  Omniscope& sc = bed.enable_observability();
  bed.add_device("a", {0, 0});
  bed.add_device("b", {5, 0});
  bed.device(1).ble().set_scanning(true);
  auto adv = bed.device(0).ble().start_advertising(Bytes{0x01, 0x02},
                                                   Duration::millis(100));
  ASSERT_TRUE(adv.is_ok());
  bed.simulator().run_for(Duration::seconds(2));

  // Advertising instants attributed to the sender, receptions to the peer.
  EXPECT_GT(sc.metrics().counter_value(sc.core().ble_adv,
                                       bed.device(0).node()), 0u);
  EXPECT_GT(sc.metrics().counter_value(sc.core().ble_rx,
                                       bed.device(1).node()), 0u);
  TraceCapture cap = capture(sc);
  EXPECT_EQ(cap.dropped, 0u);
  bool saw_adv = false;
  for (const auto& r : cap.records) {
    if (r.cat == static_cast<std::uint16_t>(Cat::kBleAdv)) saw_adv = true;
  }
  EXPECT_TRUE(saw_adv);
}

TEST(OmniscopeTest, EnergyLedgerMatchesMeterWithinOnePercent) {
  net::Testbed bed(1);
  Omniscope& sc = bed.enable_observability();
  net::Device& a = bed.add_device("a", {0, 0});
  net::Device& b = bed.add_device("b", {5, 0});
  auto adv = a.ble().start_advertising(Bytes{0x42}, Duration::millis(100));
  ASSERT_TRUE(adv.is_ok());
  b.wifi().set_powered(true);
  bed.simulator().run_for(Duration::seconds(30));
  sc.flush();  // closes open standby levels into the ledger

  const TimePoint t0 = TimePoint::origin();
  const TimePoint now = bed.simulator().now();
  for (std::size_t i = 0; i < bed.device_count(); ++i) {
    net::Device& dev = bed.device(i);
    const double meter = dev.meter().total_mAs(t0, now);
    const double ledger = sc.energy().total_mAs(dev.node());
    ASSERT_GT(meter, 0.0);
    EXPECT_NEAR(ledger, meter, meter * 0.01)
        << "node " << dev.node() << " ledger diverged from meter";
  }
  // BLE charge lands on the BLE rail, not the catch-all.
  EXPECT_GT(sc.energy().rail_mAs(a.node(), EnergyRail::kBle), 0.0);
}

TEST(OmniscopeTest, MetricsDumpIsStableAcrossCaptures) {
  net::Testbed bed(1);
  Omniscope& sc = bed.enable_observability();
  bed.add_device("a", {0, 0});
  auto adv = bed.device(0).ble().start_advertising(Bytes{0x01},
                                                   Duration::millis(200));
  ASSERT_TRUE(adv.is_ok());
  bed.simulator().run_for(Duration::seconds(1));
  std::string d1 = sc.metrics_dump();
  std::string d2 = sc.metrics_dump();
  EXPECT_EQ(d1, d2);
  EXPECT_NE(d1.find("radio.ble.adv_events"), std::string::npos);
}

// --- Perfetto export -------------------------------------------------------

TEST(PerfettoTest, ExportsLoadableTraceEventJson) {
  net::Testbed bed(1);
  Omniscope& sc = bed.enable_observability();
  bed.add_device("a", {0, 0});
  bed.add_device("b", {5, 0});
  bed.device(1).ble().set_scanning(true);
  auto adv = bed.device(0).ble().start_advertising(Bytes{0x01},
                                                   Duration::millis(100));
  ASSERT_TRUE(adv.is_ok());
  bed.simulator().run_for(Duration::seconds(1));

  TraceCapture cap = capture(sc);
  ASSERT_FALSE(cap.records.empty());
  ExportOptions opts;
  opts.annotations.push_back(AnnotationSpan{"test window", 0, 500000});
  std::ostringstream os;
  write_perfetto_json(os, cap, opts);
  const std::string json = os.str();

  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"process_name\""), std::string::npos);
  EXPECT_NE(json.find("\"thread_name\""), std::string::npos);
  EXPECT_NE(json.find("\"a\""), std::string::npos);  // node process name
  EXPECT_NE(json.find("ble.adv"), std::string::npos);
  EXPECT_NE(json.find("test window"), std::string::npos);
  // Balanced braces/brackets — cheap structural sanity for a JSON body.
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
  EXPECT_EQ(std::count(json.begin(), json.end(), '['),
            std::count(json.begin(), json.end(), ']'));
}

// --- Scenario directive ----------------------------------------------------

TEST(ScenarioObsTest, DumpTraceDirectiveWritesReadableFile) {
  const std::string path = testing::TempDir() + "/omni_obs_test.otr";
  std::remove(path.c_str());
  const std::string script =
      "seed 3\n"
      "device a 0 0\n"
      "device b 10 0\n"
      "advertise a hello interval=500ms\n"
      "run 10s\n"
      "dump trace " + path + "\n";
  std::string out = scenario::run_scenario_text(script);
  EXPECT_EQ(out.find("error"), std::string::npos) << out;

  TraceCapture cap;
  ASSERT_TRUE(read_trace_file(path, cap));
  EXPECT_FALSE(cap.records.empty());
  bool named = false;
  for (const auto& [owner, name] : cap.owner_names) {
    if (name == "a" || name == "b") named = true;
  }
  EXPECT_TRUE(named);
  std::remove(path.c_str());
}

TEST(ScenarioObsTest, DumpTraceJsonWritesPerfetto) {
  const std::string path = testing::TempDir() + "/omni_obs_test.json";
  std::remove(path.c_str());
  const std::string script =
      "seed 3\n"
      "device a 0 0\n"
      "device b 10 0\n"
      "advertise a hello interval=500ms\n"
      "blackout b at=2s until=4s radio=ble\n"
      "run 10s\n"
      "dump trace " + path + "\n";
  std::string out = scenario::run_scenario_text(script);
  EXPECT_EQ(out.find("error"), std::string::npos) << out;

  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::ostringstream os;
  os << in.rdbuf();
  EXPECT_NE(os.str().find("\"traceEvents\""), std::string::npos);
  // The scripted blackout renders as a labelled fault-window span.
  EXPECT_NE(os.str().find("blackout b"), std::string::npos);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace omni::obs
