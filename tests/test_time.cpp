#include <gtest/gtest.h>

#include "common/time.h"

namespace omni {
namespace {

TEST(DurationTest, ConstructorsAndAccessors) {
  EXPECT_EQ(Duration::micros(1500).as_micros(), 1500);
  EXPECT_EQ(Duration::millis(2).as_micros(), 2000);
  EXPECT_EQ(Duration::seconds(1.5).as_micros(), 1'500'000);
  EXPECT_DOUBLE_EQ(Duration::millis(250).as_seconds(), 0.25);
  EXPECT_DOUBLE_EQ(Duration::micros(1500).as_millis(), 1.5);
}

TEST(DurationTest, Arithmetic) {
  Duration a = Duration::millis(100);
  Duration b = Duration::millis(40);
  EXPECT_EQ((a + b).as_micros(), 140'000);
  EXPECT_EQ((a - b).as_micros(), 60'000);
  EXPECT_EQ((a * 2.5).as_micros(), 250'000);
  EXPECT_EQ((a / 4).as_micros(), 25'000);
  EXPECT_DOUBLE_EQ(a / b, 2.5);
  a += b;
  EXPECT_EQ(a.as_micros(), 140'000);
  a -= b;
  EXPECT_EQ(a.as_micros(), 100'000);
}

TEST(DurationTest, Comparisons) {
  EXPECT_LT(Duration::millis(1), Duration::millis(2));
  EXPECT_EQ(Duration::millis(1), Duration::micros(1000));
  EXPECT_TRUE(Duration::zero().is_zero());
  EXPECT_TRUE((Duration::zero() - Duration::millis(1)).is_negative());
  EXPECT_FALSE(Duration::millis(1).is_negative());
}

TEST(DurationTest, ToStringPicksUnit) {
  EXPECT_EQ(Duration::seconds(2).to_string(), "2s");
  EXPECT_EQ(Duration::millis(250).to_string(), "250ms");
  EXPECT_EQ(Duration::micros(42).to_string(), "42us");
}

TEST(TimePointTest, OriginAndArithmetic) {
  TimePoint t0 = TimePoint::origin();
  EXPECT_EQ(t0.as_micros(), 0);
  TimePoint t1 = t0 + Duration::seconds(2);
  EXPECT_EQ(t1.as_micros(), 2'000'000);
  EXPECT_EQ((t1 - t0).as_micros(), 2'000'000);
  EXPECT_EQ((t1 - Duration::millis(500)).as_micros(), 1'500'000);
  EXPECT_LT(t0, t1);
  EXPECT_EQ(TimePoint::from_micros(5).as_micros(), 5);
}

TEST(TimePointTest, MaxIsSentinel) {
  EXPECT_GT(TimePoint::max(), TimePoint::origin() + Duration::seconds(1e9));
}

}  // namespace
}  // namespace omni
