#include <gtest/gtest.h>

#include <string>

#include "common/result.h"

namespace omni {
namespace {

TEST(StatusTest, OkAndError) {
  Status ok = Status::ok();
  EXPECT_TRUE(ok.is_ok());
  EXPECT_TRUE(static_cast<bool>(ok));
  EXPECT_TRUE(ok.message().empty());

  Status err = Status::error("boom");
  EXPECT_FALSE(err.is_ok());
  EXPECT_EQ(err.message(), "boom");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.is_ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_TRUE(r.error_message().empty());
}

TEST(ResultTest, HoldsError) {
  auto r = Result<int>::error("nope");
  EXPECT_FALSE(r.is_ok());
  EXPECT_FALSE(static_cast<bool>(r));
  EXPECT_EQ(r.error_message(), "nope");
  EXPECT_EQ(r.value_or(-1), -1);
}

TEST(ResultTest, ValueOrPassesThrough) {
  Result<std::string> r = std::string("hi");
  EXPECT_EQ(r.value_or("fallback"), "hi");
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r = std::string(1000, 'x');
  std::string s = std::move(r).value();
  EXPECT_EQ(s.size(), 1000u);
}

TEST(ResultTest, WorksWithMoveOnlyTypes) {
  Result<std::unique_ptr<int>> r = std::make_unique<int>(9);
  ASSERT_TRUE(r.is_ok());
  EXPECT_EQ(*r.value(), 9);
}

}  // namespace
}  // namespace omni
