#include <gtest/gtest.h>

#include <map>
#include <random>
#include <vector>

#include "omni/peer_table.h"

namespace omni {
namespace {

TimePoint at_s(double s) {
  return TimePoint::origin() + Duration::seconds(s);
}

const OmniAddress kPeer{0x1111};
const Duration kTtl = Duration::seconds(10);

TEST(PeerTableTest, ObserveAndFind) {
  PeerTable table;
  table.observe(kPeer, Technology::kBle,
                LowLevelAddress{BleAddress::from_node(1)}, at_s(0), false);
  const PeerEntry* entry = table.find(kPeer);
  ASSERT_NE(entry, nullptr);
  EXPECT_TRUE(entry->reachable_on(Technology::kBle));
  EXPECT_FALSE(entry->reachable_on(Technology::kWifiUnicast));
  EXPECT_EQ(table.size(), 1u);
}

TEST(PeerTableTest, IgnoresInvalidInput) {
  PeerTable table;
  table.observe(OmniAddress{0}, Technology::kBle,
                LowLevelAddress{BleAddress::from_node(1)}, at_s(0), false);
  table.observe(kPeer, Technology::kBle, LowLevelAddress{}, at_s(0), false);
  EXPECT_TRUE(table.empty());
}

TEST(PeerTableTest, FreshnessOnlyUpgrades) {
  PeerTable table;
  LowLevelAddress mesh{MeshAddress::from_node(1)};
  // First heard via multicast: requires refresh.
  table.observe(kPeer, Technology::kWifiUnicast, mesh, at_s(0), true);
  EXPECT_TRUE(
      table.find(kPeer)->techs.at(Technology::kWifiUnicast).requires_refresh);
  // Then proven fresh.
  table.observe(kPeer, Technology::kWifiUnicast, mesh, at_s(1), false);
  EXPECT_FALSE(
      table.find(kPeer)->techs.at(Technology::kWifiUnicast).requires_refresh);
  // A later multicast sighting does not mark it stale again.
  table.observe(kPeer, Technology::kWifiUnicast, mesh, at_s(2), true);
  EXPECT_FALSE(
      table.find(kPeer)->techs.at(Technology::kWifiUnicast).requires_refresh);
}

TEST(PeerTableTest, MarkFresh) {
  PeerTable table;
  table.observe(kPeer, Technology::kWifiUnicast,
                LowLevelAddress{MeshAddress::from_node(1)}, at_s(0), true);
  table.mark_fresh(kPeer, Technology::kWifiUnicast);
  EXPECT_FALSE(
      table.find(kPeer)->techs.at(Technology::kWifiUnicast).requires_refresh);
  // Unknown peers/techs are a no-op.
  table.mark_fresh(OmniAddress{0x9}, Technology::kBle);
}

TEST(PeerTableTest, ReverseLookup) {
  PeerTable table;
  LowLevelAddress ble{BleAddress::from_node(3)};
  table.observe(kPeer, Technology::kBle, ble, at_s(0), false);
  EXPECT_EQ(table.find_by_low_level(Technology::kBle, ble), kPeer);
  EXPECT_EQ(table.find_by_low_level(Technology::kWifiUnicast, ble),
            std::nullopt);
  EXPECT_EQ(table.find_by_low_level(Technology::kBle,
                                    LowLevelAddress{BleAddress::from_node(4)}),
            std::nullopt);
}

TEST(PeerTableTest, PeersOnTechRespectsTtl) {
  PeerTable table;
  table.observe(kPeer, Technology::kBle,
                LowLevelAddress{BleAddress::from_node(1)}, at_s(0), false);
  EXPECT_EQ(table.peers_on(Technology::kBle, at_s(5), kTtl).size(), 1u);
  EXPECT_EQ(table.peers_on(Technology::kBle, at_s(15), kTtl).size(), 0u);
}

TEST(PeerTableTest, LowerEnergyReachability) {
  PeerTable table;
  table.observe(kPeer, Technology::kWifiMulticast,
                LowLevelAddress{MeshAddress::from_node(1)}, at_s(0), true);
  // Only on multicast: nothing cheaper reaches it.
  EXPECT_FALSE(table.reachable_on_lower_energy(kPeer,
                                               Technology::kWifiMulticast,
                                               at_s(1), kTtl));
  table.observe(kPeer, Technology::kBle,
                LowLevelAddress{BleAddress::from_node(1)}, at_s(1), false);
  EXPECT_TRUE(table.reachable_on_lower_energy(kPeer,
                                              Technology::kWifiMulticast,
                                              at_s(2), kTtl));
  // BLE itself has nothing cheaper.
  EXPECT_FALSE(table.reachable_on_lower_energy(kPeer, Technology::kBle,
                                               at_s(2), kTtl));
  // The BLE sighting ages out.
  EXPECT_FALSE(table.reachable_on_lower_energy(kPeer,
                                               Technology::kWifiMulticast,
                                               at_s(20), kTtl));
}

TEST(PeerTableTest, ExpireDropsStaleMappingsAndEmptyPeers) {
  PeerTable table;
  table.observe(kPeer, Technology::kBle,
                LowLevelAddress{BleAddress::from_node(1)}, at_s(0), false);
  table.observe(kPeer, Technology::kWifiUnicast,
                LowLevelAddress{MeshAddress::from_node(1)}, at_s(8), false);
  // At t=12 the BLE mapping (age 12) expires but WiFi (age 4) survives.
  EXPECT_EQ(table.expire(at_s(12), kTtl), 0u);
  ASSERT_NE(table.find(kPeer), nullptr);
  EXPECT_FALSE(table.find(kPeer)->reachable_on(Technology::kBle));
  EXPECT_TRUE(table.find(kPeer)->reachable_on(Technology::kWifiUnicast));
  // At t=30 everything is stale: the peer disappears.
  EXPECT_EQ(table.expire(at_s(30), kTtl), 1u);
  EXPECT_EQ(table.find(kPeer), nullptr);
}

TEST(PeerTableTest, MultiplePeers) {
  PeerTable table;
  for (std::uint64_t i = 1; i <= 5; ++i) {
    table.observe(OmniAddress{i}, Technology::kBle,
                  LowLevelAddress{BleAddress::from_node(
                      static_cast<NodeId>(i))},
                  at_s(0), false);
  }
  EXPECT_EQ(table.peers().size(), 5u);
  EXPECT_EQ(table.peers_on(Technology::kBle, at_s(1), kTtl).size(), 5u);
}

// --- Randomized cross-check against a reference implementation ---------------

/// Executable spec for PeerTable: the same observe/expire/query semantics
/// written the obvious way over ordered std::maps. The open-addressing table
/// must agree with it after every operation, for every query.
class RefTable {
 public:
  void observe(OmniAddress peer, Technology tech, const LowLevelAddress& low,
               TimePoint now, bool requires_refresh) {
    if (!peer.is_valid() || is_unset(low)) return;
    Entry& e = peers_[peer.value];
    e.last_seen = now;
    auto [it, inserted] =
        e.techs.emplace(tech, PeerTechInfo{low, now, requires_refresh});
    if (!inserted) {
      it->second.address = low;
      it->second.last_seen = now;
      if (!requires_refresh) it->second.requires_refresh = false;
    }
  }

  void observe_all(OmniAddress peer, std::span<const Sighting> sightings,
                   TimePoint now) {
    for (const Sighting& s : sightings) {
      observe(peer, s.tech, s.low, now, s.requires_refresh);
    }
  }

  void mark_fresh(OmniAddress peer, Technology tech) {
    auto it = peers_.find(peer.value);
    if (it == peers_.end()) return;
    auto tit = it->second.techs.find(tech);
    if (tit != it->second.techs.end()) tit->second.requires_refresh = false;
  }

  std::size_t expire(TimePoint now, Duration ttl) {
    std::size_t removed = 0;
    for (auto it = peers_.begin(); it != peers_.end();) {
      auto& techs = it->second.techs;
      for (auto tit = techs.begin(); tit != techs.end();) {
        if (now - tit->second.last_seen > ttl) {
          tit = techs.erase(tit);
        } else {
          ++tit;
        }
      }
      if (techs.empty()) {
        it = peers_.erase(it);
        ++removed;
      } else {
        ++it;
      }
    }
    return removed;
  }

  std::vector<OmniAddress> peers() const {
    std::vector<OmniAddress> out;
    for (const auto& [addr, e] : peers_) out.push_back(OmniAddress{addr});
    return out;  // std::map iterates in ascending key order
  }

  std::vector<OmniAddress> peers_on(Technology tech, TimePoint now,
                                    Duration ttl) const {
    std::vector<OmniAddress> out;
    for (const auto& [addr, e] : peers_) {
      auto tit = e.techs.find(tech);
      if (tit != e.techs.end() && now - tit->second.last_seen <= ttl) {
        out.push_back(OmniAddress{addr});
      }
    }
    return out;
  }

  std::optional<OmniAddress> find_by_low_level(
      Technology tech, const LowLevelAddress& low) const {
    for (const auto& [addr, e] : peers_) {  // ascending: lowest match wins
      auto tit = e.techs.find(tech);
      if (tit != e.techs.end() && tit->second.address == low) {
        return OmniAddress{addr};
      }
    }
    return std::nullopt;
  }

  bool reachable_on_lower_energy(OmniAddress peer, Technology tech,
                                 TimePoint now, Duration ttl) const {
    auto it = peers_.find(peer.value);
    if (it == peers_.end()) return false;
    for (const auto& [t, info] : it->second.techs) {
      if (static_cast<int>(t) < static_cast<int>(tech) &&
          now - info.last_seen <= ttl) {
        return true;
      }
    }
    return false;
  }

  struct Entry {
    std::map<Technology, PeerTechInfo> techs;
    TimePoint last_seen;
  };
  const std::map<std::uint64_t, Entry>& raw() const { return peers_; }

 private:
  std::map<std::uint64_t, Entry> peers_;
};

TEST(PeerTableTest, RandomizedCrossCheckAgainstReferenceMap) {
  std::mt19937_64 rng(0xbeac05ull);
  PeerTable table;
  RefTable ref;
  const Duration ttl = Duration::seconds(10);
  // A small peer pool and address pool force heavy aliasing: repeated
  // re-observation, shared low-level addresses across peers (reverse-lookup
  // tie-breaks), and expiry churn that exercises backshift deletion.
  auto rand_peer = [&] { return OmniAddress{rng() % 12 + 1}; };
  auto rand_tech = [&] { return static_cast<Technology>(rng() % 4); };
  auto rand_low = [&](Technology tech) {
    auto node = static_cast<NodeId>(rng() % 6 + 1);
    if (tech == Technology::kBle) {
      return LowLevelAddress{BleAddress::from_node(node)};
    }
    return LowLevelAddress{MeshAddress::from_node(node)};
  };

  double t = 0;
  for (int step = 0; step < 4000; ++step) {
    t += static_cast<double>(rng() % 150) / 100.0;  // 0..1.5 s per step
    TimePoint now = at_s(t);
    switch (rng() % 8) {
      case 0:
      case 1:
      case 2:
      case 3: {  // single observation (the common path)
        OmniAddress peer = rand_peer();
        Technology tech = rand_tech();
        LowLevelAddress low = rand_low(tech);
        bool refresh = rng() % 2 == 0;
        table.observe(peer, tech, low, now, refresh);
        ref.observe(peer, tech, low, now, refresh);
        break;
      }
      case 4: {  // beacon-style batched observation
        Sighting s[4];
        std::size_t n = rng() % 4 + 1;
        for (std::size_t i = 0; i < n; ++i) {
          Technology tech = rand_tech();
          s[i] = Sighting{tech, rand_low(tech), rng() % 2 == 0};
        }
        OmniAddress peer = rand_peer();
        table.observe_all(peer, std::span<const Sighting>(s, n), now);
        ref.observe_all(peer, std::span<const Sighting>(s, n), now);
        break;
      }
      case 5: {
        OmniAddress peer = rand_peer();
        Technology tech = rand_tech();
        table.mark_fresh(peer, tech);
        ref.mark_fresh(peer, tech);
        break;
      }
      default: {  // expiry sweep (double weight: deletion is the hard path)
        ASSERT_EQ(table.expire(now, ttl), ref.expire(now, ttl))
            << "step " << step;
        break;
      }
    }

    // Full-state equivalence after every operation.
    ASSERT_EQ(table.peers(), ref.peers()) << "step " << step;
    ASSERT_EQ(table.size(), ref.raw().size()) << "step " << step;
    for (const auto& [addr, re] : ref.raw()) {
      const PeerEntry* entry = table.find(OmniAddress{addr});
      ASSERT_NE(entry, nullptr) << "step " << step;
      ASSERT_EQ(entry->last_seen.as_micros(), re.last_seen.as_micros())
          << "step " << step;
      ASSERT_EQ(entry->techs.size(), re.techs.size()) << "step " << step;
      for (const auto& [tech, info] : re.techs) {
        auto tit = entry->techs.find(tech);
        ASSERT_NE(tit, entry->techs.end()) << "step " << step;
        ASSERT_TRUE(tit->second.address == info.address) << "step " << step;
        ASSERT_EQ(tit->second.last_seen.as_micros(),
                  info.last_seen.as_micros())
            << "step " << step;
        ASSERT_EQ(tit->second.requires_refresh, info.requires_refresh)
            << "step " << step;
      }
    }
    for (int ti = 0; ti < 4; ++ti) {
      Technology tech = static_cast<Technology>(ti);
      ASSERT_EQ(table.peers_on(tech, now, ttl), ref.peers_on(tech, now, ttl))
          << "step " << step;
      LowLevelAddress probe = rand_low(tech);
      ASSERT_EQ(table.find_by_low_level(tech, probe),
                ref.find_by_low_level(tech, probe))
          << "step " << step;
      for (std::uint64_t p = 1; p <= 12; ++p) {
        ASSERT_EQ(
            table.reachable_on_lower_energy(OmniAddress{p}, tech, now, ttl),
            ref.reachable_on_lower_energy(OmniAddress{p}, tech, now, ttl))
            << "step " << step;
      }
    }
  }
}

}  // namespace
}  // namespace omni
