#include <gtest/gtest.h>

#include "omni/peer_table.h"

namespace omni {
namespace {

TimePoint at_s(double s) {
  return TimePoint::origin() + Duration::seconds(s);
}

const OmniAddress kPeer{0x1111};
const Duration kTtl = Duration::seconds(10);

TEST(PeerTableTest, ObserveAndFind) {
  PeerTable table;
  table.observe(kPeer, Technology::kBle,
                LowLevelAddress{BleAddress::from_node(1)}, at_s(0), false);
  const PeerEntry* entry = table.find(kPeer);
  ASSERT_NE(entry, nullptr);
  EXPECT_TRUE(entry->reachable_on(Technology::kBle));
  EXPECT_FALSE(entry->reachable_on(Technology::kWifiUnicast));
  EXPECT_EQ(table.size(), 1u);
}

TEST(PeerTableTest, IgnoresInvalidInput) {
  PeerTable table;
  table.observe(OmniAddress{0}, Technology::kBle,
                LowLevelAddress{BleAddress::from_node(1)}, at_s(0), false);
  table.observe(kPeer, Technology::kBle, LowLevelAddress{}, at_s(0), false);
  EXPECT_TRUE(table.empty());
}

TEST(PeerTableTest, FreshnessOnlyUpgrades) {
  PeerTable table;
  LowLevelAddress mesh{MeshAddress::from_node(1)};
  // First heard via multicast: requires refresh.
  table.observe(kPeer, Technology::kWifiUnicast, mesh, at_s(0), true);
  EXPECT_TRUE(
      table.find(kPeer)->techs.at(Technology::kWifiUnicast).requires_refresh);
  // Then proven fresh.
  table.observe(kPeer, Technology::kWifiUnicast, mesh, at_s(1), false);
  EXPECT_FALSE(
      table.find(kPeer)->techs.at(Technology::kWifiUnicast).requires_refresh);
  // A later multicast sighting does not mark it stale again.
  table.observe(kPeer, Technology::kWifiUnicast, mesh, at_s(2), true);
  EXPECT_FALSE(
      table.find(kPeer)->techs.at(Technology::kWifiUnicast).requires_refresh);
}

TEST(PeerTableTest, MarkFresh) {
  PeerTable table;
  table.observe(kPeer, Technology::kWifiUnicast,
                LowLevelAddress{MeshAddress::from_node(1)}, at_s(0), true);
  table.mark_fresh(kPeer, Technology::kWifiUnicast);
  EXPECT_FALSE(
      table.find(kPeer)->techs.at(Technology::kWifiUnicast).requires_refresh);
  // Unknown peers/techs are a no-op.
  table.mark_fresh(OmniAddress{0x9}, Technology::kBle);
}

TEST(PeerTableTest, ReverseLookup) {
  PeerTable table;
  LowLevelAddress ble{BleAddress::from_node(3)};
  table.observe(kPeer, Technology::kBle, ble, at_s(0), false);
  EXPECT_EQ(table.find_by_low_level(Technology::kBle, ble), kPeer);
  EXPECT_EQ(table.find_by_low_level(Technology::kWifiUnicast, ble),
            std::nullopt);
  EXPECT_EQ(table.find_by_low_level(Technology::kBle,
                                    LowLevelAddress{BleAddress::from_node(4)}),
            std::nullopt);
}

TEST(PeerTableTest, PeersOnTechRespectsTtl) {
  PeerTable table;
  table.observe(kPeer, Technology::kBle,
                LowLevelAddress{BleAddress::from_node(1)}, at_s(0), false);
  EXPECT_EQ(table.peers_on(Technology::kBle, at_s(5), kTtl).size(), 1u);
  EXPECT_EQ(table.peers_on(Technology::kBle, at_s(15), kTtl).size(), 0u);
}

TEST(PeerTableTest, LowerEnergyReachability) {
  PeerTable table;
  table.observe(kPeer, Technology::kWifiMulticast,
                LowLevelAddress{MeshAddress::from_node(1)}, at_s(0), true);
  // Only on multicast: nothing cheaper reaches it.
  EXPECT_FALSE(table.reachable_on_lower_energy(kPeer,
                                               Technology::kWifiMulticast,
                                               at_s(1), kTtl));
  table.observe(kPeer, Technology::kBle,
                LowLevelAddress{BleAddress::from_node(1)}, at_s(1), false);
  EXPECT_TRUE(table.reachable_on_lower_energy(kPeer,
                                              Technology::kWifiMulticast,
                                              at_s(2), kTtl));
  // BLE itself has nothing cheaper.
  EXPECT_FALSE(table.reachable_on_lower_energy(kPeer, Technology::kBle,
                                               at_s(2), kTtl));
  // The BLE sighting ages out.
  EXPECT_FALSE(table.reachable_on_lower_energy(kPeer,
                                               Technology::kWifiMulticast,
                                               at_s(20), kTtl));
}

TEST(PeerTableTest, ExpireDropsStaleMappingsAndEmptyPeers) {
  PeerTable table;
  table.observe(kPeer, Technology::kBle,
                LowLevelAddress{BleAddress::from_node(1)}, at_s(0), false);
  table.observe(kPeer, Technology::kWifiUnicast,
                LowLevelAddress{MeshAddress::from_node(1)}, at_s(8), false);
  // At t=12 the BLE mapping (age 12) expires but WiFi (age 4) survives.
  EXPECT_EQ(table.expire(at_s(12), kTtl), 0u);
  ASSERT_NE(table.find(kPeer), nullptr);
  EXPECT_FALSE(table.find(kPeer)->reachable_on(Technology::kBle));
  EXPECT_TRUE(table.find(kPeer)->reachable_on(Technology::kWifiUnicast));
  // At t=30 everything is stale: the peer disappears.
  EXPECT_EQ(table.expire(at_s(30), kTtl), 1u);
  EXPECT_EQ(table.find(kPeer), nullptr);
}

TEST(PeerTableTest, MultiplePeers) {
  PeerTable table;
  for (std::uint64_t i = 1; i <= 5; ++i) {
    table.observe(OmniAddress{i}, Technology::kBle,
                  LowLevelAddress{BleAddress::from_node(
                      static_cast<NodeId>(i))},
                  at_s(0), false);
  }
  EXPECT_EQ(table.peers().size(), 5u);
  EXPECT_EQ(table.peers_on(Technology::kBle, at_s(1), kTtl).size(), 5u);
}

}  // namespace
}  // namespace omni
