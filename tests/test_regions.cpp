// Region-sharded world: boundary correctness, migration, degenerate
// single-region equivalence, and determinism of region handoffs under the
// parallel engine. The 10k churn smoke at the bottom is what `ctest -L
// scale` (the CI scale job) runs alongside `bench_scale 10000 --smoke`.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "net/testbed.h"
#include "scenario/scenario.h"
#include "sim/mobility.h"
#include "sim/world.h"

namespace omni::sim {
namespace {

// Oracle: O(n) scan with the exact distance test (matches the disc query's
// inclusive <= and ascending-id order).
std::vector<NodeId> brute_disc(const World& world, Vec2 center, double range) {
  std::vector<NodeId> out;
  for (NodeId id = 0; id < world.node_count(); ++id) {
    if (Vec2::distance(world.position(id), center) <= range)
      out.push_back(id);
  }
  return out;
}

TEST(RegionTest, BoundaryStraddlersMatchBruteForce) {
  Simulator sim;
  // 40 m cells, 2-cell regions: tile edges every 80 m, so the scatter below
  // crosses many region boundaries.
  World world(sim, /*grid_cell_m=*/40.0, /*region_cells=*/2);
  // Nodes exactly on tile edges and corners, on both sides of the origin.
  world.add_node("edge-x", {80.0, 10.0});
  world.add_node("edge-y", {10.0, 80.0});
  world.add_node("corner", {80.0, 80.0});
  world.add_node("neg-corner", {-80.0, -80.0});
  world.add_node("origin", {0.0, 0.0});
  // Pseudo-random scatter over several tiles, including negative coords.
  std::uint64_t s = 9177;
  auto next = [&s] {
    s = s * 6364136223846793005ull + 1442695040888963407ull;
    return static_cast<double>((s >> 33) % 6000) / 10.0 - 200.0;  // [-200,400)
  };
  for (int i = 0; i < 120; ++i) {
    world.add_node("n" + std::to_string(i), {next(), next()});
  }
  EXPECT_GT(world.region_count(), 4u);
  std::vector<NodeId> got;
  for (double range : {15.0, 80.0, 90.0, 250.0}) {
    for (Vec2 center : {Vec2{80, 80}, Vec2{79.9, 80.1}, Vec2{0, 0},
                        Vec2{-80, 40}, Vec2{160, 160}, Vec2{35, -70}}) {
      world.nodes_in_disc(center, range, got);
      EXPECT_EQ(got, brute_disc(world, center, range))
          << "center=(" << center.x << "," << center.y
          << ") range=" << range;
    }
  }
}

TEST(RegionTest, DegenerateSingleRegionMatchesRegioned) {
  Simulator sim_a;
  Simulator sim_b;
  World regioned(sim_a, /*grid_cell_m=*/40.0, /*region_cells=*/2);
  World degenerate(sim_b, /*grid_cell_m=*/40.0, /*region_cells=*/0);
  std::uint64_t s = 4711;
  auto next = [&s] {
    s = s * 6364136223846793005ull + 1442695040888963407ull;
    return static_cast<double>((s >> 33) % 5000) / 10.0;  // [0, 500)
  };
  for (int i = 0; i < 100; ++i) {
    Vec2 p{next(), next()};
    regioned.add_node("n" + std::to_string(i), p);
    degenerate.add_node("n" + std::to_string(i), p);
  }
  EXPECT_EQ(degenerate.region_count(), 1u);
  EXPECT_GT(regioned.region_count(), 1u);
  std::vector<NodeId> a, b;
  for (double range : {30.0, 120.0, 500.0}) {
    for (NodeId of = 0; of < regioned.node_count(); of += 5) {
      regioned.neighbors(of, range, a);
      degenerate.neighbors(of, range, b);
      EXPECT_EQ(a, b) << "of=" << of << " range=" << range;
    }
  }
}

TEST(RegionTest, SetRegionCellsRepartitionsInPlace) {
  Simulator sim;
  World world(sim, /*grid_cell_m=*/40.0);  // default 8-cell regions
  for (int i = 0; i < 60; ++i) {
    world.add_node("n" + std::to_string(i),
                   {static_cast<double>(i * 17 % 700),
                    static_cast<double>(i * 31 % 700)});
  }
  std::vector<NodeId> before, after;
  world.nodes_in_disc({350, 350}, 200.0, before);

  world.set_region_cells(0);  // collapse to the degenerate single region
  EXPECT_EQ(world.region_count(), 1u);
  world.nodes_in_disc({350, 350}, 200.0, after);
  EXPECT_EQ(before, after);

  world.set_region_cells(2);  // re-shard into 80 m tiles
  EXPECT_GT(world.region_count(), 1u);
  world.nodes_in_disc({350, 350}, 200.0, after);
  EXPECT_EQ(before, after);
}

TEST(RegionTest, TeleportMigratesAndSwapPops) {
  Simulator sim;
  World world(sim, /*grid_cell_m=*/100.0, /*region_cells=*/2);  // 200 m tiles
  NodeId a = world.add_node("a", {10, 10});
  NodeId b = world.add_node("b", {20, 20});
  NodeId c = world.add_node("c", {30, 30});
  EXPECT_EQ(world.region_of(a), world.region_of(b));
  EXPECT_EQ(world.region_of(b), world.region_of(c));
  EXPECT_EQ(world.migrations(), 0u);

  // Teleport the first-admitted node out: its hot row leaves via swap-pop,
  // which relocates another resident's slot — everything must still resolve.
  world.set_position(a, {510, 510});
  EXPECT_EQ(world.migrations(), 1u);
  EXPECT_NE(world.region_of(a), world.region_of(b));
  EXPECT_EQ(world.name(a), "a");
  EXPECT_EQ(world.name(b), "b");
  EXPECT_EQ(world.position(b), (Vec2{20, 20}));
  EXPECT_EQ(world.position(c), (Vec2{30, 30}));
  std::vector<NodeId> got;
  world.nodes_in_disc({25, 25}, 50.0, got);
  EXPECT_EQ(got, (std::vector<NodeId>{b, c}));
  world.nodes_in_disc({510, 510}, 50.0, got);
  EXPECT_EQ(got, (std::vector<NodeId>{a}));

  world.set_position(a, {15, 15});  // and home again
  EXPECT_EQ(world.migrations(), 2u);
  EXPECT_EQ(world.region_of(a), world.region_of(b));
  world.nodes_in_disc({20, 20}, 50.0, got);
  EXPECT_EQ(got, (std::vector<NodeId>{a, b, c}));
}

TEST(RegionTest, WalksMigrateAcrossSuccessiveRegions) {
  Simulator sim;
  World world(sim, /*grid_cell_m=*/100.0, /*region_cells=*/2);  // 200 m tiles
  NodeId a = world.add_node("a", {10, 0});
  NodeId w = world.add_node("watcher", {390, 0});
  std::uint32_t home = world.region_of(a);

  // Leg 1 crosses the x=200 tile edge. Residency follows the segment's
  // target, so the handoff happens when the walk starts.
  world.move_to(a, {210, 0}, 10.0);
  EXPECT_EQ(world.migrations(), 1u);
  std::uint32_t mid = world.region_of(a);
  EXPECT_NE(mid, home);

  // Mid-walk, both sides of the boundary must see the walker at its
  // interpolated position (conservative grid listing spans the segment).
  sim.run_for(Duration::seconds(10));  // a is at x=110
  std::vector<NodeId> got;
  world.nodes_in_disc({100, 0}, 20.0, got);
  EXPECT_EQ(got, (std::vector<NodeId>{a}));
  EXPECT_EQ(got, brute_disc(world, {100, 0}, 20.0));

  sim.run_for(Duration::seconds(10));  // arrival at (210, 0)

  // Leg 2 crosses the x=400 edge into a third region.
  world.move_to(a, {410, 0}, 10.0);
  EXPECT_EQ(world.migrations(), 2u);
  EXPECT_NE(world.region_of(a), mid);
  EXPECT_NE(world.region_of(a), home);
  sim.run_for(Duration::seconds(20));
  world.neighbors(w, 30.0, got);
  EXPECT_EQ(got, (std::vector<NodeId>{a}));
}

TEST(RegionTest, CrowdNodesQueryableAndWithinBudget) {
  Simulator sim;
  World world(sim, /*grid_cell_m=*/100.0, /*region_cells=*/4);
  NodeId device = world.add_node("device", {0, 0});
  for (int i = 0; i < 2000; ++i) {
    world.add_crowd_node("c" + std::to_string(i),
                         {static_cast<double>(i % 50) * 25.0,
                          static_cast<double>(i / 50) * 25.0});
  }
  // Crowd nodes are first-class query citizens...
  std::vector<NodeId> got;
  world.nodes_near(device, 60.0, got);
  EXPECT_EQ(got, brute_disc(world, {0, 0}, 60.0));
  EXPECT_GT(got.size(), 1u);
  // ...can move (and migrate) like any node...
  NodeId crowd = 1;
  world.set_position(crowd, {2000, 2000});
  EXPECT_GT(world.migrations(), 0u);
  world.nodes_in_disc({2000, 2000}, 10.0, got);
  EXPECT_EQ(got, (std::vector<NodeId>{crowd}));
  // ...and the world layer's per-node footprint stays within the documented
  // idle-node budget (~100 B target, asserted with allocator headroom).
  World::MemoryStats ms = world.memory_stats();
  EXPECT_LT(static_cast<double>(ms.total()) /
                static_cast<double>(world.node_count()),
            192.0);
  EXPECT_EQ(ms.cache_bytes > 0, true);  // the one device has a cache slot
}

TEST(RegionTest, NeighborsOutParamMatchesAllocating) {
  Simulator sim;
  World world(sim, /*grid_cell_m=*/40.0, /*region_cells=*/2);
  NodeId a = world.add_node("a", {0, 0});
  world.add_node("b", {30, 0});
  world.add_node("c", {81, 0});
  world.add_node("d", {300, 0});
  std::vector<NodeId> out;
  for (double range : {10.0, 50.0, 100.0, 1000.0}) {
    world.neighbors(a, range, out);
    EXPECT_EQ(out, world.neighbors(a, range)) << "range=" << range;
  }
}

TEST(RegionTest, NeighborhoodEpochIgnoresDistantChurn) {
  Simulator sim;
  World world(sim, /*grid_cell_m=*/100.0, /*region_cells=*/2);
  world.add_node("local-a", {0, 0});
  NodeId local_b = world.add_node("local-b", {50, 0});
  NodeId far = world.add_node("far", {5000, 5000});
  // Enough population that the disc query takes the per-region cell walk
  // (tiny worlds fall back to a full scan, whose fingerprint is global).
  for (int i = 0; i < 30; ++i) {
    world.add_node("fill" + std::to_string(i),
                   {static_cast<double>(i * 40 % 600), 300.0});
  }

  std::uint64_t e0 = world.neighborhood_epoch({0, 0}, 100.0);
  // Churn far outside the queried neighborhood: fingerprint must hold, so
  // a fan-out cache anchored here survives city-scale background motion.
  world.set_position(far, {5100, 5100});
  world.set_position(far, {5000, 5000});
  EXPECT_EQ(world.neighborhood_epoch({0, 0}, 100.0), e0);
  // A move inside the neighborhood must be visible.
  world.set_position(local_b, {60, 0});
  EXPECT_NE(world.neighborhood_epoch({0, 0}, 100.0), e0);
}

// Migration handoffs are barrier-serialized; the whole report — discovery,
// transfers, manager stats — must be byte-identical at every thread count
// while devices walk across two region boundaries (800 m tiles at the
// default grid/region size).
TEST(RegionTest, ScenarioWithMigrationsIsThreadCountInvariant) {
  const std::string script = R"(
seed 7
device walker 750 0
device anchor 760 10
device far 1690 0
advertise walker interest:map interval=500ms
advertise far interest:map interval=500ms
walk walker at=2s to=900,0 speed=25
walk walker at=10s to=1700,0 speed=50
send anchor walker at=4s bytes=20000
run 40s
report
)";
  const std::string one = scenario::run_scenario_text(script, 1);
  ASSERT_NE(one.find("walker"), std::string::npos) << one;
  EXPECT_EQ(one, scenario::run_scenario_text(script, 2));
  EXPECT_EQ(one, scenario::run_scenario_text(script, 8));
}

// 10k-node churn smoke: a small full-stack core inside a 10k crowd with
// CrowdChurn migrating nodes between regions, cross-checked against the
// brute-force oracle mid-run and at the end.
TEST(RegionTest, ChurnSmoke10k) {
  net::Testbed bed(11, radio::Calibration::defaults(), 2);
  for (int i = 0; i < 4; ++i) {
    bed.add_device("dev" + std::to_string(i),
                   {static_cast<double>(i % 2) * 50.0,
                    static_cast<double>(i / 2) * 50.0});
  }
  std::vector<NodeId> movers;
  const std::size_t side = 100;  // 100x100 crowd lattice, 25 m spacing
  for (std::size_t i = 0; i < side * side; ++i) {
    NodeId id = bed.add_crowd_node(
        "c" + std::to_string(i),
        {static_cast<double>(i % side) * 25.0,
         static_cast<double>(i / side) * 25.0});
    if (i % 4 == 0) movers.push_back(id);
  }
  sim::CrowdChurn::Options opts;
  opts.area_min = {0, 0};
  opts.area_max = {static_cast<double>(side - 1) * 25.0,
                   static_cast<double>(side - 1) * 25.0};
  opts.per_tick = 150;
  sim::CrowdChurn churn(bed.world(), std::move(movers), opts, 2026);
  churn.start();

  World& world = bed.world();
  std::vector<NodeId> got;
  for (int slice = 0; slice < 5; ++slice) {
    bed.simulator().run_for(Duration::seconds(2));
    for (Vec2 center : {Vec2{40, 40}, Vec2{800, 800}, Vec2{1237, 513}}) {
      world.nodes_in_disc(center, 120.0, got);
      ASSERT_EQ(got, brute_disc(world, center, 120.0))
          << "slice=" << slice << " center=(" << center.x << ","
          << center.y << ")";
    }
  }
  churn.stop();
  EXPECT_GT(churn.moves_started(), 1000u);
  EXPECT_GT(world.migrations(), 0u);
  EXPECT_GT(world.region_count(), 8u);
  // The crowd-dominated world must hold the idle-node memory budget.
  EXPECT_LT(static_cast<double>(world.memory_stats().total()) /
                static_cast<double>(world.node_count()),
            192.0);
}

}  // namespace
}  // namespace omni::sim
