// The scan + join + resolve ritual behind the paper's multi-second
// State-of-the-Art/Practice interaction latencies (§4.2).
#include <gtest/gtest.h>

#include "net/discovery_ritual.h"
#include "net/testbed.h"

namespace omni::net {
namespace {

class RitualTest : public ::testing::Test {
 protected:
  Testbed bed{13};
};

TEST_F(RitualTest, BasicRitualTakes2793ms) {
  auto& a = bed.add_device("a", {0, 0});
  auto& b = bed.add_device("b", {10, 0});
  a.wifi().set_powered(true);
  b.wifi().set_powered(true);
  b.wifi().join(bed.mesh(), [](Status) {});
  bed.simulator().run_for(Duration::seconds(1));

  TimePoint t0 = bed.simulator().now();
  TimePoint done;
  bool ok = false;
  run_discovery_ritual(a.wifi(), bed.mesh(), RitualOptions{false},
                       [&](Status s) {
                         ok = s.is_ok();
                         done = bed.simulator().now();
                       });
  bed.simulator().run_for(Duration::seconds(10));
  ASSERT_TRUE(ok);
  const auto& cal = bed.calibration();
  Duration expected = cal.wifi_scan_duration + cal.wifi_join_duration +
                      cal.wifi_resolve_query;
  EXPECT_EQ(done - t0, expected);
  EXPECT_NEAR((done - t0).as_millis(), 2793.0, 1.0);  // the paper's figure
}

TEST_F(RitualTest, AdvertWaitAdds436ms) {
  auto& a = bed.add_device("a", {0, 0});
  auto& b = bed.add_device("b", {10, 0});
  a.wifi().set_powered(true);
  b.wifi().set_powered(true);
  b.wifi().join(bed.mesh(), [](Status) {});
  bed.simulator().run_for(Duration::seconds(1));

  TimePoint t0 = bed.simulator().now();
  TimePoint done;
  run_discovery_ritual(a.wifi(), bed.mesh(), RitualOptions{true},
                       [&](Status) { done = bed.simulator().now(); });
  bed.simulator().run_for(Duration::seconds(10));
  EXPECT_NEAR((done - t0).as_millis(), 3229.0, 1.0);  // the paper's figure
}

TEST_F(RitualTest, FailsWhenRadioOff) {
  auto& a = bed.add_device("a", {0, 0});
  bool called = false;
  run_discovery_ritual(a.wifi(), bed.mesh(), RitualOptions{false},
                       [&](Status s) {
                         called = true;
                         EXPECT_FALSE(s.is_ok());
                       });
  EXPECT_TRUE(called);
}

TEST_F(RitualTest, FailsWhenMeshInvisible) {
  auto& a = bed.add_device("a", {0, 0});
  a.wifi().set_powered(true);  // nobody else in the mesh
  Status result = Status::ok();
  bool called = false;
  run_discovery_ritual(a.wifi(), bed.mesh(), RitualOptions{false},
                       [&](Status s) {
                         called = true;
                         result = std::move(s);
                       });
  bed.simulator().run_for(Duration::seconds(10));
  EXPECT_TRUE(called);
  EXPECT_FALSE(result.is_ok());
}

TEST_F(RitualTest, AlreadyJoinedMeshCountsAsPresent) {
  auto& a = bed.add_device("a", {0, 0});
  a.wifi().set_powered(true);
  a.wifi().join(bed.mesh(), [](Status) {});
  bed.simulator().run_for(Duration::seconds(1));
  bool ok = false;
  run_discovery_ritual(a.wifi(), bed.mesh(), RitualOptions{false},
                       [&](Status s) { ok = s.is_ok(); });
  bed.simulator().run_for(Duration::seconds(10));
  EXPECT_TRUE(ok);
}

TEST_F(RitualTest, ChargesScanAndConnectEnergy) {
  auto& a = bed.add_device("a", {0, 0});
  auto& b = bed.add_device("b", {10, 0});
  a.wifi().set_powered(true);
  b.wifi().set_powered(true);
  b.wifi().join(bed.mesh(), [](Status) {});
  bed.simulator().run_for(Duration::seconds(1));

  TimePoint t0 = bed.simulator().now();
  run_discovery_ritual(a.wifi(), bed.mesh(), RitualOptions{false},
                       [](Status) {});
  bed.simulator().run_for(Duration::seconds(5));
  const auto& cal = bed.calibration();
  double mAs = a.meter().total_mAs(t0, bed.simulator().now()) -
               cal.wifi_standby_ma *
                   (bed.simulator().now() - t0).as_seconds();
  double expected = cal.wifi_scan_ma * cal.wifi_scan_duration.as_seconds() +
                    cal.wifi_connect_ma * cal.wifi_join_duration.as_seconds();
  EXPECT_NEAR(mAs, expected, expected * 0.1);
}

}  // namespace
}  // namespace omni::net
