// The typed service-discovery layer: descriptor codec, filters, publisher
// lifecycle, and browser found/lost tracking over live Omni nodes.
#include <gtest/gtest.h>

#include "net/testbed.h"
#include "omni/omni_node.h"
#include "omni/service.h"

namespace omni {
namespace {

ServiceDescriptor printer_descriptor() {
  ServiceDescriptor d;
  d.service_type = service_types::kPrinter;
  d.name = "lobby";
  d.attributes[1] = Bytes{0x02};  // e.g. pages-per-minute class
  return d;
}

TEST(ServiceDescriptorTest, RoundTrip) {
  ServiceDescriptor d = printer_descriptor();
  Bytes wire = d.encode();
  EXPECT_TRUE(ServiceDescriptor::looks_like_service(wire));
  auto decoded = ServiceDescriptor::decode(wire);
  ASSERT_TRUE(decoded.is_ok());
  EXPECT_EQ(decoded.value(), d);
}

TEST(ServiceDescriptorTest, FitsBleBudgetWhenCompact) {
  ServiceDescriptor d;
  d.service_type = service_types::kSensor;
  d.name = "thermo";  // 6 chars
  d.attributes[1] = Bytes{0x17};
  // 2 magic + 2 type + 1 len + 6 name + (1+1+1) attr = 14 <= 21.
  EXPECT_LE(d.encoded_size(), 21u);
  EXPECT_EQ(d.encode().size(), d.encoded_size());
}

TEST(ServiceDescriptorTest, RejectsForeignContext) {
  EXPECT_FALSE(ServiceDescriptor::decode(Bytes{1, 2, 3}).is_ok());
  EXPECT_FALSE(ServiceDescriptor::decode(Bytes{}).is_ok());
  EXPECT_FALSE(ServiceDescriptor::looks_like_service(Bytes{0x53, 99}));
}

TEST(ServiceDescriptorTest, RejectsTruncation) {
  Bytes wire = printer_descriptor().encode();
  for (std::size_t cut = 3; cut < wire.size(); ++cut) {
    Bytes truncated(wire.begin(), wire.begin() + static_cast<long>(cut));
    // Some prefixes happen to parse as a shorter valid descriptor (fewer
    // attributes); what must never happen is a crash or an error-free parse
    // with trailing garbage. Just require no crash:
    (void)ServiceDescriptor::decode(truncated);
  }
  SUCCEED();
}

TEST(ServiceFilterTest, Matching) {
  ServiceDescriptor d = printer_descriptor();
  EXPECT_TRUE(ServiceFilter{}.matches(d));
  ServiceFilter by_type{service_types::kPrinter, std::nullopt};
  EXPECT_TRUE(by_type.matches(d));
  ServiceFilter wrong_type{service_types::kSensor, std::nullopt};
  EXPECT_FALSE(wrong_type.matches(d));
  ServiceFilter by_prefix{std::nullopt, std::string("lob")};
  EXPECT_TRUE(by_prefix.matches(d));
  ServiceFilter wrong_prefix{std::nullopt, std::string("kitchen")};
  EXPECT_FALSE(wrong_prefix.matches(d));
}

class ServiceLayerTest : public ::testing::Test {
 protected:
  net::Testbed bed{401};
};

TEST_F(ServiceLayerTest, PublishDiscoverWithdraw) {
  auto& dp = bed.add_device("printer", {0, 0});
  auto& dc = bed.add_device("client", {10, 0});
  OmniNode provider(dp, bed.mesh());
  OmniNode client(dc, bed.mesh());
  provider.start();
  client.start();

  ServicePublisher publisher(provider.manager());
  ServiceBrowser browser(client.manager(), bed.simulator(),
                         Duration::seconds(4));
  int found = 0, lost = 0;
  browser.on_found([&](const ServiceBrowser::Entry& e) {
    EXPECT_EQ(e.provider, provider.address());
    EXPECT_EQ(e.descriptor.name, "lobby");
    ++found;
  });
  browser.on_lost([&](const ServiceBrowser::Entry&) { ++lost; });

  publisher.publish(printer_descriptor());
  bed.simulator().run_for(Duration::seconds(3));
  EXPECT_EQ(found, 1);
  EXPECT_EQ(lost, 0);
  ASSERT_EQ(browser.services().size(), 1u);
  EXPECT_EQ(browser.providers_of(service_types::kPrinter).size(), 1u);

  publisher.withdraw();
  bed.simulator().run_for(Duration::seconds(10));
  EXPECT_EQ(lost, 1);
  EXPECT_TRUE(browser.services().empty());
}

TEST_F(ServiceLayerTest, FilterSuppressesCallbacks) {
  auto& dp = bed.add_device("printer", {0, 0});
  auto& dc = bed.add_device("client", {10, 0});
  OmniNode provider(dp, bed.mesh());
  OmniNode client(dc, bed.mesh());
  provider.start();
  client.start();

  ServicePublisher publisher(provider.manager());
  ServiceBrowser browser(client.manager(), bed.simulator());
  browser.set_filter(ServiceFilter{service_types::kSensor, std::nullopt});
  int found = 0;
  browser.on_found([&](const ServiceBrowser::Entry&) { ++found; });
  publisher.publish(printer_descriptor());
  bed.simulator().run_for(Duration::seconds(3));
  EXPECT_EQ(found, 0);
  EXPECT_TRUE(browser.services().empty());          // filtered view
  EXPECT_EQ(browser.providers_of(service_types::kPrinter).size(), 1u);
}

TEST_F(ServiceLayerTest, MultipleServicesPerProvider) {
  auto& dp = bed.add_device("hub", {0, 0});
  auto& dc = bed.add_device("client", {10, 0});
  OmniNode provider(dp, bed.mesh());
  OmniNode client(dc, bed.mesh());
  provider.start();
  client.start();

  ServicePublisher p1(provider.manager());
  ServicePublisher p2(provider.manager());
  ServiceDescriptor printer = printer_descriptor();
  ServiceDescriptor sensor;
  sensor.service_type = service_types::kSensor;
  sensor.name = "temp";
  p1.publish(printer);
  p2.publish(sensor);
  ServiceBrowser browser(client.manager(), bed.simulator());
  bed.simulator().run_for(Duration::seconds(3));
  EXPECT_EQ(browser.services().size(), 2u);
}

TEST_F(ServiceLayerTest, UpdatePropagates) {
  auto& dp = bed.add_device("printer", {0, 0});
  auto& dc = bed.add_device("client", {10, 0});
  OmniNode provider(dp, bed.mesh());
  OmniNode client(dc, bed.mesh());
  provider.start();
  client.start();

  ServicePublisher publisher(provider.manager());
  ServiceBrowser browser(client.manager(), bed.simulator());
  publisher.publish(printer_descriptor());
  bed.simulator().run_for(Duration::seconds(2));

  ServiceDescriptor updated = printer_descriptor();
  updated.attributes[1] = Bytes{0x09};
  publisher.publish(updated);
  bed.simulator().run_for(Duration::seconds(2));
  auto services = browser.services();
  ASSERT_EQ(services.size(), 1u);
  EXPECT_EQ(services[0].descriptor.attributes.at(1), (Bytes{0x09}));
}

TEST_F(ServiceLayerTest, DestroyedBrowserIsInert) {
  auto& dp = bed.add_device("printer", {0, 0});
  auto& dc = bed.add_device("client", {10, 0});
  OmniNode provider(dp, bed.mesh());
  OmniNode client(dc, bed.mesh());
  provider.start();
  client.start();
  {
    ServiceBrowser browser(client.manager(), bed.simulator());
    bed.simulator().run_for(Duration::seconds(1));
  }
  // Browser gone; context packs keep arriving and must not crash.
  ServicePublisher publisher(provider.manager());
  publisher.publish(printer_descriptor());
  bed.simulator().run_for(Duration::seconds(3));
  SUCCEED();
}

TEST_F(ServiceLayerTest, CoexistsWithRawContextApplications) {
  // An application using raw context payloads and the service layer can
  // run side by side on one manager (the multi-callback OS-service model).
  auto& dp = bed.add_device("provider", {0, 0});
  auto& dc = bed.add_device("client", {10, 0});
  OmniNode provider(dp, bed.mesh());
  OmniNode client(dc, bed.mesh());

  int raw_seen = 0;
  client.manager().request_context(
      [&](const OmniAddress&, const Bytes&) { ++raw_seen; });
  provider.start();
  client.start();
  ServiceBrowser browser(client.manager(), bed.simulator());
  ServicePublisher publisher(provider.manager());
  publisher.publish(printer_descriptor());
  provider.manager().add_context(ContextParams{}, Bytes{0x01}, nullptr);
  bed.simulator().run_for(Duration::seconds(3));
  EXPECT_EQ(browser.services().size(), 1u);
  EXPECT_GT(raw_seen, 2);  // raw app saw both context streams
}

}  // namespace
}  // namespace omni
