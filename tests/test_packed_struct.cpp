#include <gtest/gtest.h>

#include "common/rng.h"
#include "omni/packed_struct.h"

namespace omni {
namespace {

TEST(PackedStructTest, AddressBeaconIs23Bytes) {
  // Paper §3.3: 1 type byte + 8 omni_address + 14 payload (8 mesh + 6 BLE).
  AddressBeaconInfo info{MeshAddress::from_node(1), BleAddress::from_node(1)};
  PackedStruct p = PackedStruct::address_beacon(OmniAddress{0x42}, info);
  EXPECT_EQ(p.encoded_size(), 23u);
  EXPECT_EQ(p.encode().size(), 23u);
}

TEST(PackedStructTest, AddressBeaconRoundTrip) {
  AddressBeaconInfo info{MeshAddress::from_node(7), BleAddress::from_node(7)};
  PackedStruct p = PackedStruct::address_beacon(OmniAddress{0xABCD}, info);
  auto decoded = PackedStruct::decode(p.encode());
  ASSERT_TRUE(decoded.is_ok());
  EXPECT_EQ(decoded.value(), p);
  EXPECT_EQ(decoded.value().beacon.mesh, MeshAddress::from_node(7));
  EXPECT_EQ(decoded.value().beacon.ble, BleAddress::from_node(7));
}

TEST(PackedStructTest, ContextRoundTrip) {
  PackedStruct p = PackedStruct::context(OmniAddress{1}, Bytes{9, 8, 7});
  auto decoded = PackedStruct::decode(p.encode());
  ASSERT_TRUE(decoded.is_ok());
  EXPECT_EQ(decoded.value().kind, PacketKind::kContext);
  EXPECT_EQ(decoded.value().source, OmniAddress{1});
  EXPECT_EQ(decoded.value().payload, (Bytes{9, 8, 7}));
}

TEST(PackedStructTest, DataRoundTripEmptyPayload) {
  PackedStruct p = PackedStruct::data(OmniAddress{2}, {});
  auto decoded = PackedStruct::decode(p.encode());
  ASSERT_TRUE(decoded.is_ok());
  EXPECT_EQ(decoded.value().kind, PacketKind::kData);
  EXPECT_TRUE(decoded.value().payload.empty());
}

TEST(PackedStructTest, FirstByteIsKind) {
  EXPECT_EQ(PackedStruct::context(OmniAddress{1}, {}).encode()[0], 1);
  EXPECT_EQ(PackedStruct::data(OmniAddress{1}, {}).encode()[0], 2);
  EXPECT_EQ(PackedStruct::address_beacon(OmniAddress{1}, {}).encode()[0], 0);
}

TEST(PackedStructTest, RejectsUnknownKind) {
  Bytes wire = PackedStruct::context(OmniAddress{1}, Bytes{1}).encode();
  wire[0] = 9;
  EXPECT_FALSE(PackedStruct::decode(wire).is_ok());
}

TEST(PackedStructTest, RejectsZeroSourceAddress) {
  ByteWriter w;
  w.u8(1);
  w.u64(0);
  EXPECT_FALSE(PackedStruct::decode(w.bytes()).is_ok());
}

TEST(PackedStructTest, RejectsTruncatedHeader) {
  EXPECT_FALSE(PackedStruct::decode(Bytes{}).is_ok());
  EXPECT_FALSE(PackedStruct::decode(Bytes{1, 2, 3}).is_ok());
}

TEST(PackedStructTest, RejectsMalformedBeacon) {
  Bytes wire = PackedStruct::address_beacon(
                   OmniAddress{5},
                   {MeshAddress::from_node(1), BleAddress::from_node(1)})
                   .encode();
  Bytes truncated(wire.begin(), wire.end() - 3);
  EXPECT_FALSE(PackedStruct::decode(truncated).is_ok());
  Bytes padded = wire;
  padded.push_back(0);
  EXPECT_FALSE(PackedStruct::decode(padded).is_ok());
}

// Property check: arbitrary payload bytes survive a round trip unchanged.
class PackedStructPayloadSweep : public ::testing::TestWithParam<int> {};

TEST_P(PackedStructPayloadSweep, RandomPayloadRoundTrip) {
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  std::size_t size = static_cast<std::size_t>(rng.uniform_int(0, 4096));
  Bytes payload(size);
  for (auto& b : payload) {
    b = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
  }
  OmniAddress src{static_cast<std::uint64_t>(rng.uniform_int(1, INT64_MAX))};
  PackedStruct p = (GetParam() % 2 == 0)
                       ? PackedStruct::context(src, payload)
                       : PackedStruct::data(src, payload);
  auto decoded = PackedStruct::decode(p.encode());
  ASSERT_TRUE(decoded.is_ok());
  EXPECT_EQ(decoded.value(), p);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PackedStructPayloadSweep,
                         ::testing::Range(0, 25));

}  // namespace
}  // namespace omni
