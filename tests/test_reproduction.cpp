// Regression guards on the paper's headline numbers: quick versions of the
// bench scenarios asserting the calibrated reproduction stays on target.
// If a model change moves any of these, the corresponding bench (and
// EXPERIMENTS.md) needs revisiting.
#include <gtest/gtest.h>

#include <memory>

#include "baselines/directory.h"
#include "baselines/omni_stack.h"
#include "baselines/sa_node.h"
#include "net/testbed.h"
#include "omni/omni_node.h"

namespace omni {
namespace {

constexpr std::uint8_t kReq = 0x01;
constexpr std::uint8_t kResp = 0x02;

struct Interaction {
  double latency_ms = -1;
};

// One warmup + request/response interaction over a pair of stacks.
Interaction interact(net::Testbed& bed, baselines::D2dStack& initiator,
                     baselines::D2dStack& service, std::size_t resp_bytes,
                     Duration warmup) {
  service.set_data_handler(
      [&](baselines::D2dStack::PeerId from, const Bytes& d) {
        if (!d.empty() && d[0] == kReq) {
          service.send(from, Bytes(resp_bytes, kResp), nullptr);
        }
      });
  std::optional<TimePoint> done;
  initiator.set_data_handler(
      [&](baselines::D2dStack::PeerId, const Bytes& d) {
        if (!d.empty() && d[0] == kResp && !done) {
          done = bed.simulator().now();
        }
      });
  service.start();
  initiator.start();
  service.advertise(Bytes{'s'}, Duration::millis(500));
  initiator.advertise(Bytes{'i'}, Duration::millis(500));
  bed.simulator().run_for(warmup);
  TimePoint t0 = bed.simulator().now();
  initiator.send(service.self(), Bytes(30, kReq), nullptr);
  bed.simulator().run_for(Duration::seconds(30));
  Interaction r;
  if (done) r.latency_ms = (*done - t0).as_millis();
  return r;
}

TEST(ReproductionTest, OmniBleContextWifiData30B) {
  // Paper Table 4: Omni BLE/WiFi 30B latency = 16 ms (per exchange).
  net::Testbed bed(7001);
  auto& da = bed.add_device("a", {0, 0});
  auto& db = bed.add_device("b", {10, 0});
  OmniNode na(da, bed.mesh());
  OmniNode nb(db, bed.mesh());
  baselines::OmniStack a(na), b(nb);
  Interaction r = interact(bed, a, b, 30, Duration::seconds(10));
  // Request (16 ms) + response (16 ms).
  EXPECT_NEAR(r.latency_ms, 32.0, 2.0);
}

TEST(ReproductionTest, OmniBleContextWifiData25MB) {
  // Paper Table 4: Omni BLE/WiFi 25MB latency = 3112 ms.
  net::Testbed bed(7002);
  auto& da = bed.add_device("a", {0, 0});
  auto& db = bed.add_device("b", {10, 0});
  OmniNode na(da, bed.mesh());
  OmniNode nb(db, bed.mesh());
  baselines::OmniStack a(na), b(nb);
  Interaction r = interact(bed, a, b, 25'000'000, Duration::seconds(10));
  EXPECT_NEAR(r.latency_ms, 3112.0, 100.0);
}

TEST(ReproductionTest, SaBleContextWifiData30BPaysRitual) {
  // Paper Table 4: SA BLE/WiFi 30B latency = 2793 ms.
  net::Testbed bed(7003);
  auto& da = bed.add_device("a", {0, 0});
  auto& db = bed.add_device("b", {10, 0});
  baselines::Directory dir;
  baselines::SaNode a(da, bed.mesh(), dir), b(db, bed.mesh(), dir);
  Interaction r = interact(bed, a, b, 30, Duration::seconds(10));
  EXPECT_NEAR(r.latency_ms, 2793.0 + 32.0, 60.0);
}

TEST(ReproductionTest, OmniBleBleInteractionIs82ms) {
  // Paper Table 4: the BLE/BLE service latency, 82 ms for every approach.
  net::Testbed bed(7004);
  auto& da = bed.add_device("a", {0, 0});
  auto& db = bed.add_device("b", {10, 0});
  OmniNodeOptions options;
  options.wifi_unicast = false;  // BLE-only configuration
  OmniNode na(da, bed.mesh(), options);
  OmniNode nb(db, bed.mesh(), options);
  baselines::OmniStack a(na), b(nb);
  Interaction r = interact(bed, a, b, 30, Duration::seconds(10));
  EXPECT_NEAR(r.latency_ms, 82.0, 2.0);
}

TEST(ReproductionTest, OmniIdleEnergyNearPaper) {
  // Paper Table 4: Omni BLE/BLE energy = 7.52 mA relative to WiFi-standby.
  net::Testbed bed(7005);
  auto& da = bed.add_device("a", {0, 0});
  auto& db = bed.add_device("b", {10, 0});
  OmniNodeOptions options;
  options.wifi_unicast = false;
  OmniNode na(da, bed.mesh(), options);
  OmniNode nb(db, bed.mesh(), options);
  na.start();
  nb.start();
  bed.simulator().run_for(Duration::seconds(60));
  double rel = da.meter().average_ma(TimePoint::origin(),
                                     bed.simulator().now()) -
               bed.calibration().wifi_standby_ma;
  EXPECT_NEAR(rel, 7.52, 0.8);
}

TEST(ReproductionTest, WifiRitualLatencies) {
  // The two calibrated discovery rituals: 2793 ms and 3229 ms (paper §4.2).
  const auto& cal = radio::Calibration::defaults();
  double basic = (cal.wifi_scan_duration + cal.wifi_join_duration +
                  cal.wifi_resolve_query)
                     .as_millis();
  double full = basic + cal.wifi_advert_wait.as_millis();
  EXPECT_DOUBLE_EQ(basic, 2793.0);
  EXPECT_DOUBLE_EQ(full, 3229.0);
}

TEST(ReproductionTest, TcpReferencePoints) {
  // 16 ms setup; 25 MB in ~3.086 s at 8.1 MB/s.
  const auto& cal = radio::Calibration::defaults();
  EXPECT_DOUBLE_EQ(
      (cal.wifi_rtt * 3.0 + cal.tcp_setup_overhead).as_millis(), 16.0);
  EXPECT_NEAR(25e6 / cal.wifi_capacity_Bps, 3.086, 0.01);
}

TEST(ReproductionTest, MulticastReferencePoints) {
  const auto& cal = radio::Calibration::defaults();
  // Bulk goodput ~142 KB/s (the slow SP data path).
  double frag_occ = cal.wifi_multicast_mtu * 8.0 /
                        cal.wifi_multicast_base_rate_bps +
                    cal.wifi_multicast_overhead.as_seconds();
  EXPECT_NEAR(cal.wifi_multicast_mtu / frag_occ, 142e3, 5e3);
  // Three 500 ms beacon streams cost ~8.4% of TCP airtime (Table 5's
  // ~8.6% effect).
  EXPECT_NEAR(3 * cal.wifi_multicast_beacon_occupancy.as_seconds() / 0.5,
              0.084, 0.001);
}

}  // namespace
}  // namespace omni
