#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "sim/trace.h"

namespace omni::sim {
namespace {

TimePoint at_s(double s) {
  return TimePoint::origin() + Duration::seconds(s);
}

TEST(TraceRecorderTest, RecordAndQuery) {
  TraceRecorder trace;
  trace.record(at_s(1), "chunk", "infra", 3);
  trace.record(at_s(2), "chunk", "d2d", 5);
  trace.record(at_s(3), "complete", "", 0);
  EXPECT_EQ(trace.events().size(), 3u);
  EXPECT_EQ(trace.count("chunk"), 2u);
  EXPECT_EQ(trace.count("missing"), 0u);
  EXPECT_DOUBLE_EQ(trace.sum("chunk"), 8.0);
}

TEST(TraceRecorderTest, FirstAndLastTimes) {
  TraceRecorder trace;
  trace.record(at_s(1), "x", "a");
  trace.record(at_s(2), "x", "b");
  trace.record(at_s(3), "x", "a");
  EXPECT_EQ(trace.first_time("x"), at_s(1));
  EXPECT_EQ(trace.last_time("x"), at_s(3));
  EXPECT_EQ(trace.first_time("x", "b"), at_s(2));
  EXPECT_EQ(trace.last_time("x", "b"), at_s(2));
  EXPECT_EQ(trace.first_time("nope"), TimePoint::max());
}

TEST(TraceRecorderTest, CategoryFilter) {
  TraceRecorder trace;
  trace.record(at_s(1), "a", "1");
  trace.record(at_s(2), "b", "2");
  trace.record(at_s(3), "a", "3");
  auto in_a = trace.in_category("a");
  ASSERT_EQ(in_a.size(), 2u);
  EXPECT_EQ(in_a[0].label, "1");
  EXPECT_EQ(in_a[1].label, "3");
}

TEST(TraceRecorderTest, CsvOutput) {
  TraceRecorder trace;
  trace.record(at_s(1.5), "cat", "lbl", 2.5);
  std::ostringstream os;
  trace.write_csv(os);
  EXPECT_EQ(os.str(), "time_s,category,label,value\n1.5,cat,lbl,2.5\n");
}

TEST(TraceRecorderTest, CsvQuotesSpecialCharacters) {
  TraceRecorder trace;
  trace.record(at_s(1), "cat,with,commas", "label \"quoted\"", 1);
  trace.record(at_s(2), "plain", "multi\nline", 2);
  std::ostringstream os;
  trace.write_csv(os);
  EXPECT_EQ(os.str(),
            "time_s,category,label,value\n"
            "1,\"cat,with,commas\",\"label \"\"quoted\"\"\",1\n"
            "2,plain,\"multi\nline\",2\n");
}

// Minimal RFC 4180 row reader, enough to prove write_csv output survives a
// parse: split on commas outside quotes, undouble embedded quotes.
std::vector<std::string> parse_csv_row(const std::string& line) {
  std::vector<std::string> fields;
  std::string field;
  bool quoted = false;
  for (std::size_t i = 0; i < line.size(); ++i) {
    char c = line[i];
    if (quoted) {
      if (c == '"' && i + 1 < line.size() && line[i + 1] == '"') {
        field += '"';
        ++i;
      } else if (c == '"') {
        quoted = false;
      } else {
        field += c;
      }
    } else if (c == '"') {
      quoted = true;
    } else if (c == ',') {
      fields.push_back(std::move(field));
      field.clear();
    } else {
      field += c;
    }
  }
  fields.push_back(std::move(field));
  return fields;
}

TEST(TraceRecorderTest, CsvRoundTripsThroughParser) {
  TraceRecorder trace;
  trace.record(at_s(1), "a,b", "say \"hi\"", 3.5);
  std::ostringstream os;
  trace.write_csv(os);
  std::istringstream is(os.str());
  std::string header, row;
  std::getline(is, header);
  std::getline(is, row);
  auto fields = parse_csv_row(row);
  ASSERT_EQ(fields.size(), 4u);
  EXPECT_EQ(fields[1], "a,b");
  EXPECT_EQ(fields[2], "say \"hi\"");
  EXPECT_EQ(fields[3], "3.5");
}

TEST(TraceRecorderTest, Clear) {
  TraceRecorder trace;
  trace.record(at_s(1), "a", "");
  trace.clear();
  EXPECT_TRUE(trace.events().empty());
}

}  // namespace
}  // namespace omni::sim
