// Snapshot/resume engine (sim/snapshot.h, net/testbed.h snapshot surface).
//
// Coverage:
//   * byte codec and snapshot container round trips;
//   * hardened loading — truncation, bad magic, unknown version, bit flips
//     in the table and in every section payload, trailing garbage — all
//     fail with a diagnostic naming the damage, never UB;
//   * canonical cross-thread capture: the same scenario checkpointed at
//     1/2/8 threads produces byte-identical state sections (the manifest
//     records the capturing thread count and is excluded);
//   * replay-anchored resume: a run checkpointed at one thread count
//     resumes (replays + byte-verifies) at another, through the scenario
//     DSL `checkpoint every` / `snapshot` directives;
//   * divergence detection: resuming a snapshot against a *different*
//     script or seed is refused;
//   * OMNI_ASSERT crash capture: an armed testbed leaves a crash dump
//     (reason + state snapshot) behind on assertion failure.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/assert.h"
#include "net/testbed.h"
#include "scenario/scenario.h"
#include "sim/snapshot.h"

namespace omni::sim {
namespace {

// --- Codec -------------------------------------------------------------------

TEST(SnapshotCodec, WriterReaderRoundTrip) {
  ByteWriter w;
  w.u8(0xAB);
  w.u32(0xDEADBEEF);
  w.u64(0x0123456789ABCDEFull);
  w.f64(-1234.5625);
  w.var(0);
  w.var(127);
  w.var(128);
  w.var(0xFFFFFFFFFFFFFFFFull);
  w.svar(0);
  w.svar(-1);
  w.svar(1);
  w.svar(-9'000'000'000'000LL);
  w.str("hello");
  w.str("");

  ByteReader r(w.bytes());
  EXPECT_EQ(r.u8(), 0xAB);
  EXPECT_EQ(r.u32(), 0xDEADBEEFu);
  EXPECT_EQ(r.u64(), 0x0123456789ABCDEFull);
  EXPECT_EQ(r.f64(), -1234.5625);
  EXPECT_EQ(r.var(), 0u);
  EXPECT_EQ(r.var(), 127u);
  EXPECT_EQ(r.var(), 128u);
  EXPECT_EQ(r.var(), 0xFFFFFFFFFFFFFFFFull);
  EXPECT_EQ(r.svar(), 0);
  EXPECT_EQ(r.svar(), -1);
  EXPECT_EQ(r.svar(), 1);
  EXPECT_EQ(r.svar(), -9'000'000'000'000LL);
  EXPECT_EQ(r.str(), "hello");
  EXPECT_EQ(r.str(), "");
  EXPECT_TRUE(r.done());
}

TEST(SnapshotCodec, ReaderOverrunFailsSoft) {
  ByteWriter w;
  w.u32(7);
  ByteReader r(w.bytes());
  EXPECT_EQ(r.u32(), 7u);
  EXPECT_EQ(r.u64(), 0u);  // overrun: zero, not UB
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.str(), "");  // stays failed
}

// --- Container / file hardening ---------------------------------------------

Snapshot make_sample() {
  Snapshot snap;
  SnapshotManifest m;
  m.seed = 42;
  m.at = TimePoint::from_micros(1'500'000);
  m.threads = 2;
  m.executed_events = 123;
  m.node_count = 3;
  m.device_count = 3;
  m.label = "sample";
  m.scenario_hash = 0x1234;
  write_manifest(m, snap);
  ByteWriter events;
  for (int i = 0; i < 32; ++i) events.var(static_cast<std::uint64_t>(i * 7));
  snap.section(kSecEvents).bytes = events.take();
  ByteWriter world;
  world.str("world-state");
  snap.section(kSecWorld).bytes = world.take();
  return snap;
}

TEST(SnapshotFile, SerializeParseRoundTrip) {
  const Snapshot snap = make_sample();
  const std::vector<std::uint8_t> bytes = serialize_snapshot(snap);
  auto parsed = parse_snapshot(bytes);
  ASSERT_TRUE(parsed.is_ok()) << parsed.error_message();
  EXPECT_EQ(diff_snapshots(snap, parsed.value()), "");
  EXPECT_EQ(snapshot_digest(snap), snapshot_digest(parsed.value()));
}

TEST(SnapshotFile, UnknownSectionsSurviveRoundTrip) {
  Snapshot snap = make_sample();
  snap.section(900).bytes = {1, 2, 3};  // id no current reader knows
  auto parsed = parse_snapshot(serialize_snapshot(snap));
  ASSERT_TRUE(parsed.is_ok());
  const SnapshotSection* sec = parsed.value().find(900);
  ASSERT_NE(sec, nullptr);
  EXPECT_EQ(sec->bytes, (std::vector<std::uint8_t>{1, 2, 3}));
}

TEST(SnapshotFile, RejectsBadMagic) {
  std::vector<std::uint8_t> bytes = serialize_snapshot(make_sample());
  bytes[0] = 'X';
  auto parsed = parse_snapshot(bytes);
  ASSERT_FALSE(parsed.is_ok());
  EXPECT_NE(parsed.error_message().find("magic"), std::string::npos)
      << parsed.error_message();
}

TEST(SnapshotFile, RejectsUnknownVersion) {
  std::vector<std::uint8_t> bytes = serialize_snapshot(make_sample());
  bytes[4] = 99;  // version field follows the 4-byte magic
  auto parsed = parse_snapshot(bytes);
  ASSERT_FALSE(parsed.is_ok());
  EXPECT_NE(parsed.error_message().find("version"), std::string::npos)
      << parsed.error_message();
}

TEST(SnapshotFile, RejectsEveryTruncation) {
  const std::vector<std::uint8_t> bytes = serialize_snapshot(make_sample());
  // Every proper prefix must fail cleanly (truncated header, table,
  // payload, or trailer).
  for (std::size_t n = 0; n < bytes.size(); n += 7) {
    auto parsed = parse_snapshot(
        std::span<const std::uint8_t>(bytes.data(), n));
    EXPECT_FALSE(parsed.is_ok()) << "prefix of " << n << " bytes parsed";
  }
}

TEST(SnapshotFile, RejectsEveryBitFlip) {
  const std::vector<std::uint8_t> good = serialize_snapshot(make_sample());
  // Flip one bit in every byte: header, table, payloads, trailer. All must
  // be caught by magic/version checks or a checksum.
  int rejected = 0;
  for (std::size_t i = 0; i < good.size(); ++i) {
    std::vector<std::uint8_t> bad = good;
    bad[i] ^= 0x10;
    if (!parse_snapshot(bad).is_ok()) ++rejected;
  }
  EXPECT_EQ(rejected, static_cast<int>(good.size()));
}

TEST(SnapshotFile, RejectsTrailingGarbage) {
  std::vector<std::uint8_t> bytes = serialize_snapshot(make_sample());
  bytes.push_back(0x00);
  EXPECT_FALSE(parse_snapshot(bytes).is_ok());
}

TEST(SnapshotFile, CorruptSectionNamesTheSection) {
  Snapshot snap = make_sample();
  std::vector<std::uint8_t> bytes = serialize_snapshot(snap);
  // Corrupt the last payload byte of the file body (inside the 'world'
  // section payload, before the 8-byte trailer).
  bytes[bytes.size() - 9] ^= 0xFF;
  auto parsed = parse_snapshot(bytes);
  ASSERT_FALSE(parsed.is_ok());
  EXPECT_NE(parsed.error_message().find("world"), std::string::npos)
      << parsed.error_message();
}

TEST(SnapshotFile, MissingFileFailsWithDiagnostic) {
  auto parsed = read_snapshot_file("/nonexistent/dir/x.osnap");
  ASSERT_FALSE(parsed.is_ok());
  EXPECT_FALSE(parsed.error_message().empty());
}

TEST(SnapshotFile, DiffReportsDivergentSection) {
  Snapshot a = make_sample();
  Snapshot b = make_sample();
  b.section(kSecEvents).bytes[3] ^= 0x01;
  const std::string diff = diff_snapshots(a, b);
  EXPECT_NE(diff.find("events"), std::string::npos) << diff;
  EXPECT_EQ(diff_snapshots(a, a), "");
}

// --- Cross-thread canonical capture + resume via the scenario DSL ------------

class TempDir {
 public:
  explicit TempDir(const std::string& tag) {
    dir_ = std::filesystem::temp_directory_path() /
           ("omni_snapshot_" + tag + "_" + std::to_string(::getpid()));
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
  }
  ~TempDir() {
    std::error_code ec;
    std::filesystem::remove_all(dir_, ec);
  }
  std::string path(const std::string& name) const {
    return (dir_ / name).string();
  }

 private:
  std::filesystem::path dir_;
};

std::string snapshot_scenario(const std::string& snap_path,
                              const std::string& ckpt_dir) {
  // Mobility, engagement, a mid-run data transfer, and a crash/restart all
  // live inside the captured interval, so the snapshot covers every
  // serialized subsystem in a nontrivial state.
  std::ostringstream os;
  os << "seed 1234\n"
        "device walker 0 0 ble wifi\n"
        "device post 25 0 ble wifi multicast\n"
        "device far 120 0 ble wifi\n"
        "advertise walker interest:snapshot\n"
        "service post 3 post-office\n"
        "walk walker at=1s to=60,0 speed=2.5\n"
        "send post walker at=4s bytes=40000\n"
        "crash far at=2s restart=5s\n"
     << "checkpoint every 2s " << ckpt_dir << "\n"
     << "run 7s\n"
     << "snapshot " << snap_path << "\n";
  return os.str();
}

Status run_text(const std::string& text, unsigned threads,
                const std::string& resume = {}) {
  auto parsed = scenario::Scenario::parse(text);
  EXPECT_TRUE(parsed.is_ok()) << parsed.error_message();
  std::ostringstream sink;
  return parsed.value()->run(sink, threads, /*observe=*/false, resume);
}

TEST(SnapshotResume, CrossThreadCapturesAreByteIdentical) {
  TempDir tmp("xthread");
  std::vector<Snapshot> snaps;
  for (unsigned threads : {1u, 2u, 8u}) {
    const std::string path =
        tmp.path("t" + std::to_string(threads) + ".osnap");
    const std::string ckpt = tmp.path("ck" + std::to_string(threads));
    Status s = run_text(snapshot_scenario(path, ckpt), threads);
    ASSERT_TRUE(s.is_ok()) << s.message();
    auto snap = read_snapshot_file(path);
    ASSERT_TRUE(snap.is_ok()) << snap.error_message();
    snaps.push_back(std::move(snap).value());
  }
  // State sections are canonical: byte-identical at any thread count. Only
  // the manifest (which records the capturing thread count) differs.
  EXPECT_EQ(diff_snapshots(snaps[0], snaps[1], /*skip_manifest=*/true), "");
  EXPECT_EQ(diff_snapshots(snaps[0], snaps[2], /*skip_manifest=*/true), "");
  // And the checkpoint files along the way match too.
  for (const char* name : {"ckpt_000002000000.osnap",
                           "ckpt_000004000000.osnap",
                           "ckpt_000006000000.osnap"}) {
    auto a = read_snapshot_file(tmp.path("ck1") + "/" + name);
    auto b = read_snapshot_file(tmp.path("ck8") + "/" + name);
    ASSERT_TRUE(a.is_ok() && b.is_ok()) << name;
    EXPECT_EQ(diff_snapshots(a.value(), b.value(), true), "") << name;
  }
}

TEST(SnapshotResume, ResumeVerifiesAcrossThreadCounts) {
  TempDir tmp("resume");
  const std::string path = tmp.path("end.osnap");
  const std::string ckpt = tmp.path("ck");
  const std::string text = snapshot_scenario(path, ckpt);
  ASSERT_TRUE(run_text(text, 1).is_ok());

  // Resume the final snapshot and a mid-run checkpoint, each at a different
  // thread count than the capture.
  EXPECT_TRUE(run_text(text, 8, path).is_ok());
  EXPECT_TRUE(run_text(text, 2, ckpt + "/ckpt_000004000000.osnap").is_ok());
}

TEST(SnapshotResume, RefusesForeignSnapshot) {
  TempDir tmp("foreign");
  const std::string path = tmp.path("a.osnap");
  const std::string text = snapshot_scenario(path, tmp.path("ck"));
  ASSERT_TRUE(run_text(text, 1).is_ok());

  // Different seed -> refused before replay.
  std::string other = text;
  other.replace(other.find("1234"), 4, "4321");
  Status s = run_text(other, 1, path);
  ASSERT_FALSE(s.is_ok());
  EXPECT_NE(s.message().find("seed"), std::string::npos) << s.message();

  // Same seed, different script -> fingerprint mismatch.
  std::string edited = text;
  edited.replace(edited.find("bytes=40000"), 11, "bytes=40001");
  s = run_text(edited, 1, path);
  ASSERT_FALSE(s.is_ok());
  EXPECT_NE(s.message().find("fingerprint"), std::string::npos)
      << s.message();
}

TEST(SnapshotResume, TamperedCheckpointFailsLoudly) {
  TempDir tmp("tamper");
  const std::string path = tmp.path("a.osnap");
  const std::string text = snapshot_scenario(path, tmp.path("ck"));
  ASSERT_TRUE(run_text(text, 1).is_ok());

  // Flip one payload byte on disk: resume must fail at load time with a
  // checksum diagnostic, not diverge silently.
  std::vector<char> bytes;
  {
    std::ifstream in(path, std::ios::binary);
    bytes.assign(std::istreambuf_iterator<char>(in),
                 std::istreambuf_iterator<char>());
  }
  bytes[bytes.size() / 2] ^= 0x04;
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }
  Status s = run_text(text, 1, path);
  ASSERT_FALSE(s.is_ok());
  EXPECT_NE(s.message().find("corrupt"), std::string::npos) << s.message();
}

// The golden tourist scenario (the paper's §2.2 walkthrough) checkpoints
// every 30 s of its 120 s tour; a resume at a different thread count from a
// mid-tour checkpoint must byte-verify the replayed state AND produce the
// exact report stream of the straight run.
TEST(SnapshotResume, GoldenTouristScenarioResumes) {
  TempDir tmp("tourist");
  std::ifstream in(OMNI_REPO_DIR "/examples/scenarios/tourist.scn");
  ASSERT_TRUE(in.good());
  std::ostringstream src;
  src << in.rdbuf();
  const std::string text =
      src.str() + "\ncheckpoint every 30s " + tmp.path("ck") + "\n";

  auto run = [&text](unsigned threads, const std::string& resume) {
    auto parsed = scenario::Scenario::parse(text);
    EXPECT_TRUE(parsed.is_ok()) << parsed.error_message();
    std::ostringstream sink;
    Status s = parsed.value()->run(sink, threads, /*observe=*/false, resume);
    return std::make_pair(s, sink.str());
  };

  auto straight = run(1, "");
  ASSERT_TRUE(straight.first.is_ok()) << straight.first.message();
  auto resumed = run(8, tmp.path("ck") + "/ckpt_000060000000.osnap");
  ASSERT_TRUE(resumed.first.is_ok()) << resumed.first.message();
  EXPECT_NE(resumed.second.find("resume: verified byte-identical"),
            std::string::npos)
      << resumed.second;

  // Strip the resume banner lines; everything else — reports, peer counts,
  // energy averages — must match the straight run byte for byte.
  std::string filtered;
  std::istringstream lines(resumed.second);
  for (std::string line; std::getline(lines, line);) {
    if (line.rfind("resume:", 0) == 0) continue;
    filtered += line;
    filtered += '\n';
  }
  EXPECT_EQ(filtered, straight.second);
}

// --- Crash capture -----------------------------------------------------------

using SnapshotCrashDeathTest = ::testing::Test;

TEST(SnapshotCrashDeathTest, AssertFailureLeavesDump) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  // The threadsafe death-test child re-executes this test body, so the dump
  // directory must be deterministic (no pid) for the parent to find it.
  const std::string dir = (std::filesystem::temp_directory_path() /
                           "omni_snapshot_crash_dump")
                              .string();
  std::filesystem::remove_all(dir);

  EXPECT_DEATH(
      {
        net::Testbed bed(7);
        bed.add_device("a", {0, 0});
        bed.arm_crash_dumps(dir);
        bed.simulator().run_for(Duration::millis(10));
        // Out-of-range node id trips OMNI_ASSERTF on the position query.
        bed.world().position(NodeId{999});
      },
      "unknown node id 999");

  // The child's crash hook must have written the reason and — since the
  // failure came from a quiescent context — the full state snapshot.
  std::ifstream reason(dir + "/crash_reason.txt");
  ASSERT_TRUE(reason.good()) << "crash_reason.txt missing";
  std::string line;
  std::getline(reason, line);
  EXPECT_NE(line.find("unknown node id 999"), std::string::npos) << line;

  auto snap = read_snapshot_file(dir + "/crash.osnap");
  ASSERT_TRUE(snap.is_ok()) << snap.error_message();
  auto manifest = read_manifest(snap.value());
  ASSERT_TRUE(manifest.is_ok());
  EXPECT_EQ(manifest.value().label, "crash");
  EXPECT_EQ(manifest.value().seed, 7u);
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace omni::sim
