// Parallel engine determinism: the sharded simulator must produce
// bit-identical results at every thread count.
//
// Two oracles:
//   * The Figure 3 tourist scenario — the repo's golden trace — run at
//     1/2/8 threads. threads=1 is the sequential engine (single shard
//     executed inline on the driving thread), so equality across the sweep
//     also proves the parallel runs match the sequential one.
//   * A churn stress: a 5x5 grid of full-stack nodes beaconing and
//     engaging while a rolling subset stops and restarts mid-run. Churn
//     exercises the barrier-deferred scan-state snapshot, owner teardown,
//     and mailbox merge under maximum contention; the digest folds every
//     node's peer count and context receptions plus the global event and
//     delivery totals, so any divergence in event order or RNG draw order
//     across thread counts fails the comparison.
#include <gtest/gtest.h>

#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "net/testbed.h"
#include "obs/omniscope.h"
#include "obs/trace_file.h"
#include "omni/omni_node.h"
#include "scenario/scenario.h"

namespace omni {
namespace {

constexpr const char* kScenarioPath =
    OMNI_REPO_DIR "/examples/scenarios/tourist.scn";

std::string read_scenario() {
  std::ifstream in(kScenarioPath);
  EXPECT_TRUE(in.good()) << "cannot open " << kScenarioPath;
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

TEST(ParallelEngineTest, TouristScenarioBitIdenticalAcrossThreadCounts) {
  std::string script = read_scenario();
  std::string sequential = scenario::run_scenario_text(script, 1);
  EXPECT_FALSE(sequential.empty());
  EXPECT_EQ(sequential, scenario::run_scenario_text(script, 2));
  EXPECT_EQ(sequential, scenario::run_scenario_text(script, 8));
}

/// Run the churn stress at `threads` and digest the observable outcome.
std::string churn_digest(unsigned threads) {
  constexpr std::size_t kSide = 5;
  constexpr std::size_t kNodes = kSide * kSide;
  constexpr double kSpacingM = 25.0;

  net::Testbed bed(7, radio::Calibration::defaults(), threads);
  // Observability rides along: the metric aggregates and the canonical
  // record multiset must be as partition-invariant as the simulation
  // itself. The ring is sized so nothing drops (drops are per-lane and
  // would legitimately differ across partitions).
  obs::Omniscope& scope = bed.enable_observability(/*ring_capacity=*/1 << 20);
  std::vector<std::unique_ptr<OmniNode>> nodes;
  std::vector<std::uint64_t> rx_ctx(kNodes, 0);
  nodes.reserve(kNodes);
  for (std::size_t i = 0; i < kNodes; ++i) {
    double x = static_cast<double>(i % kSide) * kSpacingM;
    double y = static_cast<double>(i / kSide) * kSpacingM;
    net::Device& dev = bed.add_device("n" + std::to_string(i), {x, y});
    nodes.push_back(std::make_unique<OmniNode>(dev, bed.mesh()));
    nodes.back()->manager().request_context(
        [&rx_ctx, i](const OmniAddress&, const Bytes&) { ++rx_ctx[i]; });
  }
  for (auto& node : nodes) {
    node->start();
    node->manager().add_context(ContextParams{}, Bytes{0x51}, nullptr);
  }

  // Rolling churn: every 2 s one node drops; it rejoins 3 s later. Start
  // and stop mutate radios and manager state, so they run as global
  // (barrier-serialized) events — the same path scenario scripts use.
  sim::Simulator& sim = bed.simulator();
  for (std::size_t i = 0; i < kNodes; i += 3) {
    OmniNode* node = nodes[i].get();
    sim.after_global(Duration::seconds(2.0 + static_cast<double>(i) * 0.4),
                     [node] { node->stop(); });
    sim.after_global(Duration::seconds(5.0 + static_cast<double>(i) * 0.4),
                     [node] { node->start(); });
  }

  sim.run_for(Duration::seconds(30));

  std::ostringstream os;
  for (std::size_t i = 0; i < kNodes; ++i) {
    os << i << ":peers=" << nodes[i]->manager().peer_table().size()
       << ",ctx=" << rx_ctx[i] << "\n";
  }
  os << "events=" << sim.executed_events()
     << " delivered=" << bed.ble_medium().delivered_count()
     << " windows=" << sim.windows_run()
     << " posts=" << sim.mailbox_posts() << "\n";

  obs::TraceCapture cap = obs::capture(scope);
  EXPECT_EQ(cap.dropped, 0u) << "ring too small for a lossless capture";
  std::uint64_t h = 1469598103934665603ull;
  auto mix = [&h](std::uint64_t v) {
    h ^= v;
    h *= 1099511628211ull;
  };
  for (const obs::TraceRecord& r : cap.records) {
    mix(static_cast<std::uint64_t>(r.t_us));
    mix(r.owner);
    mix(r.cat);
    mix(r.phase);
    mix(r.a0);
    mix(r.a1);
    mix(r.tech);
  }
  os << "trace_records=" << cap.records.size() << " trace_hash=" << h
     << "\n";
  os << scope.metrics_dump();
  return os.str();
}

TEST(ParallelEngineTest, ChurnStressDigestInvariantAcrossThreadCounts) {
  std::string sequential = churn_digest(1);
  SCOPED_TRACE(sequential);
  EXPECT_EQ(sequential, churn_digest(2));
  EXPECT_EQ(sequential, churn_digest(8));
}

TEST(ParallelEngineTest, ChurnStressIsRunToRunDeterministicAt8Threads) {
  EXPECT_EQ(churn_digest(8), churn_digest(8));
}

}  // namespace
}  // namespace omni
