// Technology plugins driven directly through the Communication Technology
// API (paper §3.2): queues in, queues out — no OmniManager involved. This
// pins down the plugin contract itself: enable/disable, context ops,
// per-request responses carrying the forwarded callback, and the original
// request echoed back on failure for manager-side failover.
#include <gtest/gtest.h>

#include <memory>

#include "net/testbed.h"
#include "omni/ble_tech.h"
#include "omni/packed_struct.h"
#include "omni/wifi_multicast_tech.h"
#include "omni/wifi_unicast_tech.h"

namespace omni {
namespace {

class TechHarness {
 public:
  explicit TechHarness(sim::Simulator& sim)
      : send(sim), receive(sim), response(sim) {}

  TechQueues queues() { return TechQueues{&send, &receive, &response}; }

  std::vector<TechResponse> drain_responses() {
    std::vector<TechResponse> out;
    while (auto r = response.try_pop()) out.push_back(std::move(*r));
    return out;
  }
  std::vector<ReceivedPacket> drain_received() {
    std::vector<ReceivedPacket> out;
    while (auto r = receive.try_pop()) out.push_back(std::move(*r));
    return out;
  }

  SimQueue<SendRequest> send;
  SimQueue<ReceivedPacket> receive;
  SimQueue<TechResponse> response;
};

SendRequest add_context_request(ContextId id, Bytes packed,
                                Duration interval = Duration::millis(500)) {
  SendRequest req;
  req.request_id = id;  // reuse for easy matching
  req.op = SendOp::kAddContext;
  req.context_id = id;
  req.interval = interval;
  req.packed = std::move(packed);
  return req;
}

class BleTechTest : public ::testing::Test {
 protected:
  net::Testbed bed{201};
};

TEST_F(BleTechTest, EnableReturnsTypeAndAddress) {
  auto& dev = bed.add_device("a", {0, 0});
  BleTech tech(dev.ble());
  TechHarness h(bed.simulator());
  EnableResult result = tech.enable(h.queues());
  EXPECT_EQ(result.type, Technology::kBle);
  EXPECT_EQ(std::get<BleAddress>(result.address), dev.ble().address());
  EXPECT_TRUE(tech.enabled());
  EXPECT_TRUE(dev.ble().scanning());
}

TEST_F(BleTechTest, ContextLifecycleThroughQueues) {
  auto& dev = bed.add_device("a", {0, 0});
  auto& peer = bed.add_device("b", {10, 0});
  BleTech tech(dev.ble());
  BleTech peer_tech(peer.ble());
  TechHarness h(bed.simulator()), hp(bed.simulator());
  tech.enable(h.queues());
  peer_tech.enable(hp.queues());

  Bytes packed = PackedStruct::context(OmniAddress{0x11}, Bytes{7}).encode();
  h.send.push(add_context_request(1, packed));
  bed.simulator().run_for(Duration::seconds(2));

  auto responses = h.drain_responses();
  ASSERT_EQ(responses.size(), 1u);
  EXPECT_TRUE(responses[0].success);
  EXPECT_EQ(responses[0].op, SendOp::kAddContext);
  EXPECT_EQ(responses[0].context_id, 1u);

  // The peer's technology pushed the reception onto the shared queue.
  auto received = hp.drain_received();
  ASSERT_GE(received.size(), 1u);
  EXPECT_EQ(received[0].tech, Technology::kBle);
  EXPECT_EQ(std::get<BleAddress>(received[0].from), dev.ble().address());
  EXPECT_EQ(received[0].packed, packed);

  // Remove stops transmissions.
  SendRequest remove;
  remove.request_id = 2;
  remove.op = SendOp::kRemoveContext;
  remove.context_id = 1;
  h.send.push(std::move(remove));
  bed.simulator().run_for(Duration::millis(100));
  hp.drain_received();
  bed.simulator().run_for(Duration::seconds(2));
  EXPECT_TRUE(hp.drain_received().empty());
}

TEST_F(BleTechTest, OversizedContextFailsWithOriginalEchoed) {
  auto& dev = bed.add_device("a", {0, 0});
  BleTech tech(dev.ble());
  TechHarness h(bed.simulator());
  tech.enable(h.queues());

  Bytes big = PackedStruct::context(OmniAddress{0x11}, Bytes(100, 1)).encode();
  h.send.push(add_context_request(5, big));
  bed.simulator().run_for(Duration::millis(100));
  auto responses = h.drain_responses();
  ASSERT_EQ(responses.size(), 1u);
  EXPECT_FALSE(responses[0].success);
  EXPECT_FALSE(responses[0].failure_reason.empty());
  // Paper §3.2: on failure, the technology echoes the full request so the
  // manager can retry elsewhere.
  ASSERT_NE(responses[0].original, nullptr);
  EXPECT_EQ(responses[0].original->packed, big);
  EXPECT_EQ(responses[0].original->op, SendOp::kAddContext);
}

TEST_F(BleTechTest, DataToWrongAddressTypeFails) {
  auto& dev = bed.add_device("a", {0, 0});
  BleTech tech(dev.ble());
  TechHarness h(bed.simulator());
  tech.enable(h.queues());
  SendRequest req;
  req.request_id = 9;
  req.op = SendOp::kSendData;
  req.dest = LowLevelAddress{MeshAddress::from_node(1)};  // wrong tech
  req.packed = PackedStruct::data(OmniAddress{1}, Bytes{1}).encode();
  h.send.push(std::move(req));
  bed.simulator().run_for(Duration::millis(100));
  auto responses = h.drain_responses();
  ASSERT_EQ(responses.size(), 1u);
  EXPECT_FALSE(responses[0].success);
}

TEST_F(BleTechTest, DisableDrainsQueueGracefully) {
  auto& dev = bed.add_device("a", {0, 0});
  BleTech tech(dev.ble());
  TechHarness h(bed.simulator());
  tech.enable(h.queues());
  // Queue a request, then disable before the event loop runs: the contract
  // says pending requests are processed and answered.
  h.send.push(add_context_request(
      1, PackedStruct::context(OmniAddress{1}, Bytes{1}).encode()));
  tech.disable();
  EXPECT_FALSE(tech.enabled());
  auto responses = h.drain_responses();
  ASSERT_EQ(responses.size(), 1u);
  EXPECT_TRUE(responses[0].success);
  EXPECT_EQ(dev.ble().active_advertisements(), 0u);  // withdrawn on disable
}

class WifiUnicastTechTest : public ::testing::Test {
 protected:
  net::Testbed bed{202};
};

TEST_F(WifiUnicastTechTest, SendsDataOverFlow) {
  auto& a = bed.add_device("a", {0, 0});
  auto& b = bed.add_device("b", {10, 0});
  WifiUnicastTech ta(a.wifi(), bed.mesh());
  WifiUnicastTech tb(b.wifi(), bed.mesh());
  TechHarness ha(bed.simulator()), hb(bed.simulator());
  ta.enable(ha.queues());
  tb.enable(hb.queues());
  bed.simulator().run_for(Duration::seconds(1));  // joins complete

  Bytes packed = PackedStruct::data(OmniAddress{0x22}, Bytes(5000, 9)).encode();
  SendRequest req;
  req.request_id = 1;
  req.op = SendOp::kSendData;
  req.dest = LowLevelAddress{b.wifi().address()};
  req.packed = packed;
  ha.send.push(std::move(req));
  bed.simulator().run_for(Duration::seconds(2));

  auto responses = ha.drain_responses();
  ASSERT_EQ(responses.size(), 1u);
  EXPECT_TRUE(responses[0].success);
  auto received = hb.drain_received();
  ASSERT_EQ(received.size(), 1u);
  EXPECT_EQ(received[0].tech, Technology::kWifiUnicast);
  EXPECT_EQ(received[0].packed, packed);
}

TEST_F(WifiUnicastTechTest, RequestsBeforeJoinAreHeld) {
  auto& a = bed.add_device("a", {0, 0});
  auto& b = bed.add_device("b", {10, 0});
  WifiUnicastTech tb(b.wifi(), bed.mesh());
  TechHarness hb(bed.simulator());
  tb.enable(hb.queues());
  bed.simulator().run_for(Duration::seconds(1));

  WifiUnicastTech ta(a.wifi(), bed.mesh());
  TechHarness ha(bed.simulator());
  ta.enable(ha.queues());
  // Push immediately: a's join (250 ms) is still in flight.
  SendRequest req;
  req.request_id = 1;
  req.op = SendOp::kSendData;
  req.dest = LowLevelAddress{b.wifi().address()};
  req.packed = PackedStruct::data(OmniAddress{1}, Bytes{1}).encode();
  ha.send.push(std::move(req));
  bed.simulator().run_for(Duration::seconds(2));
  auto responses = ha.drain_responses();
  ASSERT_EQ(responses.size(), 1u);
  EXPECT_TRUE(responses[0].success) << responses[0].failure_reason;
}

TEST_F(WifiUnicastTechTest, ContextOpsRejected) {
  auto& a = bed.add_device("a", {0, 0});
  WifiUnicastTech ta(a.wifi(), bed.mesh());
  TechHarness ha(bed.simulator());
  ta.enable(ha.queues());
  bed.simulator().run_for(Duration::seconds(1));
  ha.send.push(add_context_request(
      1, PackedStruct::context(OmniAddress{1}, Bytes{1}).encode()));
  bed.simulator().run_for(Duration::millis(100));
  auto responses = ha.drain_responses();
  ASSERT_EQ(responses.size(), 1u);
  EXPECT_FALSE(responses[0].success);
  EXPECT_FALSE(ta.supports_context());
}

class WifiMulticastTechTest : public ::testing::Test {
 protected:
  net::Testbed bed{203};
};

TEST_F(WifiMulticastTechTest, AggregatesSameTickContexts) {
  auto& a = bed.add_device("a", {0, 0});
  auto& b = bed.add_device("b", {10, 0});
  WifiMulticastTech ta(a.wifi(), bed.mesh());
  WifiMulticastTech tb(b.wifi(), bed.mesh());
  ta.set_engaged(true);
  tb.set_engaged(true);
  TechHarness ha(bed.simulator()), hb(bed.simulator());
  ta.enable(ha.queues());
  tb.enable(hb.queues());
  bed.simulator().run_for(Duration::seconds(1));

  // Two contexts at the same 500 ms interval: they must coalesce into one
  // datagram per tick (one driver burst), yet arrive as two packets.
  ha.send.push(add_context_request(
      1, PackedStruct::context(OmniAddress{1}, Bytes{1}).encode()));
  ha.send.push(add_context_request(
      2, PackedStruct::context(OmniAddress{1}, Bytes{2}).encode()));
  TimePoint t0 = bed.simulator().now();
  bed.simulator().run_for(Duration::millis(600));

  auto received = hb.drain_received();
  ASSERT_EQ(received.size(), 2u);  // both context packs delivered

  // Energy check: exactly one multicast send burst was paid in the window.
  const auto& cal = bed.calibration();
  double mAs = a.meter().total_mAs(t0, bed.simulator().now()) -
               cal.wifi_standby_ma *
                   (bed.simulator().now() - t0).as_seconds();
  double one_burst =
      cal.wifi_multicast_send_burst.as_seconds() * cal.wifi_send_ma;
  EXPECT_NEAR(mAs, one_burst, one_burst * 0.25);
}

TEST_F(WifiMulticastTechTest, DisengagedProbesOnlyPeriodically) {
  auto& a = bed.add_device("a", {0, 0});
  auto& b = bed.add_device("b", {10, 0});
  WifiMulticastTech ta(a.wifi(), bed.mesh());
  WifiMulticastTech tb(b.wifi(), bed.mesh());
  ta.set_engaged(true);   // sender beacons
  tb.set_engaged(false);  // receiver probe-listens
  TechHarness ha(bed.simulator()), hb(bed.simulator());
  ta.enable(ha.queues());
  tb.enable(hb.queues());
  bed.simulator().run_for(Duration::seconds(1));

  ha.send.push(add_context_request(
      1, PackedStruct::context(OmniAddress{1}, Bytes{3}).encode()));
  bed.simulator().run_for(Duration::seconds(20));
  // 40 beacons were sent, but the probe window (600 ms every 5 s) lets only
  // ~12% through.
  std::size_t heard = hb.drain_received().size();
  EXPECT_GE(heard, 2u);
  EXPECT_LE(heard, 12u);
}

TEST_F(WifiMulticastTechTest, BulkDataDeliveredWithUnicastFraming) {
  auto& a = bed.add_device("a", {0, 0});
  auto& b = bed.add_device("b", {10, 0});
  auto& c = bed.add_device("c", {20, 0});
  WifiMulticastTech ta(a.wifi(), bed.mesh());
  WifiMulticastTech tb(b.wifi(), bed.mesh());
  WifiMulticastTech tc(c.wifi(), bed.mesh());
  for (auto* t : {&ta, &tb, &tc}) t->set_engaged(true);
  TechHarness ha(bed.simulator()), hb(bed.simulator()), hc(bed.simulator());
  ta.enable(ha.queues());
  tb.enable(hb.queues());
  tc.enable(hc.queues());
  bed.simulator().run_for(Duration::seconds(1));

  SendRequest req;
  req.request_id = 1;
  req.op = SendOp::kSendData;
  req.dest = LowLevelAddress{b.wifi().address()};  // addressed to b only
  req.packed = PackedStruct::data(OmniAddress{1}, Bytes(4000, 7)).encode();
  ha.send.push(std::move(req));
  bed.simulator().run_for(Duration::seconds(2));

  EXPECT_EQ(hb.drain_received().size(), 1u);  // the addressee got it
  EXPECT_EQ(hc.drain_received().size(), 0u);  // bystander filtered the frame
  auto responses = ha.drain_responses();
  ASSERT_EQ(responses.size(), 1u);
  EXPECT_TRUE(responses[0].success);
}

}  // namespace
}  // namespace omni
