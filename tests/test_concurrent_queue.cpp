// The thread-safe queue backing the Communication Technology API in
// real-time deployments (paper §3.2: "queues that can be accessed
// concurrently").
#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <thread>
#include <vector>

#include "common/concurrent_queue.h"

namespace omni {
namespace {

TEST(ConcurrentQueueTest, FifoOrder) {
  ConcurrentQueue<int> q;
  q.push(1);
  q.push(2);
  q.push(3);
  EXPECT_EQ(q.try_pop(), 1);
  EXPECT_EQ(q.try_pop(), 2);
  EXPECT_EQ(q.try_pop(), 3);
  EXPECT_EQ(q.try_pop(), std::nullopt);
}

TEST(ConcurrentQueueTest, TryPopEmpty) {
  ConcurrentQueue<int> q;
  EXPECT_EQ(q.try_pop(), std::nullopt);
  EXPECT_TRUE(q.empty());
}

TEST(ConcurrentQueueTest, CloseRejectsPushesAndDrains) {
  ConcurrentQueue<int> q;
  q.push(1);
  q.close();
  EXPECT_FALSE(q.push(2));
  EXPECT_EQ(q.pop(), 1);           // drains what was queued before close
  EXPECT_EQ(q.pop(), std::nullopt);  // then reports closed
}

TEST(ConcurrentQueueTest, BlockingPopWakesOnPush) {
  ConcurrentQueue<int> q;
  std::thread producer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    q.push(7);
  });
  EXPECT_EQ(q.pop(), 7);  // blocks until the producer delivers
  producer.join();
}

TEST(ConcurrentQueueTest, CloseWakesBlockedConsumers) {
  ConcurrentQueue<int> q;
  std::thread consumer([&] { EXPECT_EQ(q.pop(), std::nullopt); });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  q.close();
  consumer.join();
}

TEST(ConcurrentQueueTest, ManyProducersManyConsumersLoseNothing) {
  ConcurrentQueue<int> q;
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 2500;

  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        ASSERT_TRUE(q.push(p * kPerProducer + i));
      }
    });
  }

  std::atomic<int> consumed{0};
  std::mutex seen_mu;
  std::set<int> seen;
  std::vector<std::thread> consumers;
  for (int c = 0; c < 3; ++c) {
    consumers.emplace_back([&] {
      while (auto item = q.pop()) {
        std::lock_guard lock(seen_mu);
        seen.insert(*item);
        ++consumed;
      }
    });
  }

  for (auto& t : producers) t.join();
  q.close();
  for (auto& t : consumers) t.join();

  EXPECT_EQ(consumed.load(), kProducers * kPerProducer);
  EXPECT_EQ(seen.size(),
            static_cast<std::size_t>(kProducers * kPerProducer));
}

TEST(ConcurrentQueueTest, DrainSwapsOutTheWholeBacklog) {
  ConcurrentQueue<int> q;
  for (int i = 0; i < 5; ++i) q.push(i);
  auto batch = q.drain();
  EXPECT_EQ(batch, (std::deque<int>{0, 1, 2, 3, 4}));
  EXPECT_TRUE(q.empty());
  EXPECT_TRUE(q.drain().empty());
}

TEST(ConcurrentQueueTest, DrainThenPushStartsAFreshBatch) {
  ConcurrentQueue<int> q;
  q.push(1);
  EXPECT_EQ(q.drain().size(), 1u);
  q.push(2);
  q.push(3);
  EXPECT_EQ(q.drain(), (std::deque<int>{2, 3}));
}

TEST(ConcurrentQueueTest, DrainStillReturnsBacklogAfterClose) {
  ConcurrentQueue<int> q;
  q.push(9);
  q.close();
  EXPECT_EQ(q.drain(), (std::deque<int>{9}));
}

TEST(ConcurrentQueueTest, ConcurrentProducersVsDrainingConsumerLoseNothing) {
  ConcurrentQueue<int> q;
  constexpr int kItems = 5000;
  std::thread producer([&] {
    for (int i = 0; i < kItems; ++i) ASSERT_TRUE(q.push(i));
    q.close();
  });
  // A batch consumer: one lock per drain instead of one per item, the
  // pattern the manager's drain loops use.
  std::vector<int> got;
  while (!q.closed() || !q.empty()) {
    for (int v : q.drain()) got.push_back(v);
  }
  for (int v : q.drain()) got.push_back(v);  // racing close vs last batch
  producer.join();
  ASSERT_EQ(got.size(), static_cast<std::size_t>(kItems));
  for (int i = 0; i < kItems; ++i) EXPECT_EQ(got[i], i);
}

TEST(ConcurrentQueueTest, MoveOnlyPayloads) {
  ConcurrentQueue<std::unique_ptr<int>> q;
  q.push(std::make_unique<int>(5));
  auto out = q.try_pop();
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(**out, 5);
}

}  // namespace
}  // namespace omni
