#include <gtest/gtest.h>

#include "common/hash.h"

namespace omni {
namespace {

TEST(HashTest, Fnv1aKnownValues) {
  // Standard FNV-1a test vectors.
  EXPECT_EQ(fnv1a64(""), 0xcbf29ce484222325ull);
  EXPECT_EQ(fnv1a64("a"), 0xaf63dc4c8601ec8cull);
  EXPECT_EQ(fnv1a64("foobar"), 0x85944171f73967e8ull);
}

TEST(HashTest, SeedChaining) {
  std::uint8_t data[] = {1, 2, 3};
  std::uint64_t h1 = fnv1a64(std::span<const std::uint8_t>(data, 3));
  std::uint64_t h2 =
      fnv1a64(std::span<const std::uint8_t>(data, 2));
  std::uint64_t h3 = fnv1a64(std::span<const std::uint8_t>(data + 2, 1), h2);
  EXPECT_EQ(h1, h3);
}

TEST(HashTest, OmniAddressIsDeterministic) {
  BleAddress ble = BleAddress::from_node(5);
  MeshAddress mesh = MeshAddress::from_node(5);
  EXPECT_EQ(derive_omni_address(ble, mesh), derive_omni_address(ble, mesh));
}

TEST(HashTest, OmniAddressDistinctAcrossDevices) {
  auto a = derive_omni_address(BleAddress::from_node(1),
                               MeshAddress::from_node(1));
  auto b = derive_omni_address(BleAddress::from_node(2),
                               MeshAddress::from_node(2));
  EXPECT_NE(a, b);
  EXPECT_TRUE(a.is_valid());
  EXPECT_TRUE(b.is_valid());
}

TEST(HashTest, OmniAddressDependsOnBothInterfaces) {
  auto base = derive_omni_address(BleAddress::from_node(1),
                                  MeshAddress::from_node(1));
  auto ble_changed = derive_omni_address(BleAddress::from_node(2),
                                         MeshAddress::from_node(1));
  auto mesh_changed = derive_omni_address(BleAddress::from_node(1),
                                          MeshAddress::from_node(2));
  EXPECT_NE(base, ble_changed);
  EXPECT_NE(base, mesh_changed);
}

TEST(HashTest, AddressFormatting) {
  EXPECT_EQ(BleAddress::from_node(0x010203).to_string(),
            "02:b1:ee:01:02:03");
  OmniAddress addr{0xABCDull};
  EXPECT_EQ(addr.to_string(), "omni:000000000000abcd");
  EXPECT_EQ(MeshAddress{0}.to_string(), "mesh:000000000000");
}

}  // namespace
}  // namespace omni
