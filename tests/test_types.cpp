#include <gtest/gtest.h>

#include <unordered_set>

#include "common/types.h"
#include "omni/comm_tech.h"
#include "omni/status.h"

namespace omni {
namespace {

TEST(TypesTest, TechnologyOrderingIsEnergyOrdering) {
  // The manager relies on the enum order: BLE cheapest, then WiFi-Aware,
  // multicast, and unicast dearest.
  EXPECT_LT(static_cast<int>(Technology::kBle),
            static_cast<int>(Technology::kWifiAware));
  EXPECT_LT(static_cast<int>(Technology::kWifiAware),
            static_cast<int>(Technology::kWifiMulticast));
  EXPECT_LT(static_cast<int>(Technology::kWifiMulticast),
            static_cast<int>(Technology::kWifiUnicast));
  EXPECT_EQ(kAllTechnologies.size(), 4u);
}

TEST(TypesTest, TechnologyNames) {
  EXPECT_EQ(to_string(Technology::kBle), "BLE");
  EXPECT_EQ(to_string(Technology::kWifiAware), "WiFi-Aware");
  EXPECT_EQ(to_string(Technology::kWifiMulticast), "WiFi-Multicast");
  EXPECT_EQ(to_string(Technology::kWifiUnicast), "WiFi-Unicast");
}

TEST(TypesTest, AddressZeroChecks) {
  EXPECT_TRUE(BleAddress{}.is_zero());
  EXPECT_FALSE(BleAddress::from_node(1).is_zero());
  EXPECT_TRUE(MeshAddress{}.is_zero());
  EXPECT_FALSE(MeshAddress::from_node(1).is_zero());
  EXPECT_FALSE(OmniAddress{}.is_valid());
  EXPECT_TRUE(OmniAddress{1}.is_valid());
}

TEST(TypesTest, AddressesHashable) {
  std::unordered_set<OmniAddress> omnis{{1}, {2}, {1}};
  EXPECT_EQ(omnis.size(), 2u);
  std::unordered_set<MeshAddress> meshes{MeshAddress::from_node(1),
                                         MeshAddress::from_node(2)};
  EXPECT_EQ(meshes.size(), 2u);
  std::unordered_set<BleAddress> bles{BleAddress::from_node(1),
                                      BleAddress::from_node(1)};
  EXPECT_EQ(bles.size(), 1u);
}

TEST(TypesTest, NodeDerivedAddressesAreDistinct) {
  for (NodeId i = 0; i < 100; ++i) {
    EXPECT_NE(BleAddress::from_node(i), BleAddress::from_node(i + 1));
    EXPECT_NE(MeshAddress::from_node(i), MeshAddress::from_node(i + 1));
  }
}

TEST(StatusCodeTest, NamesAndSuccessFlags) {
  EXPECT_EQ(to_string(StatusCode::kAddContextSuccess),
            "ADD_CONTEXT_SUCCESS");
  EXPECT_EQ(to_string(StatusCode::kSendDataFailure), "SEND_DATA_FAILURE");
  EXPECT_TRUE(is_success(StatusCode::kAddContextSuccess));
  EXPECT_TRUE(is_success(StatusCode::kUpdateContextSuccess));
  EXPECT_TRUE(is_success(StatusCode::kRemoveContextSuccess));
  EXPECT_TRUE(is_success(StatusCode::kSendDataSuccess));
  EXPECT_FALSE(is_success(StatusCode::kAddContextFailure));
  EXPECT_FALSE(is_success(StatusCode::kUpdateContextFailure));
  EXPECT_FALSE(is_success(StatusCode::kRemoveContextFailure));
  EXPECT_FALSE(is_success(StatusCode::kSendDataFailure));
}

TEST(LowLevelAddressTest, VariantHelpers) {
  LowLevelAddress unset;
  EXPECT_TRUE(is_unset(unset));
  EXPECT_EQ(to_string(unset), "(unset)");
  LowLevelAddress ble{BleAddress::from_node(1)};
  EXPECT_FALSE(is_unset(ble));
  EXPECT_EQ(to_string(ble), BleAddress::from_node(1).to_string());
  LowLevelAddress mesh{MeshAddress::from_node(1)};
  EXPECT_EQ(to_string(mesh), MeshAddress::from_node(1).to_string());
}

TEST(SendOpTest, Names) {
  EXPECT_EQ(to_string(SendOp::kAddContext), "add_context");
  EXPECT_EQ(to_string(SendOp::kUpdateContext), "update_context");
  EXPECT_EQ(to_string(SendOp::kRemoveContext), "remove_context");
  EXPECT_EQ(to_string(SendOp::kSendData), "send_data");
}

}  // namespace
}  // namespace omni
