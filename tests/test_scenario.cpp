// The scenario DSL: parser strictness and end-to-end execution.
#include <gtest/gtest.h>

#include "scenario/scenario.h"

namespace omni::scenario {
namespace {

TEST(ScenarioParseTest, MinimalValid) {
  auto s = Scenario::parse("device a 0 0\nrun 1s\n");
  ASSERT_TRUE(s.is_ok()) << s.error_message();
  EXPECT_EQ(s.value()->device_count(), 1u);
  EXPECT_EQ(s.value()->instruction_count(), 1u);
}

TEST(ScenarioParseTest, CommentsAndBlankLines) {
  auto s = Scenario::parse(
      "# a comment\n"
      "\n"
      "device a 0 0   # trailing comment\n"
      "run 1s\n");
  ASSERT_TRUE(s.is_ok()) << s.error_message();
}

TEST(ScenarioParseTest, ErrorsCarryLineNumbers) {
  auto s = Scenario::parse("device a 0 0\nbogus directive\n");
  ASSERT_FALSE(s.is_ok());
  EXPECT_NE(s.error_message().find("line 2"), std::string::npos);
}

TEST(ScenarioParseTest, RejectsBadInputs) {
  EXPECT_FALSE(Scenario::parse("").is_ok());  // no devices
  EXPECT_FALSE(Scenario::parse("device a zero 0\n").is_ok());
  EXPECT_FALSE(Scenario::parse("device a 0 0\ndevice a 1 1\n").is_ok());
  EXPECT_FALSE(Scenario::parse("device a 0 0 hovercraft\n").is_ok());
  EXPECT_FALSE(Scenario::parse("device a 0 0\nrun fast\n").is_ok());
  EXPECT_FALSE(Scenario::parse("device a 0 0\nadvertise ghost hi\n").is_ok());
  EXPECT_FALSE(
      Scenario::parse("device a 0 0\nwalk a to=1,1 speed=1\n").is_ok());
  EXPECT_FALSE(
      Scenario::parse("device a 0 0\ndevice b 1 0\nsend a b at=1s\n")
          .is_ok());
  EXPECT_FALSE(Scenario::parse("device a 0 0\npoweroff a at=1s toaster\n")
                   .is_ok());
}

TEST(ScenarioParseTest, DurationsAndPositions) {
  auto s = Scenario::parse(
      "device a 0 0\n"
      "device b 5 5\n"
      "advertise a hello interval=250ms\n"
      "walk a at=1.5s to=10,20 speed=2.5\n"
      "teleport b at=2s to=-5,0\n"
      "send a b at=3s bytes=1000\n"
      "run 5s\n");
  ASSERT_TRUE(s.is_ok()) << s.error_message();
  EXPECT_EQ(s.value()->instruction_count(), 5u);
}

TEST(ScenarioRunTest, DiscoveryAndDataDelivery) {
  std::string report = run_scenario_text(
      "seed 5\n"
      "device a 0 0\n"
      "device b 10 0\n"
      "advertise a hi\n"
      "run 3s\n"
      "send a b at=4s bytes=5000\n"
      "run 5s\n"
      "report\n");
  // b received the data; both peers discovered.
  EXPECT_NE(report.find("a: peers=1"), std::string::npos) << report;
  EXPECT_NE(report.find("b: peers=1"), std::string::npos) << report;
  EXPECT_NE(report.find("rx_data=1"), std::string::npos) << report;
  EXPECT_NE(report.find("sends=1/1"), std::string::npos) << report;
}

TEST(ScenarioRunTest, SendBeforeDiscoveryFails) {
  std::string report = run_scenario_text(
      "device a 0 0\n"
      "device b 10 0\n"
      "send a b at=0.1s bytes=100\n"  // before any beacon round
      "run 3s\n"
      "report\n");
  EXPECT_NE(report.find("sends=0/1"), std::string::npos) << report;
}

TEST(ScenarioRunTest, PoweroffSilencesDevice) {
  std::string report = run_scenario_text(
      "device a 0 0\n"
      "device b 10 0\n"
      "run 3s\n"
      "poweroff b at=3s all\n"
      "run 15s\n"  // > peer TTL
      "report\n");
  EXPECT_NE(report.find("a: peers=0"), std::string::npos) << report;
}

TEST(ScenarioRunTest, MobilityBringsDevicesIntoRange) {
  std::string report = run_scenario_text(
      "device a 0 0\n"
      "device b 500 0\n"
      "run 2s\n"
      "teleport b at=2s to=10,0\n"
      "run 3s\n"
      "report\n");
  EXPECT_NE(report.find("a: peers=1"), std::string::npos) << report;
}

TEST(ScenarioRunTest, ServiceDirectiveAdvertises) {
  std::string report = run_scenario_text(
      "device provider 0 0\n"
      "device client 10 0\n"
      "service provider 3 townhall\n"
      "run 3s\n"
      "report\n");
  // The client received the descriptor as context.
  EXPECT_NE(report.find("client: peers=1"), std::string::npos) << report;
  std::size_t pos = report.find("client:");
  ASSERT_NE(pos, std::string::npos);
  EXPECT_EQ(report.find("rx_ctx=0", pos), std::string::npos) << report;
}

TEST(ScenarioRunTest, DeterministicReports) {
  const std::string script =
      "seed 99\n"
      "device a 0 0\n"
      "device b 10 0\n"
      "advertise a ping\n"
      "run 10s\n"
      "report\n";
  EXPECT_EQ(run_scenario_text(script), run_scenario_text(script));
}


TEST(ScenarioRunTest, WifiAwareDevicesInteroperate) {
  std::string report = run_scenario_text(
      "device a 0 0 wifi aware\n"
      "device b 60 0 wifi aware\n"   // beyond BLE range; NAN carries context
      "run 3s\n"
      "send a b at=3.5s bytes=5000\n"
      "run 3s\n"
      "report\n");
  EXPECT_NE(report.find("a: peers=1"), std::string::npos) << report;
  EXPECT_NE(report.find("sends=1/1"), std::string::npos) << report;
}

}  // namespace
}  // namespace omni::scenario
