// The multi-technology engagement algorithm of paper §3.3: beacon on the
// lowest-energy context technology; engage another when an unknown peer
// appears there; disengage once every peer there is covered by something
// cheaper.
#include <gtest/gtest.h>

#include "net/testbed.h"
#include "omni/omni_node.h"

namespace omni {
namespace {

class EngagementTest : public ::testing::Test {
 protected:
  OmniNodeOptions full_options() {
    OmniNodeOptions options;
    options.ble = true;
    options.wifi_unicast = true;
    options.wifi_multicast = true;
    return options;
  }
  net::Testbed bed{23};
};

TEST_F(EngagementTest, PrimaryIsLowestEnergyContextTech) {
  auto& d = bed.add_device("a", {0, 0});
  OmniNode node(d, bed.mesh(), full_options());
  node.start();
  bed.simulator().run_for(Duration::seconds(1));
  EXPECT_TRUE(node.manager().technology_engaged(Technology::kBle));
  EXPECT_FALSE(node.manager().technology_engaged(Technology::kWifiMulticast));
  // Beacons flow only on BLE: exactly one advertisement (the beacon).
  EXPECT_EQ(d.ble().active_advertisements(), 1u);
}

TEST_F(EngagementTest, WifiOnlyNodeUsesMulticastAsPrimary) {
  auto& d = bed.add_device("a", {0, 0});
  OmniNodeOptions options;
  options.ble = false;
  options.wifi_unicast = true;
  options.wifi_multicast = true;
  OmniNode node(d, bed.mesh(), options);
  node.start();
  bed.simulator().run_for(Duration::seconds(1));
  EXPECT_TRUE(node.manager().technology_engaged(Technology::kWifiMulticast));
}

TEST_F(EngagementTest, UnknownPeerOnMulticastTriggersEngagement) {
  // Device A has BLE + multicast; device B is WiFi-only (no BLE), so A can
  // only hear it via multicast. A must engage multicast to cover B.
  auto& da = bed.add_device("a", {0, 0});
  auto& db = bed.add_device("b", {10, 0});
  OmniNode a(da, bed.mesh(), full_options());
  OmniNodeOptions b_options;
  b_options.ble = false;
  b_options.wifi_unicast = true;
  b_options.wifi_multicast = true;
  OmniNode b(db, bed.mesh(), b_options);

  a.start();
  b.start();
  // A's multicast probe window (every 5 s) must eventually catch one of B's
  // 500 ms beacons and engage.
  bed.simulator().run_for(Duration::seconds(12));
  EXPECT_TRUE(a.manager().technology_engaged(Technology::kWifiMulticast));
  EXPECT_GE(a.manager().stats().engagements, 1u);
  // And B, hearing A on multicast only, keeps its primary engaged.
  ASSERT_NE(a.manager().peer_table().find(b.address()), nullptr);
  // Bidirectional discovery: B now knows A too (via A's engaged beacons).
  bed.simulator().run_for(Duration::seconds(6));
  EXPECT_NE(b.manager().peer_table().find(a.address()), nullptr);
}

TEST_F(EngagementTest, DisengagesWhenPeerCoveredByLowerEnergy) {
  // Both devices have BLE + multicast. If A somehow engaged multicast, the
  // maintenance tick must disengage it because B is reachable via BLE.
  auto& da = bed.add_device("a", {0, 0});
  auto& db = bed.add_device("b", {10, 0});
  OmniNode a(da, bed.mesh(), full_options());
  OmniNode b(db, bed.mesh(), full_options());
  a.start();
  b.start();
  bed.simulator().run_for(Duration::seconds(2));

  // Force-engage multicast on A.
  a.wifi_multicast_tech()->set_engaged(true);
  ASSERT_TRUE(a.manager().technology_engaged(Technology::kWifiMulticast));
  // B is heard on BLE, so the next maintenance tick disengages multicast.
  bed.simulator().run_for(Duration::seconds(12));
  EXPECT_FALSE(a.manager().technology_engaged(Technology::kWifiMulticast));
}

TEST_F(EngagementTest, AblationDisabledEngagementBeaconsEverywhere) {
  auto& d = bed.add_device("a", {0, 0});
  OmniNodeOptions options = full_options();
  options.manager.enable_engagement = false;
  OmniNode node(d, bed.mesh(), options);
  node.start();
  bed.simulator().run_for(Duration::seconds(1));
  // ubiSOAP-style: every context technology carries beacons.
  EXPECT_TRUE(node.manager().technology_engaged(Technology::kBle));
  EXPECT_TRUE(node.manager().technology_engaged(Technology::kWifiMulticast));
}

TEST_F(EngagementTest, EngagementCostsShowUpInEnergy) {
  // A BLE-covered pair with engagement spends far less on WiFi than the
  // same pair with engagement disabled (always-multicast).
  double energy[2];
  for (int variant = 0; variant < 2; ++variant) {
    net::Testbed local_bed(29);
    auto& da = local_bed.add_device("a", {0, 0});
    auto& db = local_bed.add_device("b", {10, 0});
    OmniNodeOptions options;
    options.ble = true;
    options.wifi_unicast = true;
    options.wifi_multicast = true;
    options.manager.enable_engagement = variant == 0;
    OmniNode a(da, local_bed.mesh(), options);
    OmniNode b(db, local_bed.mesh(), options);
    a.start();
    b.start();
    local_bed.simulator().run_for(Duration::seconds(30));
    energy[variant] = da.meter().average_ma(TimePoint::origin(),
                                            local_bed.simulator().now());
  }
  EXPECT_LT(energy[0] + 5.0, energy[1])
      << "engagement-enabled run should be clearly cheaper";
}

TEST_F(EngagementTest, PrimaryNeverDisengages) {
  auto& d = bed.add_device("a", {0, 0});
  OmniNode node(d, bed.mesh(), full_options());
  node.start();
  bed.simulator().run_for(Duration::seconds(30));  // many maintenance ticks
  EXPECT_TRUE(node.manager().technology_engaged(Technology::kBle));
}

}  // namespace
}  // namespace omni
