// Parameterized property sweeps over the core invariants:
//   * fluid TCP time is linear in transfer size and in flow count;
//   * discovery latency is bounded by the beacon interval;
//   * multicast load scales capacity down exactly linearly;
//   * data of any size is delivered bit-exact through the Omni pipeline,
//     across the BLE/WiFi payload boundary;
//   * random topologies converge to full mutual discovery.
#include <gtest/gtest.h>

#include <memory>

#include "net/testbed.h"
#include "omni/omni_node.h"
#include "radio/mesh.h"

namespace omni {
namespace {

// --- TCP time ~ size --------------------------------------------------------

class FlowSizeSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FlowSizeSweep, TransferTimeLinearInSize) {
  net::Testbed bed(61);
  auto& a = bed.add_device("a", {0, 0});
  auto& b = bed.add_device("b", {10, 0});
  for (auto* d : {&a, &b}) {
    d->wifi().set_powered(true);
    d->wifi().join(bed.mesh(), [](Status) {});
  }
  bed.simulator().run_for(Duration::seconds(1));

  std::uint64_t bytes = GetParam();
  TimePoint t0 = bed.simulator().now();
  TimePoint done;
  bed.mesh().open_flow(a.wifi(), b.wifi().address(), bytes,
                       [&](Status s) {
                         ASSERT_TRUE(s.is_ok());
                         done = bed.simulator().now();
                       });
  bed.simulator().run_for(Duration::seconds(60));
  const auto& cal = bed.calibration();
  double expected = (cal.wifi_rtt * 3.0 + cal.tcp_setup_overhead).as_seconds() +
                    static_cast<double>(bytes) / cal.wifi_capacity_Bps;
  EXPECT_NEAR((done - t0).as_seconds(), expected, expected * 0.01 + 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Sizes, FlowSizeSweep,
                         ::testing::Values(1, 1000, 30'000, 1'000'000,
                                           8'100'000, 25'000'000,
                                           100'000'000));

// --- TCP time ~ flow count --------------------------------------------------

class FlowCountSweep : public ::testing::TestWithParam<int> {};

TEST_P(FlowCountSweep, ConcurrentFlowsShareFairly) {
  int n = GetParam();
  net::Testbed bed(62);
  std::vector<net::Device*> devs;
  for (int i = 0; i <= n; ++i) {
    devs.push_back(&bed.add_device("d" + std::to_string(i),
                                   {static_cast<double>(i), 0}));
    devs.back()->wifi().set_powered(true);
    devs.back()->wifi().join(bed.mesh(), [](Status) {});
  }
  bed.simulator().run_for(Duration::seconds(1));

  const std::uint64_t kBytes = 2'000'000;
  TimePoint t0 = bed.simulator().now();
  std::vector<TimePoint> done(n);
  for (int i = 0; i < n; ++i) {
    bed.mesh().open_flow(devs[i]->wifi(), devs[n]->wifi().address(), kBytes,
                         [&, i](Status s) {
                           ASSERT_TRUE(s.is_ok());
                           done[i] = bed.simulator().now();
                         });
  }
  bed.simulator().run_for(Duration::seconds(120));
  double solo = static_cast<double>(kBytes) /
                bed.calibration().wifi_capacity_Bps;
  for (int i = 0; i < n; ++i) {
    EXPECT_NEAR((done[i] - t0).as_seconds(), solo * n, solo * n * 0.05 + 0.05)
        << "flow " << i << " of " << n;
  }
}

INSTANTIATE_TEST_SUITE_P(Counts, FlowCountSweep, ::testing::Range(1, 7));

// --- Discovery latency ~ beacon interval -------------------------------------

class BeaconIntervalSweep : public ::testing::TestWithParam<int> {};

TEST_P(BeaconIntervalSweep, DiscoveryWithinTwoIntervals) {
  Duration interval = Duration::millis(GetParam());
  net::Testbed bed(63);
  auto& da = bed.add_device("a", {0, 0});
  auto& db = bed.add_device("b", {10, 0});
  OmniNodeOptions options;
  options.manager.beacon_interval = interval;
  OmniNode a(da, bed.mesh(), options);
  OmniNode b(db, bed.mesh(), options);
  a.start();
  b.start();

  TimePoint t0 = bed.simulator().now();
  // Step in small increments and record the first sighting.
  TimePoint first = TimePoint::max();
  for (int step = 0; step < 500 && first == TimePoint::max(); ++step) {
    bed.simulator().run_for(interval / 20);
    if (a.manager().peer_table().find(b.address()) != nullptr) {
      first = bed.simulator().now();
    }
  }
  ASSERT_NE(first, TimePoint::max());
  // First sighting cannot precede one full interval (beacons are not
  // instant) and should land within ~3 intervals at 90% capture.
  EXPECT_GE(first - t0, interval * 0.99);
  EXPECT_LE(first - t0, interval * 3.0 + Duration::millis(50));
}

INSTANTIATE_TEST_SUITE_P(Intervals, BeaconIntervalSweep,
                         ::testing::Values(100, 250, 500, 1000, 2000));

// --- Multicast load linearity -------------------------------------------------

class MulticastLoadSweep : public ::testing::TestWithParam<int> {};

TEST_P(MulticastLoadSweep, CapacityScalesLinearly) {
  int sources = GetParam();
  net::Testbed bed(64);
  double clean = bed.mesh().effective_capacity_Bps();
  std::vector<radio::PeriodicLoadId> loads;
  for (int i = 0; i < sources; ++i) {
    loads.push_back(
        bed.mesh().register_periodic_multicast(Duration::millis(500)));
  }
  double frac =
      bed.calibration().wifi_multicast_beacon_occupancy.as_seconds() / 0.5;
  EXPECT_NEAR(bed.mesh().effective_capacity_Bps(),
              clean * (1.0 - sources * frac), 1.0);
  for (auto id : loads) bed.mesh().unregister_periodic_multicast(id);
  EXPECT_DOUBLE_EQ(bed.mesh().effective_capacity_Bps(), clean);
}

INSTANTIATE_TEST_SUITE_P(Sources, MulticastLoadSweep,
                         ::testing::Range(0, 12, 2));

// --- Omni end-to-end payload fidelity across the BLE/WiFi boundary ----------

class DataSizeSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(DataSizeSweep, PayloadDeliveredBitExact) {
  net::Testbed bed(65);
  auto& da = bed.add_device("a", {0, 0});
  auto& db = bed.add_device("b", {10, 0});
  OmniNode a(da, bed.mesh());
  OmniNode b(db, bed.mesh());
  Bytes received;
  b.manager().request_data(
      [&](const OmniAddress&, const Bytes& data) { received = data; });
  a.start();
  b.start();
  bed.simulator().run_for(Duration::seconds(3));

  std::size_t size = GetParam();
  Bytes payload(size);
  for (std::size_t i = 0; i < size; ++i) {
    payload[i] = static_cast<std::uint8_t>(i * 131 + 7);
  }
  bool ok = false;
  a.manager().send_data({b.address()}, payload,
                        [&](StatusCode code, const ResponseInfo&) {
                          ok = code == StatusCode::kSendDataSuccess;
                        });
  bed.simulator().run_for(Duration::seconds(30));
  EXPECT_TRUE(ok);
  EXPECT_EQ(received, payload);
}

INSTANTIATE_TEST_SUITE_P(Sizes, DataSizeSweep,
                         ::testing::Values(1, 30, 46, 47, 55, 56, 1000,
                                           100'000, 1'000'000));

// --- Random topology discovery convergence -----------------------------------

class TopologySweep : public ::testing::TestWithParam<int> {};

TEST_P(TopologySweep, CliqueWithinBleRangeFullyDiscovers) {
  net::Testbed bed(static_cast<std::uint64_t>(GetParam()));
  auto& rng = bed.simulator().rng();
  constexpr int kNodes = 5;
  std::vector<std::unique_ptr<OmniNode>> nodes;
  for (int i = 0; i < kNodes; ++i) {
    // All within a 20 m disc: far inside BLE range of each other.
    sim::Vec2 pos{rng.uniform(0, 20), rng.uniform(0, 20)};
    auto& dev = bed.add_device("n" + std::to_string(i), pos);
    nodes.push_back(std::make_unique<OmniNode>(dev, bed.mesh()));
  }
  for (auto& n : nodes) n->start();
  bed.simulator().run_for(Duration::seconds(5));
  for (int i = 0; i < kNodes; ++i) {
    EXPECT_EQ(nodes[i]->manager().peer_table().size(), kNodes - 1u)
        << "node " << i << " (seed " << GetParam() << ")";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TopologySweep, ::testing::Range(100, 110));

}  // namespace
}  // namespace omni
