// Fluid-flow TCP model: fair sharing, completion timing, progress, and
// failure injection (membership loss, range loss, power loss).
#include <gtest/gtest.h>

#include "net/testbed.h"
#include "radio/mesh.h"
#include "radio/wifi_radio.h"

namespace omni::radio {
namespace {

class MeshFlowTest : public ::testing::Test {
 protected:
  net::Device& joined_device(const std::string& name, sim::Vec2 pos) {
    auto& dev = bed.add_device(name, pos);
    dev.wifi().set_powered(true);
    dev.wifi().join(bed.mesh(), [](Status) {});
    return dev;
  }

  void settle() { bed.simulator().run_for(Duration::seconds(1)); }

  Duration flow_setup() const {
    const auto& cal = bed.calibration();
    return cal.wifi_rtt * 3.0 + cal.tcp_setup_overhead;
  }

  net::Testbed bed{8};
};

TEST_F(MeshFlowTest, SingleFlowUsesFullCapacity) {
  auto& a = joined_device("a", {0, 0});
  auto& b = joined_device("b", {10, 0});
  settle();

  const double kBytes = 8.1e6;  // exactly 1 second at full capacity
  TimePoint t0 = bed.simulator().now();
  TimePoint done;
  auto flow = bed.mesh().open_flow(a.wifi(), b.wifi().address(),
                                   static_cast<std::uint64_t>(kBytes),
                                   [&](Status s) {
                                     ASSERT_TRUE(s.is_ok());
                                     done = bed.simulator().now();
                                   });
  ASSERT_TRUE(flow.is_ok());
  bed.simulator().run_for(Duration::seconds(5));
  EXPECT_NEAR((done - t0).as_seconds(),
              1.0 + flow_setup().as_seconds(), 0.01);
}

TEST_F(MeshFlowTest, TwoFlowsShareCapacityFairly) {
  auto& a = joined_device("a", {0, 0});
  auto& b = joined_device("b", {10, 0});
  auto& c = joined_device("c", {20, 0});
  settle();

  const std::uint64_t kBytes = 8'100'000;
  TimePoint t0 = bed.simulator().now();
  TimePoint done1, done2;
  bed.mesh().open_flow(a.wifi(), b.wifi().address(), kBytes,
                       [&](Status) { done1 = bed.simulator().now(); });
  bed.mesh().open_flow(c.wifi(), b.wifi().address(), kBytes,
                       [&](Status) { done2 = bed.simulator().now(); });
  bed.simulator().run_for(Duration::seconds(10));
  // Both finish in ~2x the solo time.
  EXPECT_NEAR((done1 - t0).as_seconds(), 2.0, 0.1);
  EXPECT_NEAR((done2 - t0).as_seconds(), 2.0, 0.1);
}

TEST_F(MeshFlowTest, ShortFlowSpeedsUpSurvivor) {
  auto& a = joined_device("a", {0, 0});
  auto& b = joined_device("b", {10, 0});
  auto& c = joined_device("c", {20, 0});
  settle();

  TimePoint t0 = bed.simulator().now();
  TimePoint long_done;
  // Long flow: 8.1 MB; short flow: 2.025 MB (0.25 s solo).
  bed.mesh().open_flow(a.wifi(), b.wifi().address(), 8'100'000,
                       [&](Status) { long_done = bed.simulator().now(); });
  bed.mesh().open_flow(c.wifi(), b.wifi().address(), 2'025'000, nullptr);
  bed.simulator().run_for(Duration::seconds(10));
  // Short flow shares for 0.5 s (finishing 2.025 MB at half rate), then the
  // long flow runs alone: total = 0.5 + (8.1 - 2.025)/8.1 = ~1.25 s.
  EXPECT_NEAR((long_done - t0).as_seconds(), 1.25, 0.05);
}

TEST_F(MeshFlowTest, ProgressCallbackMonotonic) {
  auto& a = joined_device("a", {0, 0});
  auto& b = joined_device("b", {10, 0});
  settle();

  std::vector<std::uint64_t> progress;
  bed.mesh().open_flow(
      a.wifi(), b.wifi().address(), 4'000'000, nullptr,
      [&](std::uint64_t done) { progress.push_back(done); });
  // Force settles by opening/closing a second flow.
  bed.simulator().run_for(Duration::millis(200));
  bed.mesh().open_flow(a.wifi(), b.wifi().address(), 1000, nullptr);
  bed.simulator().run_for(Duration::seconds(5));
  ASSERT_GE(progress.size(), 1u);
  for (std::size_t i = 1; i < progress.size(); ++i) {
    EXPECT_GE(progress[i], progress[i - 1]);
  }
  EXPECT_LE(progress.back(), 4'000'000u);
}

TEST_F(MeshFlowTest, PayloadDeliveredToDestinationOnCompletion) {
  auto& a = joined_device("a", {0, 0});
  auto& b = joined_device("b", {10, 0});
  settle();

  Bytes received;
  b.wifi().add_datagram_handler(
      [&](const MeshAddress& from, const Bytes& payload, bool multicast) {
        EXPECT_FALSE(multicast);
        EXPECT_EQ(from, a.wifi().address());
        received = payload;
      });
  bed.mesh().open_flow(a.wifi(), b.wifi().address(), 1000, nullptr, nullptr,
                       Bytes{42, 43});
  bed.simulator().run_for(Duration::seconds(2));
  EXPECT_EQ(received, (Bytes{42, 43}));
}

TEST_F(MeshFlowTest, UnknownDestinationFailsSynchronously) {
  auto& a = joined_device("a", {0, 0});
  settle();
  auto flow = bed.mesh().open_flow(a.wifi(), MeshAddress{0x999}, 1000,
                                   nullptr);
  EXPECT_FALSE(flow.is_ok());
}

TEST_F(MeshFlowTest, NonMemberSourceFails) {
  auto& a = bed.add_device("a", {0, 0});
  auto& b = joined_device("b", {10, 0});
  a.wifi().set_powered(true);  // powered but not joined
  settle();
  auto flow =
      bed.mesh().open_flow(a.wifi(), b.wifi().address(), 1000, nullptr);
  EXPECT_FALSE(flow.is_ok());
}

TEST_F(MeshFlowTest, OutOfRangePeerTimesOut) {
  auto& a = joined_device("a", {0, 0});
  auto& b = joined_device("b", {500, 0});  // member, but unreachable
  settle();
  TimePoint t0 = bed.simulator().now();
  Status result = Status::ok();
  TimePoint failed;
  auto flow = bed.mesh().open_flow(a.wifi(), b.wifi().address(), 1000,
                                   [&](Status s) {
                                     result = std::move(s);
                                     failed = bed.simulator().now();
                                   });
  ASSERT_TRUE(flow.is_ok());  // the attempt starts...
  bed.simulator().run_for(Duration::seconds(5));
  EXPECT_FALSE(result.is_ok());  // ...but times out
  EXPECT_EQ(failed - t0, bed.calibration().tcp_connect_timeout);
}

TEST_F(MeshFlowTest, PeerLeavingMidTransferFailsFlow) {
  auto& a = joined_device("a", {0, 0});
  auto& b = joined_device("b", {10, 0});
  settle();
  Status result = Status::ok();
  bool called = false;
  bed.mesh().open_flow(a.wifi(), b.wifi().address(), 50'000'000,
                       [&](Status s) {
                         result = std::move(s);
                         called = true;
                       });
  bed.simulator().run_for(Duration::seconds(1));
  b.wifi().leave();
  bed.simulator().run_for(Duration::seconds(1));
  EXPECT_TRUE(called);
  EXPECT_FALSE(result.is_ok());
}

TEST_F(MeshFlowTest, PeerMovingOutOfRangeFailsFlow) {
  auto& a = joined_device("a", {0, 0});
  auto& b = joined_device("b", {10, 0});
  settle();
  Status result = Status::ok();
  bool called = false;
  bed.mesh().open_flow(a.wifi(), b.wifi().address(), 50'000'000,
                       [&](Status s) {
                         result = std::move(s);
                         called = true;
                       });
  bed.simulator().run_for(Duration::seconds(1));
  bed.world().set_position(b.node(), {1000, 0});
  bed.simulator().run_for(Duration::seconds(2));  // validator notices
  EXPECT_TRUE(called);
  EXPECT_FALSE(result.is_ok());
}

TEST_F(MeshFlowTest, CancelledFlowReportsNothing) {
  auto& a = joined_device("a", {0, 0});
  auto& b = joined_device("b", {10, 0});
  settle();
  bool called = false;
  auto flow = bed.mesh().open_flow(a.wifi(), b.wifi().address(), 50'000'000,
                                   [&](Status) { called = true; });
  ASSERT_TRUE(flow.is_ok());
  bed.simulator().run_for(Duration::millis(100));
  bed.mesh().cancel_flow(flow.value());
  EXPECT_EQ(bed.mesh().active_flow_count(), 0u);
  bed.simulator().run_for(Duration::seconds(10));
  EXPECT_FALSE(called);
}

TEST_F(MeshFlowTest, SmallUnicastDatagramDelivery) {
  auto& a = joined_device("a", {0, 0});
  auto& b = joined_device("b", {10, 0});
  settle();
  Bytes got;
  b.wifi().add_datagram_handler(
      [&](const MeshAddress&, const Bytes& payload, bool multicast) {
        if (!multicast) got = payload;
      });
  ASSERT_TRUE(
      bed.mesh().send_datagram(a.wifi(), b.wifi().address(), Bytes{5, 5})
          .is_ok());
  bed.simulator().run_for(Duration::millis(100));
  EXPECT_EQ(got, (Bytes{5, 5}));
}

TEST_F(MeshFlowTest, TransferEnergyChargedToBothEndpoints) {
  auto& a = joined_device("a", {0, 0});
  auto& b = joined_device("b", {10, 0});
  settle();
  TimePoint t0 = bed.simulator().now();
  bed.mesh().open_flow(a.wifi(), b.wifi().address(), 8'100'000, nullptr);
  bed.simulator().run_for(Duration::seconds(3));
  double standby = bed.calibration().wifi_standby_ma;
  double a_extra =
      a.meter().average_ma(t0, t0 + Duration::seconds(1)) - standby;
  double b_extra =
      b.meter().average_ma(t0, t0 + Duration::seconds(1)) - standby;
  EXPECT_GT(a_extra, 50.0);  // sender tx-busy
  EXPECT_GT(b_extra, 50.0);  // receiver rx-busy
}

}  // namespace
}  // namespace omni::radio
