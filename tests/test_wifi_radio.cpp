#include <gtest/gtest.h>

#include "net/testbed.h"
#include "radio/mesh.h"
#include "radio/wifi_radio.h"

namespace omni::radio {
namespace {

class WifiRadioTest : public ::testing::Test {
 protected:
  net::Testbed bed{4};
};

TEST_F(WifiRadioTest, ScanTakesCalibratedDurationAndEnergy) {
  auto& a = bed.add_device("a", {0, 0});
  a.wifi().set_powered(true);
  TimePoint t0 = bed.simulator().now();
  TimePoint done;
  a.wifi().scan([&](std::vector<MeshNetwork*>) {
    done = bed.simulator().now();
  });
  EXPECT_TRUE(a.wifi().management_busy());
  bed.simulator().run_for(Duration::seconds(5));
  EXPECT_EQ(done - t0, bed.calibration().wifi_scan_duration);
  EXPECT_FALSE(a.wifi().management_busy());
  // Scan current on top of standby for the scan window.
  double avg = a.meter().average_ma(t0, done);
  EXPECT_NEAR(avg,
              bed.calibration().wifi_standby_ma + bed.calibration().wifi_scan_ma,
              1e-6);
}

TEST_F(WifiRadioTest, ScanSeesMeshesWithMembersInRange) {
  auto& a = bed.add_device("a", {0, 0});
  auto& b = bed.add_device("b", {50, 0});
  a.wifi().set_powered(true);
  b.wifi().set_powered(true);
  b.wifi().join(bed.mesh(), [](Status) {});
  bed.simulator().run_for(Duration::seconds(1));

  std::vector<MeshNetwork*> found;
  a.wifi().scan([&](std::vector<MeshNetwork*> meshes) {
    found = std::move(meshes);
  });
  bed.simulator().run_for(Duration::seconds(5));
  ASSERT_EQ(found.size(), 1u);
  EXPECT_EQ(found[0], &bed.mesh());
}

TEST_F(WifiRadioTest, ScanFindsNothingWhenMembersOutOfRange) {
  auto& a = bed.add_device("a", {0, 0});
  auto& b = bed.add_device("b", {500, 0});  // beyond wifi_range_m
  a.wifi().set_powered(true);
  b.wifi().set_powered(true);
  b.wifi().join(bed.mesh(), [](Status) {});
  bed.simulator().run_for(Duration::seconds(1));

  std::vector<MeshNetwork*> found{nullptr};
  a.wifi().scan([&](std::vector<MeshNetwork*> meshes) {
    found = std::move(meshes);
  });
  bed.simulator().run_for(Duration::seconds(5));
  EXPECT_TRUE(found.empty());
}

TEST_F(WifiRadioTest, JoinAddsMembershipAfterDelay) {
  auto& a = bed.add_device("a", {0, 0});
  a.wifi().set_powered(true);
  TimePoint t0 = bed.simulator().now();
  TimePoint done;
  bool ok = false;
  a.wifi().join(bed.mesh(), [&](Status s) {
    ok = s.is_ok();
    done = bed.simulator().now();
  });
  EXPECT_EQ(a.wifi().mesh(), nullptr);  // not yet
  bed.simulator().run_for(Duration::seconds(2));
  EXPECT_TRUE(ok);
  EXPECT_EQ(done - t0, bed.calibration().wifi_join_duration);
  EXPECT_EQ(a.wifi().mesh(), &bed.mesh());
  EXPECT_TRUE(bed.mesh().is_member(a.wifi()));
}

TEST_F(WifiRadioTest, ManagementOpsAreSerialized) {
  auto& a = bed.add_device("a", {0, 0});
  a.wifi().set_powered(true);
  std::vector<int> order;
  a.wifi().scan([&](std::vector<MeshNetwork*>) { order.push_back(1); });
  a.wifi().join(bed.mesh(), [&](Status) { order.push_back(2); });
  a.wifi().scan([&](std::vector<MeshNetwork*>) { order.push_back(3); });
  bed.simulator().run_for(Duration::seconds(10));
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  // Total time = scan + join + scan.
  const auto& cal = bed.calibration();
  Duration expected = cal.wifi_scan_duration * 2.0 + cal.wifi_join_duration;
  (void)expected;
}

TEST_F(WifiRadioTest, LeaveRemovesMembership) {
  auto& a = bed.add_device("a", {0, 0});
  a.wifi().set_powered(true);
  a.wifi().join(bed.mesh(), [](Status) {});
  bed.simulator().run_for(Duration::seconds(1));
  ASSERT_TRUE(bed.mesh().is_member(a.wifi()));
  a.wifi().leave();
  EXPECT_FALSE(bed.mesh().is_member(a.wifi()));
  EXPECT_EQ(a.wifi().mesh(), nullptr);
}

TEST_F(WifiRadioTest, PowerOffAbortsQueuedOps) {
  auto& a = bed.add_device("a", {0, 0});
  a.wifi().set_powered(true);
  bool join_failed = false;
  a.wifi().scan([](std::vector<MeshNetwork*>) {});
  a.wifi().join(bed.mesh(),
                [&](Status s) { join_failed = !s.is_ok(); });
  a.wifi().set_powered(false);
  bed.simulator().run_for(Duration::seconds(10));
  EXPECT_TRUE(join_failed);
  EXPECT_EQ(a.wifi().mesh(), nullptr);
}

TEST_F(WifiRadioTest, OpsWhileOffFailImmediately) {
  auto& a = bed.add_device("a", {0, 0});
  bool scan_empty = false;
  bool join_err = false;
  a.wifi().scan([&](std::vector<MeshNetwork*> found) {
    scan_empty = found.empty();
  });
  a.wifi().join(bed.mesh(), [&](Status s) { join_err = !s.is_ok(); });
  EXPECT_TRUE(scan_empty);
  EXPECT_TRUE(join_err);
}

TEST_F(WifiRadioTest, StandbyDrawWhilePowered) {
  auto& a = bed.add_device("a", {0, 0});
  a.wifi().set_powered(true);
  bed.simulator().run_for(Duration::seconds(10));
  a.wifi().set_powered(false);
  bed.simulator().run_for(Duration::seconds(10));
  double total = a.meter().total_mAs(TimePoint::origin(),
                                     bed.simulator().now());
  EXPECT_NEAR(total, bed.calibration().wifi_standby_ma * 10, 1e-6);
}

TEST_F(WifiRadioTest, JoinSwitchesMeshes) {
  auto& a = bed.add_device("a", {0, 0});
  auto& other = bed.wifi_system().create_mesh("other-mesh");
  a.wifi().set_powered(true);
  a.wifi().join(bed.mesh(), [](Status) {});
  bed.simulator().run_for(Duration::seconds(1));
  a.wifi().join(other, [](Status) {});
  bed.simulator().run_for(Duration::seconds(1));
  EXPECT_EQ(a.wifi().mesh(), &other);
  EXPECT_FALSE(bed.mesh().is_member(a.wifi()));
  EXPECT_TRUE(other.is_member(a.wifi()));
}

}  // namespace
}  // namespace omni::radio
