// Golden-trace determinism: the Figure 3 tourist scenario, run from its
// checked-in script at a fixed seed, must reproduce this exact report —
// byte for byte — on every machine and after every refactor.
//
// This is the repo's strongest regression oracle: the report folds together
// discovery counts, energy integrals, technology selection and data
// delivery across five devices and two minutes of simulated time, so any
// change to event ordering, RNG draw order, or protocol behavior shows up
// as a diff. Perf work on the sim core (slab event queue, zero-delay FIFO,
// spatial grid, allocation-free receive path) is required to keep this
// trace bit-identical.
//
// If a deliberate behavior change invalidates the trace, regenerate it with
//   ./examples/run_scenario examples/scenarios/tourist.scn
// and update kGoldenReport with the new report blocks (and say why in the
// commit message).
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>

#include "scenario/scenario.h"

namespace omni::scenario {
namespace {

constexpr const char* kScenarioPath =
    OMNI_REPO_DIR "/examples/scenarios/tourist.scn";

constexpr const char* kGoldenReport =
    "=== report t=45s ===\n"
    "  guide: peers=3 avg_mA=100.201 rx_ctx=224 rx_data=0 sends=0/0\n"
    "  tourist1: peers=3 avg_mA=100.363 rx_ctx=140 rx_data=0 sends=0/0\n"
    "  tourist2: peers=3 avg_mA=100.363 rx_ctx=140 rx_data=0 sends=0/0\n"
    "  townhall: peers=3 avg_mA=108.769 rx_ctx=121 rx_data=0 sends=0/0\n"
    "  cathedral: peers=0 avg_mA=108.769 rx_ctx=0 rx_data=0 sends=0/0\n"
    "=== report t=120s ===\n"
    "  guide: peers=3 avg_mA=99.6154 rx_ctx=632 rx_data=0 sends=0/0\n"
    "  tourist1: peers=3 avg_mA=100.72 rx_ctx=414 rx_data=1 sends=0/0\n"
    "  tourist2: peers=3 avg_mA=100.72 rx_ctx=416 rx_data=1 sends=0/0\n"
    "  townhall: peers=0 avg_mA=107.181 rx_ctx=255 rx_data=0 sends=2/2\n"
    "  cathedral: peers=3 avg_mA=105.825 rx_ctx=156 rx_data=0 sends=0/0\n";

std::string read_scenario() {
  std::ifstream in(kScenarioPath);
  EXPECT_TRUE(in.good()) << "cannot open " << kScenarioPath;
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

TEST(GoldenTraceTest, TouristScenarioMatchesGoldenReport) {
  std::string report = run_scenario_text(read_scenario());
  EXPECT_EQ(report, kGoldenReport);
}

// Observability must be a pure observer: attaching an Omniscope (metrics,
// flight recorder, energy ledger all live) cannot move a single event,
// RNG draw, or float, so the report stays byte-identical to the golden.
TEST(GoldenTraceTest, InstrumentedRunMatchesGoldenReport) {
  std::string report =
      run_scenario_text(read_scenario(), /*threads=*/1, /*observe=*/true);
  EXPECT_EQ(report, kGoldenReport);
}

TEST(GoldenTraceTest, TouristScenarioIsRunToRunDeterministic) {
  std::string script = read_scenario();
  EXPECT_EQ(run_scenario_text(script), run_scenario_text(script));
}

}  // namespace
}  // namespace omni::scenario
