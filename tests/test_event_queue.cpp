#include <gtest/gtest.h>

#include <vector>

#include "sim/event_queue.h"

namespace omni::sim {
namespace {

TimePoint at_ms(std::int64_t ms) {
  return TimePoint::origin() + Duration::millis(ms);
}

TEST(EventQueueTest, FiresInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(at_ms(30), [&] { order.push_back(3); });
  q.schedule(at_ms(10), [&] { order.push_back(1); });
  q.schedule(at_ms(20), [&] { order.push_back(2); });
  while (!q.empty()) q.pop(TimePoint::max()).fn();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueueTest, SameInstantFiresInScheduleOrder) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    q.schedule(at_ms(5), [&order, i] { order.push_back(i); });
  }
  while (!q.empty()) q.pop(TimePoint::max()).fn();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(EventQueueTest, CancelPreventsExecution) {
  EventQueue q;
  bool ran = false;
  EventHandle h = q.schedule(at_ms(1), [&] { ran = true; });
  EXPECT_TRUE(h.pending());
  h.cancel();
  EXPECT_FALSE(h.pending());
  EXPECT_TRUE(q.empty());
  EXPECT_FALSE(ran);
}

TEST(EventQueueTest, CancelledEventsSkippedOnPop) {
  EventQueue q;
  std::vector<int> order;
  auto h1 = q.schedule(at_ms(1), [&] { order.push_back(1); });
  q.schedule(at_ms(2), [&] { order.push_back(2); });
  h1.cancel();
  EXPECT_EQ(q.size(), 1u);
  EXPECT_EQ(q.next_time(), at_ms(2));
  q.pop(TimePoint::max()).fn();
  EXPECT_EQ(order, (std::vector<int>{2}));
}

TEST(EventQueueTest, PopConsumesHandle) {
  EventQueue q;
  EventHandle h = q.schedule(at_ms(1), [] {});
  auto popped = q.pop(TimePoint::max());
  EXPECT_FALSE(h.pending());  // consumed, not cancellable anymore
  popped.fn();
}

TEST(EventQueueTest, NextTimeOnEmptyIsMax) {
  EventQueue q;
  EXPECT_EQ(q.next_time(), TimePoint::max());
}

TEST(EventQueueTest, DefaultHandleIsInert) {
  EventHandle h;
  EXPECT_FALSE(h.pending());
  h.cancel();  // no-op, no crash
}

TEST(EventQueueTest, CancelTwiceIsSafe) {
  EventQueue q;
  auto h = q.schedule(at_ms(1), [] {});
  h.cancel();
  h.cancel();
  EXPECT_TRUE(q.empty());
}

TEST(EventQueueTest, StaleHandleCannotCancelReusedSlot) {
  EventQueue q;
  bool second_ran = false;
  EventHandle h1 = q.schedule(at_ms(1), [] {});
  h1.cancel();
  // The freed slot is recycled; the stale handle must not reach the new
  // occupant.
  EventHandle h2 = q.schedule(at_ms(2), [&] { second_ran = true; });
  h1.cancel();
  EXPECT_FALSE(h1.pending());
  EXPECT_TRUE(h2.pending());
  q.pop(TimePoint::max()).fn();
  EXPECT_TRUE(second_ran);
}

TEST(EventQueueTest, PeakSizeTracksHighWaterMark) {
  EventQueue q;
  std::vector<EventHandle> hs;
  for (int i = 0; i < 50; ++i) hs.push_back(q.schedule(at_ms(i), [] {}));
  for (auto& h : hs) h.cancel();
  q.schedule(at_ms(99), [] {});
  EXPECT_EQ(q.size(), 1u);
  EXPECT_EQ(q.peak_size(), 50u);
}

// The memory-growth regression: 100k schedule+cancel churn cycles of a
// periodic-timer workload (a bounded number live at any instant) must not
// grow the slab or the heap with the churn count. The pre-slab queue kept a
// dead entry per cancellation until its fire time drained it.
TEST(EventQueueTest, ChurnOf100kPeriodicEventsKeepsSlabBounded) {
  EventQueue q;
  constexpr int kLive = 100;
  constexpr int kCycles = 100'000;
  std::vector<EventHandle> live;
  live.reserve(kLive);
  for (int i = 0; i < kLive; ++i) {
    live.push_back(q.schedule(at_ms(i), [] {}));
  }
  for (int i = 0; i < kCycles; ++i) {
    // Reschedule one timer: cancel, then schedule its next period — the
    // beacon/maintenance pattern that once accumulated dead heap entries.
    int k = i % kLive;
    live[k].cancel();
    live[k] = q.schedule(at_ms(kLive + i), [] {});
  }
  EXPECT_EQ(q.size(), static_cast<std::size_t>(kLive));
  EXPECT_EQ(q.peak_size(), static_cast<std::size_t>(kLive));
  // The slab holds a slot per *live* event (plus free-list slack), not one
  // per historical schedule.
  EXPECT_LE(q.slab_capacity(), static_cast<std::size_t>(2 * kLive));
}

TEST(EventQueueTest, ImmediateEventsFireAfterDueHeapEvents) {
  EventQueue q;
  std::vector<int> order;
  TimePoint now = at_ms(10);
  // Heap events scheduled for `now` before the clock reached it...
  q.schedule(now, [&] { order.push_back(1); });
  q.schedule(now, [&] { order.push_back(2); });
  // ...fire ahead of zero-delay events queued at `now`, which fire ahead of
  // anything later.
  q.schedule_now(now, [&] { order.push_back(3); });
  q.schedule_now(now, [&] { order.push_back(4); });
  q.schedule(at_ms(20), [&] { order.push_back(5); });
  while (!q.empty()) {
    auto popped = q.pop(now);
    now = popped.at;
    popped.fn();
  }
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3, 4, 5}));
}

TEST(EventQueueTest, ImmediateEventsCancelable) {
  EventQueue q;
  std::vector<int> order;
  TimePoint now = at_ms(0);
  EventHandle h1 = q.schedule_now(now, [&] { order.push_back(1); });
  EventHandle h2 = q.schedule_now(now, [&] { order.push_back(2); });
  EventHandle h3 = q.schedule_now(now, [&] { order.push_back(3); });
  EXPECT_TRUE(q.has_immediate());
  EXPECT_EQ(q.size(), 3u);
  h2.cancel();
  EXPECT_FALSE(h2.pending());
  EXPECT_EQ(q.size(), 2u);
  while (!q.empty()) q.pop(now).fn();
  EXPECT_EQ(order, (std::vector<int>{1, 3}));
  EXPECT_TRUE(h1.pending() == false && h3.pending() == false);
}

TEST(EventQueueTest, ImmediateFifoRecyclesItsStorage) {
  EventQueue q;
  TimePoint now = at_ms(0);
  // Sustained same-instant wakeup traffic (the dominant event class in a
  // large simulation) must recycle FIFO storage instead of growing it.
  for (int round = 0; round < 10'000; ++round) {
    for (int i = 0; i < 8; ++i) q.schedule_now(now, [] {});
    while (!q.empty()) q.pop(now).fn();
  }
  EXPECT_LE(q.slab_capacity(), 64u);
  EXPECT_EQ(q.peak_size(), 8u);
}

TEST(EventQueueTest, EmptyAndSizeCoverBothStores) {
  EventQueue q;
  TimePoint now = at_ms(0);
  q.schedule(at_ms(5), [] {});
  q.schedule_now(now, [] {});
  EXPECT_EQ(q.size(), 2u);
  EXPECT_FALSE(q.empty());
  EXPECT_TRUE(q.has_immediate());
  q.pop(now).fn();  // the immediate (heap event is not yet due at t=0)
  EXPECT_FALSE(q.has_immediate());
  EXPECT_EQ(q.size(), 1u);
  q.pop(TimePoint::max()).fn();
  EXPECT_TRUE(q.empty());
}

}  // namespace
}  // namespace omni::sim
