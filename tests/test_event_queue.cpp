#include <gtest/gtest.h>

#include <vector>

#include "sim/event_queue.h"

namespace omni::sim {
namespace {

TimePoint at_ms(std::int64_t ms) {
  return TimePoint::origin() + Duration::millis(ms);
}

TEST(EventQueueTest, FiresInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(at_ms(30), [&] { order.push_back(3); });
  q.schedule(at_ms(10), [&] { order.push_back(1); });
  q.schedule(at_ms(20), [&] { order.push_back(2); });
  while (!q.empty()) q.pop().fn();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueueTest, SameInstantFiresInScheduleOrder) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    q.schedule(at_ms(5), [&order, i] { order.push_back(i); });
  }
  while (!q.empty()) q.pop().fn();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(EventQueueTest, CancelPreventsExecution) {
  EventQueue q;
  bool ran = false;
  EventHandle h = q.schedule(at_ms(1), [&] { ran = true; });
  EXPECT_TRUE(h.pending());
  h.cancel();
  EXPECT_FALSE(h.pending());
  EXPECT_TRUE(q.empty());
  EXPECT_FALSE(ran);
}

TEST(EventQueueTest, CancelledEventsSkippedOnPop) {
  EventQueue q;
  std::vector<int> order;
  auto h1 = q.schedule(at_ms(1), [&] { order.push_back(1); });
  q.schedule(at_ms(2), [&] { order.push_back(2); });
  h1.cancel();
  EXPECT_EQ(q.size(), 1u);
  EXPECT_EQ(q.next_time(), at_ms(2));
  q.pop().fn();
  EXPECT_EQ(order, (std::vector<int>{2}));
}

TEST(EventQueueTest, PopConsumesHandle) {
  EventQueue q;
  EventHandle h = q.schedule(at_ms(1), [] {});
  auto popped = q.pop();
  EXPECT_FALSE(h.pending());  // consumed, not cancellable anymore
  popped.fn();
}

TEST(EventQueueTest, NextTimeOnEmptyIsMax) {
  EventQueue q;
  EXPECT_EQ(q.next_time(), TimePoint::max());
}

TEST(EventQueueTest, DefaultHandleIsInert) {
  EventHandle h;
  EXPECT_FALSE(h.pending());
  h.cancel();  // no-op, no crash
}

TEST(EventQueueTest, CancelTwiceIsSafe) {
  EventQueue q;
  auto h = q.schedule(at_ms(1), [] {});
  h.cancel();
  h.cancel();
  EXPECT_TRUE(q.empty());
}

}  // namespace
}  // namespace omni::sim
