#include <gtest/gtest.h>

#include "net/infra.h"
#include "net/testbed.h"

namespace omni::net {
namespace {

class InfraTest : public ::testing::Test {
 protected:
  InfraTest() : infra(bed.simulator(), bed.calibration()) {}
  Testbed bed{6};
  InfraNetwork infra;
};

TEST_F(InfraTest, DownloadTimeMatchesRateExactly) {
  auto& dev = bed.add_device("a", {0, 0});
  dev.wifi().set_powered(true);
  TimePoint done;
  ASSERT_TRUE(infra.fetch_chunk(dev.wifi(), 0, 1'000'000, 100e3,
                                [&](std::uint64_t) {
                                  done = bed.simulator().now();
                                })
                  .is_ok());
  bed.simulator().run_for(Duration::seconds(30));
  EXPECT_DOUBLE_EQ((done - TimePoint::origin()).as_seconds(), 10.0);
}

TEST_F(InfraTest, ChunksServedFifoPerDevice) {
  auto& dev = bed.add_device("a", {0, 0});
  dev.wifi().set_powered(true);
  std::vector<std::uint64_t> order;
  for (std::uint64_t id = 0; id < 3; ++id) {
    infra.fetch_chunk(dev.wifi(), id, 100'000, 100e3,
                      [&](std::uint64_t done_id) { order.push_back(done_id); });
  }
  EXPECT_EQ(infra.pending_count(dev.wifi()), 2u);  // one in flight
  bed.simulator().run_for(Duration::seconds(10));
  EXPECT_EQ(order, (std::vector<std::uint64_t>{0, 1, 2}));
}

TEST_F(InfraTest, DevicesHaveIndependentPipes) {
  auto& a = bed.add_device("a", {0, 0});
  auto& b = bed.add_device("b", {10, 0});
  a.wifi().set_powered(true);
  b.wifi().set_powered(true);
  TimePoint a_done, b_done;
  infra.fetch_chunk(a.wifi(), 0, 500'000, 100e3,
                    [&](std::uint64_t) { a_done = bed.simulator().now(); });
  infra.fetch_chunk(b.wifi(), 0, 500'000, 100e3,
                    [&](std::uint64_t) { b_done = bed.simulator().now(); });
  bed.simulator().run_for(Duration::seconds(10));
  // Both finish in 5 s: no sharing between pipes.
  EXPECT_DOUBLE_EQ((a_done - TimePoint::origin()).as_seconds(), 5.0);
  EXPECT_DOUBLE_EQ((b_done - TimePoint::origin()).as_seconds(), 5.0);
}

TEST_F(InfraTest, CancelPendingKeepsInFlight) {
  auto& dev = bed.add_device("a", {0, 0});
  dev.wifi().set_powered(true);
  int completed = 0;
  for (std::uint64_t id = 0; id < 5; ++id) {
    infra.fetch_chunk(dev.wifi(), id, 100'000, 100e3,
                      [&](std::uint64_t) { ++completed; });
  }
  EXPECT_EQ(infra.cancel_pending(dev.wifi()), 4u);
  bed.simulator().run_for(Duration::seconds(30));
  EXPECT_EQ(completed, 1);  // the in-flight chunk still lands
}

TEST_F(InfraTest, RequiresPoweredRadio) {
  auto& dev = bed.add_device("a", {0, 0});
  EXPECT_FALSE(
      infra.fetch_chunk(dev.wifi(), 0, 1000, 100e3, nullptr).is_ok());
}

TEST_F(InfraTest, LowRateDownloadChargesStreamDuty) {
  auto& dev = bed.add_device("a", {0, 0});
  dev.wifi().set_powered(true);
  infra.fetch_chunk(dev.wifi(), 0, 1'000'000, 100e3, nullptr);
  bed.simulator().run_for(Duration::seconds(10));
  const auto& cal = bed.calibration();
  double avg = dev.meter().average_ma(TimePoint::origin(),
                                      bed.simulator().now()) -
               cal.wifi_standby_ma;
  // ~stream_duty of receive current plus a little airtime.
  double expected = cal.wifi_receive_ma * cal.wifi_stream_duty;
  EXPECT_NEAR(avg, expected, expected * 0.2);
}

}  // namespace
}  // namespace omni::net
