#include <gtest/gtest.h>

#include <vector>

#include "sim/simulator.h"

namespace omni::sim {
namespace {

TEST(SimulatorTest, ClockAdvancesWithEvents) {
  Simulator sim;
  TimePoint seen;
  sim.after(Duration::millis(5), [&] { seen = sim.now(); });
  sim.run();
  EXPECT_EQ(seen, TimePoint::origin() + Duration::millis(5));
  EXPECT_EQ(sim.now(), seen);
}

TEST(SimulatorTest, RunUntilStopsAtDeadline) {
  Simulator sim;
  int ran = 0;
  sim.after(Duration::millis(10), [&] { ++ran; });
  sim.after(Duration::millis(50), [&] { ++ran; });
  sim.run_until(TimePoint::origin() + Duration::millis(20));
  EXPECT_EQ(ran, 1);
  // Clock lands exactly on the deadline even with no event there.
  EXPECT_EQ(sim.now(), TimePoint::origin() + Duration::millis(20));
  sim.run();
  EXPECT_EQ(ran, 2);
}

TEST(SimulatorTest, RunForIsRelative) {
  Simulator sim;
  sim.run_for(Duration::seconds(1));
  sim.run_for(Duration::seconds(1));
  EXPECT_EQ(sim.now(), TimePoint::origin() + Duration::seconds(2));
}

TEST(SimulatorTest, ZeroDelayRunsAfterCurrentEventNotReentrantly) {
  Simulator sim;
  std::vector<int> order;
  sim.after(Duration::zero(), [&] {
    order.push_back(1);
    sim.after(Duration::zero(), [&] { order.push_back(3); });
    order.push_back(2);
  });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(SimulatorTest, NegativeDelayClampsToNow) {
  Simulator sim;
  bool ran = false;
  sim.after(Duration::zero() - Duration::millis(10), [&] { ran = true; });
  sim.run();
  EXPECT_TRUE(ran);
  EXPECT_EQ(sim.now(), TimePoint::origin());
}

TEST(SimulatorTest, AtInThePastClampsToNow) {
  Simulator sim;
  sim.run_for(Duration::seconds(5));
  bool ran = false;
  sim.at(TimePoint::origin() + Duration::seconds(1), [&] { ran = true; });
  sim.run();
  EXPECT_TRUE(ran);
  EXPECT_EQ(sim.now(), TimePoint::origin() + Duration::seconds(5));
}

TEST(SimulatorTest, StopHaltsTheLoop) {
  Simulator sim;
  int ran = 0;
  sim.after(Duration::millis(1), [&] {
    ++ran;
    sim.stop();
  });
  sim.after(Duration::millis(2), [&] { ++ran; });
  sim.run();
  EXPECT_EQ(ran, 1);
  sim.run();
  EXPECT_EQ(ran, 2);
}

TEST(SimulatorTest, CancelViaHandle) {
  Simulator sim;
  bool ran = false;
  auto h = sim.after(Duration::millis(1), [&] { ran = true; });
  h.cancel();
  sim.run();
  EXPECT_FALSE(ran);
}

TEST(SimulatorTest, CountsExecutedEvents) {
  Simulator sim;
  for (int i = 0; i < 7; ++i) sim.after(Duration::millis(i), [] {});
  sim.run();
  EXPECT_EQ(sim.executed_events(), 7u);
}

TEST(SimulatorTest, SeededRngIsDeterministic) {
  Simulator a(123), b(123), c(124);
  double va = a.rng().uniform();
  double vb = b.rng().uniform();
  double vc = c.rng().uniform();
  EXPECT_EQ(va, vb);
  EXPECT_NE(va, vc);
}

}  // namespace
}  // namespace omni::sim
