// The Disseminate-like application: chunk bookkeeping, metadata-driven
// exchange, infrastructure backfill policy, and full-file completion over
// both unicast and broadcast sharing.
#include <gtest/gtest.h>

#include <memory>

#include "apps/disseminate.h"
#include "baselines/omni_stack.h"
#include "baselines/sp_wifi_node.h"
#include "net/infra.h"
#include "net/testbed.h"
#include "omni/omni_node.h"

namespace omni::apps {
namespace {

TEST(ChunkStoreTest, Basics) {
  ChunkStore store(1'000'000, 300'000);
  EXPECT_EQ(store.chunk_count(), 4u);  // 300+300+300+100
  EXPECT_EQ(store.size_of(0), 300'000u);
  EXPECT_EQ(store.size_of(3), 100'000u);
  EXPECT_FALSE(store.complete());
  EXPECT_TRUE(store.add(1));
  EXPECT_FALSE(store.add(1));  // duplicate
  EXPECT_TRUE(store.has(1));
  EXPECT_EQ(store.have_count(), 1u);
  EXPECT_EQ(store.first_missing(), 0u);
  EXPECT_EQ(store.first_missing(1), 2u);
  EXPECT_EQ(store.missing().size(), 3u);
}

TEST(ChunkStoreTest, BitmapRoundTrip) {
  ChunkStore store(10 * 100, 100);  // 10 chunks
  store.add(0);
  store.add(3);
  store.add(9);
  Bytes bm = store.bitmap();
  EXPECT_EQ(bm.size(), 2u);
  auto parsed = ChunkStore::parse_bitmap(bm, 10);
  for (std::uint64_t i = 0; i < 10; ++i) {
    EXPECT_EQ(parsed[i], store.has(i)) << "chunk " << i;
  }
}

TEST(ChunkStoreTest, ParseShortBitmapIsSafe) {
  auto parsed = ChunkStore::parse_bitmap(Bytes{0xFF}, 16);
  for (int i = 0; i < 8; ++i) EXPECT_TRUE(parsed[i]);
  for (int i = 8; i < 16; ++i) EXPECT_FALSE(parsed[i]);
}

TEST(ChunkStoreTest, CompleteFile) {
  ChunkStore store(500, 100);
  for (std::uint64_t i = 0; i < 5; ++i) store.add(i);
  EXPECT_TRUE(store.complete());
  EXPECT_EQ(store.first_missing(), std::nullopt);
}

class DisseminateAppTest : public ::testing::Test {
 protected:
  DisseminateAppTest() : infra(bed.simulator(), bed.calibration()) {}

  DisseminateConfig small_config() {
    DisseminateConfig config;
    config.file_bytes = 2'000'000;  // 8 chunks of 250 KB
    config.chunk_bytes = 250'000;
    config.infra_rate_Bps = 500e3;
    return config;
  }

  net::Testbed bed{41};
  net::InfraNetwork infra;
};

TEST_F(DisseminateAppTest, TwoOmniDevicesCompleteViaExchange) {
  auto& da = bed.add_device("a", {0, 0});
  auto& db = bed.add_device("b", {10, 0});
  OmniNode na(da, bed.mesh());
  OmniNode nb(db, bed.mesh());
  baselines::OmniStack sa(na), sb(nb);

  DisseminateConfig config = small_config();
  DisseminateApp app_a(sa, infra, da.wifi(), bed.simulator(), config, 0, 4);
  DisseminateApp app_b(sb, infra, db.wifi(), bed.simulator(), config, 4, 4);
  app_a.start();
  app_b.start();
  bed.simulator().run_for(Duration::seconds(60));

  EXPECT_TRUE(app_a.complete());
  EXPECT_TRUE(app_b.complete());
  // Each device pulled (at most) its half from infra and got the rest D2D.
  EXPECT_GE(app_a.chunks_from_d2d(), 3u);
  EXPECT_GE(app_b.chunks_from_d2d(), 3u);
  // Completion near the 2 s assigned-download time, not the 4 s solo time.
  EXPECT_LT(app_a.completed_at().as_seconds(), 3.5);
}

TEST_F(DisseminateAppTest, SoloDeviceFallsBackToInfraEntirely) {
  auto& da = bed.add_device("a", {0, 0});
  OmniNode na(da, bed.mesh());
  baselines::OmniStack sa(na);
  DisseminateConfig config = small_config();
  // Assigned only the first half; backfill must fetch the rest.
  DisseminateApp app(sa, infra, da.wifi(), bed.simulator(), config, 0, 4);
  app.start();
  bed.simulator().run_for(Duration::seconds(60));
  EXPECT_TRUE(app.complete());
  EXPECT_EQ(app.chunks_from_infra(), 8u);
  EXPECT_EQ(app.chunks_from_d2d(), 0u);
}

TEST_F(DisseminateAppTest, BackfillDisabledLeavesFileIncomplete) {
  auto& da = bed.add_device("a", {0, 0});
  OmniNode na(da, bed.mesh());
  baselines::OmniStack sa(na);
  DisseminateConfig config = small_config();
  config.infra_backfill = false;
  DisseminateApp app(sa, infra, da.wifi(), bed.simulator(), config, 0, 4);
  app.start();
  bed.simulator().run_for(Duration::seconds(60));
  EXPECT_FALSE(app.complete());
  EXPECT_EQ(app.store().have_count(), 4u);
}

TEST_F(DisseminateAppTest, HealthyD2dSuppressesBackfill) {
  // Two devices with fast TCP sharing: nobody should re-download a peer's
  // chunk from the infrastructure.
  auto& da = bed.add_device("a", {0, 0});
  auto& db = bed.add_device("b", {10, 0});
  OmniNode na(da, bed.mesh());
  OmniNode nb(db, bed.mesh());
  baselines::OmniStack sa(na), sb(nb);
  DisseminateConfig config = small_config();
  DisseminateApp app_a(sa, infra, da.wifi(), bed.simulator(), config, 0, 4);
  DisseminateApp app_b(sb, infra, db.wifi(), bed.simulator(), config, 4, 4);
  app_a.start();
  app_b.start();
  bed.simulator().run_for(Duration::seconds(60));
  EXPECT_TRUE(app_a.complete());
  EXPECT_LE(app_a.chunks_from_infra(), 5u);  // its 4 + at most one backfill
}

TEST_F(DisseminateAppTest, BroadcastSharingCompletesOverSpWifi) {
  auto& da = bed.add_device("a", {0, 0});
  auto& db = bed.add_device("b", {10, 0});
  baselines::SpWifiNode sa(da, bed.mesh()), sb(db, bed.mesh());
  DisseminateConfig config = small_config();
  config.share_via_broadcast = true;
  config.infra_backfill = false;  // force pure multicast sharing
  DisseminateApp app_a(sa, infra, da.wifi(), bed.simulator(), config, 0, 4);
  DisseminateApp app_b(sb, infra, db.wifi(), bed.simulator(), config, 4, 4);
  app_a.start();
  app_b.start();
  bed.simulator().run_for(Duration::seconds(60));
  EXPECT_TRUE(app_a.complete());
  EXPECT_TRUE(app_b.complete());
  EXPECT_GE(app_a.chunks_from_d2d(), 4u);
  // Multicast sharing is slow: completion takes far longer than the 2 s of
  // assigned downloading.
  EXPECT_GT(app_a.completed_at().as_seconds(), 6.0);
}

TEST_F(DisseminateAppTest, DuplicateChunksAreCountedNotDoubleStored) {
  auto& da = bed.add_device("a", {0, 0});
  auto& db = bed.add_device("b", {10, 0});
  auto& dc = bed.add_device("c", {20, 0});
  OmniNode na(da, bed.mesh()), nb(db, bed.mesh()), nc(dc, bed.mesh());
  baselines::OmniStack sa(na), sb(nb), sc(nc);
  DisseminateConfig config = small_config();
  // a and b both assigned the SAME range: their pushes to c duplicate.
  DisseminateApp app_a(sa, infra, da.wifi(), bed.simulator(), config, 0, 8);
  DisseminateApp app_b(sb, infra, db.wifi(), bed.simulator(), config, 0, 8);
  DisseminateApp app_c(sc, infra, dc.wifi(), bed.simulator(), config, 0, 0);
  app_a.start();
  app_b.start();
  app_c.start();
  bed.simulator().run_for(Duration::seconds(120));
  EXPECT_TRUE(app_c.complete());
  EXPECT_EQ(app_c.store().have_count(), 8u);
  EXPECT_GT(app_c.duplicate_chunks(), 0u);
}


TEST_F(DisseminateAppTest, RarestFirstStillCompletes) {
  auto& da = bed.add_device("a", {0, 0});
  auto& db = bed.add_device("b", {10, 0});
  auto& dc = bed.add_device("c", {20, 0});
  OmniNode na(da, bed.mesh()), nb(db, bed.mesh()), nc(dc, bed.mesh());
  baselines::OmniStack sa(na), sb(nb), sc(nc);
  DisseminateConfig config = small_config();
  config.push_order = DisseminateConfig::PushOrder::kRarestFirst;
  DisseminateApp app_a(sa, infra, da.wifi(), bed.simulator(), config, 0, 3);
  DisseminateApp app_b(sb, infra, db.wifi(), bed.simulator(), config, 3, 3);
  DisseminateApp app_c(sc, infra, dc.wifi(), bed.simulator(), config, 6, 2);
  app_a.start();
  app_b.start();
  app_c.start();
  bed.simulator().run_for(Duration::seconds(60));
  EXPECT_TRUE(app_a.complete());
  EXPECT_TRUE(app_b.complete());
  EXPECT_TRUE(app_c.complete());
}

TEST_F(DisseminateAppTest, RarestFirstPrefersUnreplicatedChunks) {
  // Construct the scoring directly: one peer holds chunk 0, nobody holds
  // chunk 1 -> rarest-first must pick chunk 1 first, sequential chunk 0.
  auto& da = bed.add_device("a", {0, 0});
  OmniNode na(da, bed.mesh());
  baselines::OmniStack sa(na);
  DisseminateConfig config = small_config();
  DisseminateApp app(sa, infra, da.wifi(), bed.simulator(), config, 0, 0);
  // (White-box check via behavior would need peers; the completion tests
  // above cover integration. Here we at least pin the config plumbing.)
  EXPECT_EQ(config.push_order, DisseminateConfig::PushOrder::kSequential);
  config.push_order = DisseminateConfig::PushOrder::kRarestFirst;
  EXPECT_EQ(config.push_order, DisseminateConfig::PushOrder::kRarestFirst);
}

}  // namespace
}  // namespace omni::apps
