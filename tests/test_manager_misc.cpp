// Manager odds and ends: graceful Developer-API behavior after stop(),
// beacon-info integrity with a NAN slot present, and multi-mesh WiFi
// environments.
#include <gtest/gtest.h>

#include "net/testbed.h"
#include "omni/omni_node.h"

namespace omni {
namespace {

TEST(ManagerStoppedTest, DeveloperApiFailsGracefullyAfterStop) {
  net::Testbed bed(701);
  auto& d = bed.add_device("a", {0, 0});
  OmniNode node(d, bed.mesh());
  node.start();
  ContextId ctx = kInvalidContext;
  node.manager().add_context(ContextParams{}, Bytes{1},
                             [&](StatusCode, const ResponseInfo& info) {
                               ctx = info.context_id;
                             });
  bed.simulator().run_for(Duration::seconds(1));
  ASSERT_NE(ctx, kInvalidContext);
  node.stop();

  std::vector<StatusCode> codes;
  auto record = [&](StatusCode code, const ResponseInfo&) {
    codes.push_back(code);
  };
  node.manager().add_context(ContextParams{}, Bytes{2}, record);
  node.manager().update_context(ctx, ContextParams{}, Bytes{3}, record);
  node.manager().remove_context(ctx, record);
  node.manager().send_data({OmniAddress{0x9}}, Bytes{4}, record);
  bed.simulator().run_for(Duration::seconds(1));

  ASSERT_EQ(codes.size(), 4u);
  EXPECT_EQ(codes[0], StatusCode::kAddContextFailure);
  EXPECT_EQ(codes[1], StatusCode::kUpdateContextFailure);
  EXPECT_EQ(codes[2], StatusCode::kRemoveContextSuccess);  // cleanup path
  EXPECT_EQ(codes[3], StatusCode::kSendDataFailure);
}

TEST(ManagerBeaconInfoTest, NanAddressDoesNotClobberMeshAddress) {
  net::Testbed bed(702);
  auto& d = bed.add_device("a", {0, 0});
  OmniNodeOptions options;
  options.ble = true;
  options.wifi_unicast = true;
  options.wifi_aware = true;
  OmniNode node(d, bed.mesh(), options);
  node.start();
  // The address beacon must carry the MESH address in its mesh slot even
  // though the NAN plugin also registered (with a different MAC).
  EXPECT_EQ(node.manager().beacon_info().mesh, d.wifi().address());
  EXPECT_EQ(node.manager().beacon_info().ble, d.ble().address());
}

TEST(ManagerBeaconInfoTest, BeaconOmitsAbsentTechnologies) {
  net::Testbed bed(703);
  auto& d = bed.add_device("a", {0, 0});
  OmniNodeOptions options;
  options.ble = true;
  options.wifi_unicast = false;
  options.wifi_multicast = false;
  options.wifi_standby = false;
  OmniNode node(d, bed.mesh(), options);
  node.start();
  EXPECT_TRUE(node.manager().beacon_info().mesh.is_zero());
  EXPECT_FALSE(node.manager().beacon_info().ble.is_zero());
}

TEST(MultiMeshTest, ScanSeesOnlyNearbyMeshes) {
  net::Testbed bed(704);
  auto& far_mesh = bed.wifi_system().create_mesh("far-mesh");
  auto& a = bed.add_device("a", {0, 0});
  auto& b = bed.add_device("b", {50, 0});
  auto& c = bed.add_device("c", {5000, 0});
  for (auto* dev : {&a, &b, &c}) dev->wifi().set_powered(true);
  b.wifi().join(bed.mesh(), [](Status) {});
  c.wifi().join(far_mesh, [](Status) {});
  bed.simulator().run_for(Duration::seconds(1));

  std::vector<radio::MeshNetwork*> found;
  a.wifi().scan([&](std::vector<radio::MeshNetwork*> meshes) {
    found = std::move(meshes);
  });
  bed.simulator().run_for(Duration::seconds(5));
  ASSERT_EQ(found.size(), 1u);
  EXPECT_EQ(found[0], &bed.mesh());
}

TEST(MultiMeshTest, FlowsAreScopedToOneMesh) {
  net::Testbed bed(705);
  auto& other = bed.wifi_system().create_mesh("other");
  auto& a = bed.add_device("a", {0, 0});
  auto& b = bed.add_device("b", {10, 0});
  a.wifi().set_powered(true);
  b.wifi().set_powered(true);
  a.wifi().join(bed.mesh(), [](Status) {});
  b.wifi().join(other, [](Status) {});
  bed.simulator().run_for(Duration::seconds(1));
  // b is not a member of a's mesh: the flow cannot even be addressed.
  auto flow = bed.mesh().open_flow(a.wifi(), b.wifi().address(), 1000,
                                   nullptr);
  EXPECT_FALSE(flow.is_ok());
}

TEST(MultiMeshTest, IndependentCapacities) {
  net::Testbed bed(706);
  auto& other = bed.wifi_system().create_mesh("other");
  double c1 = bed.mesh().effective_capacity_Bps();
  auto load = bed.mesh().register_periodic_multicast(Duration::millis(100));
  EXPECT_LT(bed.mesh().effective_capacity_Bps(), c1);
  EXPECT_DOUBLE_EQ(other.effective_capacity_Bps(), c1);
  bed.mesh().unregister_periodic_multicast(load);
}

}  // namespace
}  // namespace omni
