#include <gtest/gtest.h>

#include "sim/world.h"

namespace omni::sim {
namespace {

TEST(WorldTest, AddAndQueryNodes) {
  Simulator sim;
  World world(sim);
  NodeId a = world.add_node("a", {0, 0});
  NodeId b = world.add_node("b", {3, 4});
  EXPECT_EQ(world.node_count(), 2u);
  EXPECT_EQ(world.name(a), "a");
  EXPECT_DOUBLE_EQ(world.distance(a, b), 5.0);
  EXPECT_TRUE(world.in_range(a, b, 5.0));
  EXPECT_FALSE(world.in_range(a, b, 4.9));
}

TEST(WorldTest, Teleport) {
  Simulator sim;
  World world(sim);
  NodeId a = world.add_node("a", {0, 0});
  world.set_position(a, {10, 0});
  EXPECT_EQ(world.position(a), (Vec2{10, 0}));
}

TEST(WorldTest, LinearMotionInterpolates) {
  Simulator sim;
  World world(sim);
  NodeId a = world.add_node("a", {0, 0});
  world.move_to(a, {10, 0}, 1.0);  // 10 m at 1 m/s

  sim.run_for(Duration::seconds(5));
  EXPECT_NEAR(world.position(a).x, 5.0, 1e-9);

  sim.run_for(Duration::seconds(5));
  EXPECT_NEAR(world.position(a).x, 10.0, 1e-9);

  // Past arrival the node stays put.
  sim.run_for(Duration::seconds(100));
  EXPECT_NEAR(world.position(a).x, 10.0, 1e-9);
}

TEST(WorldTest, MoveReplacesInProgressMove) {
  Simulator sim;
  World world(sim);
  NodeId a = world.add_node("a", {0, 0});
  world.move_to(a, {10, 0}, 1.0);
  sim.run_for(Duration::seconds(5));  // at x=5
  world.move_to(a, {5, 10}, 2.0);     // turn north from current position
  sim.run_for(Duration::seconds(5));  // 10 m at 2 m/s = arrive
  EXPECT_NEAR(world.position(a).x, 5.0, 1e-9);
  EXPECT_NEAR(world.position(a).y, 10.0, 1e-9);
}

TEST(WorldTest, NeighborsWithinRange) {
  Simulator sim;
  World world(sim);
  NodeId a = world.add_node("a", {0, 0});
  world.add_node("b", {10, 0});
  world.add_node("c", {50, 0});
  world.add_node("d", {200, 0});
  auto near = world.neighbors(a, 60.0);
  EXPECT_EQ(near.size(), 2u);
  auto all = world.neighbors(a, 1000.0);
  EXPECT_EQ(all.size(), 3u);
}

TEST(WorldTest, MovingNodesChangeNeighborhoods) {
  Simulator sim;
  World world(sim);
  NodeId a = world.add_node("a", {0, 0});
  NodeId b = world.add_node("b", {100, 0});
  EXPECT_FALSE(world.in_range(a, b, 50));
  world.move_to(b, {20, 0}, 10.0);  // 80 m at 10 m/s
  sim.run_for(Duration::seconds(4));
  // At t=4, b is at x=60: still outside 50 m.
  EXPECT_FALSE(world.in_range(a, b, 50));
  sim.run_for(Duration::seconds(4));  // b arrives at x=20
  EXPECT_TRUE(world.in_range(a, b, 50));
}

TEST(WorldTest, Vec2Math) {
  Vec2 v{3, 4};
  EXPECT_DOUBLE_EQ(v.norm(), 5.0);
  EXPECT_EQ((v * 2).x, 6.0);
  EXPECT_EQ((v + Vec2{1, 1}).y, 5.0);
  EXPECT_DOUBLE_EQ(Vec2::distance({0, 0}, {0, 7}), 7.0);
}

}  // namespace
}  // namespace omni::sim
