#include <gtest/gtest.h>

#include "sim/world.h"

namespace omni::sim {
namespace {

TEST(WorldTest, AddAndQueryNodes) {
  Simulator sim;
  World world(sim);
  NodeId a = world.add_node("a", {0, 0});
  NodeId b = world.add_node("b", {3, 4});
  EXPECT_EQ(world.node_count(), 2u);
  EXPECT_EQ(world.name(a), "a");
  EXPECT_DOUBLE_EQ(world.distance(a, b), 5.0);
  EXPECT_TRUE(world.in_range(a, b, 5.0));
  EXPECT_FALSE(world.in_range(a, b, 4.9));
}

TEST(WorldTest, Teleport) {
  Simulator sim;
  World world(sim);
  NodeId a = world.add_node("a", {0, 0});
  world.set_position(a, {10, 0});
  EXPECT_EQ(world.position(a), (Vec2{10, 0}));
}

TEST(WorldTest, LinearMotionInterpolates) {
  Simulator sim;
  World world(sim);
  NodeId a = world.add_node("a", {0, 0});
  world.move_to(a, {10, 0}, 1.0);  // 10 m at 1 m/s

  sim.run_for(Duration::seconds(5));
  EXPECT_NEAR(world.position(a).x, 5.0, 1e-9);

  sim.run_for(Duration::seconds(5));
  EXPECT_NEAR(world.position(a).x, 10.0, 1e-9);

  // Past arrival the node stays put.
  sim.run_for(Duration::seconds(100));
  EXPECT_NEAR(world.position(a).x, 10.0, 1e-9);
}

TEST(WorldTest, MoveReplacesInProgressMove) {
  Simulator sim;
  World world(sim);
  NodeId a = world.add_node("a", {0, 0});
  world.move_to(a, {10, 0}, 1.0);
  sim.run_for(Duration::seconds(5));  // at x=5
  world.move_to(a, {5, 10}, 2.0);     // turn north from current position
  sim.run_for(Duration::seconds(5));  // 10 m at 2 m/s = arrive
  EXPECT_NEAR(world.position(a).x, 5.0, 1e-9);
  EXPECT_NEAR(world.position(a).y, 10.0, 1e-9);
}

TEST(WorldTest, NeighborsWithinRange) {
  Simulator sim;
  World world(sim);
  NodeId a = world.add_node("a", {0, 0});
  world.add_node("b", {10, 0});
  world.add_node("c", {50, 0});
  world.add_node("d", {200, 0});
  std::vector<NodeId> near;
  world.neighbors(a, 60.0, near);
  EXPECT_EQ(near.size(), 2u);
  std::vector<NodeId> all;
  world.neighbors(a, 1000.0, all);
  EXPECT_EQ(all.size(), 3u);
}

TEST(WorldTest, MovingNodesChangeNeighborhoods) {
  Simulator sim;
  World world(sim);
  NodeId a = world.add_node("a", {0, 0});
  NodeId b = world.add_node("b", {100, 0});
  EXPECT_FALSE(world.in_range(a, b, 50));
  world.move_to(b, {20, 0}, 10.0);  // 80 m at 10 m/s
  sim.run_for(Duration::seconds(4));
  // At t=4, b is at x=60: still outside 50 m.
  EXPECT_FALSE(world.in_range(a, b, 50));
  sim.run_for(Duration::seconds(4));  // b arrives at x=20
  EXPECT_TRUE(world.in_range(a, b, 50));
}

// --- Spatial grid / neighbor cache ------------------------------------------

// Oracle: O(n) scan with the exact distance test.
std::vector<NodeId> brute_force_near(const World& world, NodeId of,
                                     double range) {
  std::vector<NodeId> out;
  for (NodeId id = 0; id < world.node_count(); ++id) {
    if (world.distance(of, id) <= range) out.push_back(id);
  }
  return out;
}

TEST(WorldTest, NodesNearMatchesBruteForce) {
  Simulator sim;
  World world(sim, /*grid_cell_m=*/40.0);
  // Deterministic pseudo-random scatter over several cells, including exact
  // cell-boundary positions.
  std::uint64_t s = 12345;
  auto next = [&s] {
    s = s * 6364136223846793005ull + 1442695040888963407ull;
    return static_cast<double>((s >> 33) % 4000) / 10.0;  // [0, 400)
  };
  for (int i = 0; i < 80; ++i) {
    world.add_node("n" + std::to_string(i), {next(), next()});
  }
  world.add_node("edge", {80.0, 40.0});  // on a cell corner exactly
  std::vector<NodeId> got;
  for (double range : {10.0, 40.0, 95.0, 400.0}) {
    for (NodeId of = 0; of < world.node_count(); of += 7) {
      world.nodes_near(of, range, got);
      EXPECT_EQ(got, brute_force_near(world, of, range))
          << "of=" << of << " range=" << range;
    }
  }
}

TEST(WorldTest, NodesNearSpansCellBoundaries) {
  Simulator sim;
  World world(sim, /*grid_cell_m=*/40.0);
  NodeId a = world.add_node("a", {39.0, 0});   // cell (0,0)
  NodeId b = world.add_node("b", {41.0, 0});   // cell (1,0)
  NodeId c = world.add_node("c", {-39.0, 0});  // cell (-1,0)
  std::vector<NodeId> got;
  world.nodes_near(a, 5.0, got);
  EXPECT_EQ(got, (std::vector<NodeId>{a, b}));
  world.nodes_near(c, 79.0, got);  // a at 78 m, b at exactly 80 m
  EXPECT_EQ(got, (std::vector<NodeId>{a, c}));
}

TEST(WorldTest, QueriesTrackAMovingNodeMidWalk) {
  Simulator sim;
  World world(sim, /*grid_cell_m=*/40.0);
  NodeId a = world.add_node("a", {0, 0});
  NodeId b = world.add_node("b", {200, 0});
  world.move_to(b, {0, 0}, 10.0);  // 200 m at 10 m/s
  std::vector<NodeId> got;
  // Mid-segment: b's interpolated position (x=100) decides membership even
  // though the grid listed it conservatively over the whole segment.
  sim.run_for(Duration::seconds(10));
  world.nodes_near(a, 50.0, got);
  EXPECT_EQ(got, (std::vector<NodeId>{a}));
  world.nodes_near(a, 150.0, got);
  EXPECT_EQ(got, (std::vector<NodeId>{a, b}));
  sim.run_for(Duration::seconds(10));  // b arrives on top of a
  world.nodes_near(a, 50.0, got);
  EXPECT_EQ(got, (std::vector<NodeId>{a, b}));
}

TEST(WorldTest, TeleportRebucketsImmediately) {
  Simulator sim;
  World world(sim, /*grid_cell_m=*/40.0);
  NodeId a = world.add_node("a", {0, 0});
  NodeId b = world.add_node("b", {500, 500});
  std::vector<NodeId> got;
  world.nodes_near(a, 60.0, got);
  EXPECT_EQ(got, (std::vector<NodeId>{a}));
  world.set_position(b, {10, 0});
  world.nodes_near(a, 60.0, got);  // cached result must be invalidated
  EXPECT_EQ(got, (std::vector<NodeId>{a, b}));
  world.set_position(b, {500, 500});
  world.nodes_near(a, 60.0, got);
  EXPECT_EQ(got, (std::vector<NodeId>{a}));
}

TEST(WorldTest, SetGridCellSizeRebuildsBuckets) {
  Simulator sim;
  World world(sim);  // default 100 m cells
  NodeId a = world.add_node("a", {0, 0});
  world.add_node("b", {30, 0});
  world.add_node("c", {170, 0});
  std::vector<NodeId> before;
  world.nodes_near(a, 50.0, before);
  world.set_grid_cell_size(15.0);  // finer than the query range
  std::vector<NodeId> after;
  world.nodes_near(a, 50.0, after);
  EXPECT_EQ(before, after);
  EXPECT_DOUBLE_EQ(world.grid_cell_size(), 15.0);
}

TEST(WorldTest, NeighborsExcludesSelfNodesNearIncludesIt) {
  Simulator sim;
  World world(sim);
  NodeId a = world.add_node("a", {0, 0});
  world.add_node("b", {10, 0});
  std::vector<NodeId> n;
  world.neighbors(a, 50.0, n);
  EXPECT_EQ(n, (std::vector<NodeId>{1}));
  std::vector<NodeId> got;
  world.nodes_near(a, 50.0, got);
  EXPECT_EQ(got, (std::vector<NodeId>{0, 1}));
}

TEST(WorldTest, Vec2Math) {
  Vec2 v{3, 4};
  EXPECT_DOUBLE_EQ(v.norm(), 5.0);
  EXPECT_EQ((v * 2).x, 6.0);
  EXPECT_EQ((v + Vec2{1, 1}).y, 5.0);
  EXPECT_DOUBLE_EQ(Vec2::distance({0, 0}, {0, 7}), 7.0);
}

}  // namespace
}  // namespace omni::sim
