// WiFi-Aware (NAN) model and technology plugin: synchronized discovery
// windows, publish/subscribe delivery, follow-up datagrams, power-save
// attendance, and the full Omni integration (the paper's §3.2 anticipated
// replacement for multicast context transmission).
#include <gtest/gtest.h>

#include <memory>

#include "net/testbed.h"
#include "omni/omni_node.h"
#include "radio/nan.h"

namespace omni {
namespace {

class NanRadioTest : public ::testing::Test {
 protected:
  net::Testbed bed{601};
};

TEST_F(NanRadioTest, PublishesDeliverEveryWindow) {
  auto& a = bed.add_device("a", {0, 0});
  auto& b = bed.add_device("b", {50, 0});
  a.nan().set_enabled(true);
  b.nan().set_enabled(true);
  int received = 0;
  b.nan().set_receive_handler(
      [&](const NanAddress& from, const Bytes& payload) {
        EXPECT_EQ(from, a.nan().address());
        EXPECT_EQ(payload, (Bytes{1, 2}));
        ++received;
      });
  ASSERT_TRUE(a.nan().publish(Bytes{1, 2}).is_ok());
  bed.simulator().run_for(Duration::seconds(10));
  // ~19 windows in 10 s at 524 ms.
  EXPECT_GE(received, 17);
  EXPECT_LE(received, 20);
}

TEST_F(NanRadioTest, WifiRangeNotBleRange) {
  auto& a = bed.add_device("a", {0, 0});
  auto& b = bed.add_device("b", {90, 0});  // beyond BLE's 40 m, inside 100 m
  auto& c = bed.add_device("c", {150, 0});
  for (auto* d : {&a, &b, &c}) d->nan().set_enabled(true);
  int b_got = 0, c_got = 0;
  b.nan().set_receive_handler(
      [&](const NanAddress&, const Bytes&) { ++b_got; });
  c.nan().set_receive_handler(
      [&](const NanAddress&, const Bytes&) { ++c_got; });
  a.nan().publish(Bytes{7});
  bed.simulator().run_for(Duration::seconds(5));
  EXPECT_GT(b_got, 0);
  EXPECT_EQ(c_got, 0);
}

TEST_F(NanRadioTest, PayloadCeilingEnforced) {
  auto& a = bed.add_device("a", {0, 0});
  a.nan().set_enabled(true);
  std::size_t cap = bed.calibration().nan_max_payload;
  EXPECT_TRUE(a.nan().publish(Bytes(cap, 0)).is_ok());
  EXPECT_FALSE(a.nan().publish(Bytes(cap + 1, 0)).is_ok());
}

TEST_F(NanRadioTest, FollowupDeliversNextWindow) {
  auto& a = bed.add_device("a", {0, 0});
  auto& b = bed.add_device("b", {50, 0});
  a.nan().set_enabled(true);
  b.nan().set_enabled(true);
  TimePoint delivered;
  b.nan().set_receive_handler([&](const NanAddress&, const Bytes&) {
    delivered = bed.simulator().now();
  });
  bool ok = false;
  TimePoint t0 = bed.simulator().now();
  ASSERT_TRUE(a.nan()
                  .send_followup(b.nan().address(), Bytes{9},
                                 [&](Status s) { ok = s.is_ok(); })
                  .is_ok());
  bed.simulator().run_for(Duration::seconds(2));
  EXPECT_TRUE(ok);
  const auto& cal = bed.calibration();
  EXPECT_LE((delivered - t0).as_micros(),
            (cal.nan_dw_period + cal.nan_dw_duration).as_micros());
}

TEST_F(NanRadioTest, FollowupToAbsentPeerTimesOut) {
  auto& a = bed.add_device("a", {0, 0});
  a.nan().set_enabled(true);
  bool failed = false;
  a.nan().send_followup(NanAddress{0x999}, Bytes{1},
                        [&](Status s) { failed = !s.is_ok(); });
  bed.simulator().run_for(Duration::seconds(10));
  EXPECT_TRUE(failed);
}

TEST_F(NanRadioTest, DutyCycleEnergyIsLow) {
  auto& a = bed.add_device("a", {0, 0});
  a.nan().set_enabled(true);
  bed.simulator().run_for(Duration::seconds(60));
  const auto& cal = bed.calibration();
  double avg = a.meter().average_ma(TimePoint::origin(),
                                    bed.simulator().now());
  double expected = cal.wifi_receive_ma *
                    (cal.nan_dw_duration.as_seconds() /
                     cal.nan_dw_period.as_seconds());
  // ~5 mA: an order of magnitude below continuous multicast machinery.
  EXPECT_NEAR(avg, expected, expected * 0.15);
  EXPECT_LT(avg, 6.0);
}

TEST_F(NanRadioTest, PowerSaveAttendanceReducesEnergyAndReception) {
  auto& a = bed.add_device("a", {0, 0});
  auto& b = bed.add_device("b", {50, 0});
  a.nan().set_enabled(true);
  b.nan().set_enabled(true);
  b.nan().set_attendance(10);  // wake 1 window in 10
  int received = 0;
  b.nan().set_receive_handler(
      [&](const NanAddress&, const Bytes&) { ++received; });
  a.nan().publish(Bytes{5});
  bed.simulator().run_for(Duration::seconds(30));
  // ~57 windows; b attends ~5-6 of them.
  EXPECT_GE(received, 3);
  EXPECT_LE(received, 9);
  double avg = b.meter().average_ma(TimePoint::origin(),
                                    bed.simulator().now());
  EXPECT_LT(avg, 1.0);  // a tenth of full attendance
}

TEST_F(NanRadioTest, DisableStopsEverything) {
  auto& a = bed.add_device("a", {0, 0});
  auto& b = bed.add_device("b", {50, 0});
  a.nan().set_enabled(true);
  b.nan().set_enabled(true);
  int received = 0;
  b.nan().set_receive_handler(
      [&](const NanAddress&, const Bytes&) { ++received; });
  a.nan().publish(Bytes{1});
  bed.simulator().run_for(Duration::seconds(3));
  int before = received;
  EXPECT_GT(before, 0);
  a.nan().set_enabled(false);
  EXPECT_EQ(a.nan().active_publishes(), 0u);
  bed.simulator().run_for(Duration::seconds(3));
  EXPECT_EQ(received, before);
}

class NanOmniTest : public ::testing::Test {
 protected:
  OmniNodeOptions nan_options() {
    OmniNodeOptions options;
    options.ble = false;  // WiFi-only device class
    options.wifi_aware = true;
    options.wifi_unicast = true;
    return options;
  }
  net::Testbed bed{602};
};

TEST_F(NanOmniTest, NanIsPrimaryContextTechWithoutBle) {
  auto& d = bed.add_device("a", {0, 0});
  OmniNode node(d, bed.mesh(), nan_options());
  node.start();
  bed.simulator().run_for(Duration::seconds(1));
  EXPECT_TRUE(node.manager().technology_engaged(Technology::kWifiAware));
}

TEST_F(NanOmniTest, DiscoveryAndRitualFreeData) {
  // The paper's point: NAN is ND-integrated, so a NAN-discovered mesh
  // mapping is fresh — data goes straight to TCP with no 2.8 s ritual.
  auto& da = bed.add_device("a", {0, 0});
  auto& db = bed.add_device("b", {60, 0});  // beyond BLE range!
  OmniNode a(da, bed.mesh(), nan_options());
  OmniNode b(db, bed.mesh(), nan_options());
  Bytes got;
  b.manager().request_data(
      [&](const OmniAddress&, const Bytes& d) { got = d; });
  a.start();
  b.start();
  bed.simulator().run_for(Duration::seconds(3));

  const PeerEntry* peer = a.manager().peer_table().find(b.address());
  ASSERT_NE(peer, nullptr);
  EXPECT_TRUE(peer->reachable_on(Technology::kWifiAware));
  ASSERT_TRUE(peer->reachable_on(Technology::kWifiUnicast));
  EXPECT_FALSE(peer->techs.at(Technology::kWifiUnicast).requires_refresh);

  TimePoint t0 = bed.simulator().now();
  TimePoint done;
  bool ok = false;
  a.manager().send_data({b.address()}, Bytes(100'000, 0x3C),
                        [&](StatusCode code, const ResponseInfo&) {
                          ok = code == StatusCode::kSendDataSuccess;
                          done = bed.simulator().now();
                        });
  bed.simulator().run_for(Duration::seconds(3));
  EXPECT_TRUE(ok);
  EXPECT_EQ(got.size(), 100'000u);
  EXPECT_LT((done - t0).as_millis(), 100.0);  // no ritual
}

TEST_F(NanOmniTest, SmallDataCanRideFollowups) {
  auto& da = bed.add_device("a", {0, 0});
  auto& db = bed.add_device("b", {60, 0});
  OmniNodeOptions options = nan_options();
  options.wifi_unicast = false;  // NAN only
  OmniNode a(da, bed.mesh(), options);
  OmniNode b(db, bed.mesh(), options);
  Bytes got;
  b.manager().request_data(
      [&](const OmniAddress&, const Bytes& d) { got = d; });
  a.start();
  b.start();
  bed.simulator().run_for(Duration::seconds(3));
  bool ok = false;
  a.manager().send_data({b.address()}, Bytes{0x42, 0x43},
                        [&](StatusCode code, const ResponseInfo&) {
                          ok = code == StatusCode::kSendDataSuccess;
                        });
  bed.simulator().run_for(Duration::seconds(3));
  EXPECT_TRUE(ok);
  EXPECT_EQ(got, (Bytes{0x42, 0x43}));
}

TEST_F(NanOmniTest, RichContextFitsNan) {
  // 200-byte context: too big for legacy BLE, fine for a NAN SDF.
  auto& da = bed.add_device("a", {0, 0});
  auto& db = bed.add_device("b", {60, 0});
  OmniNode a(da, bed.mesh(), nan_options());
  OmniNode b(db, bed.mesh(), nan_options());
  Bytes got;
  b.manager().request_context(
      [&](const OmniAddress&, const Bytes& c) { got = c; });
  a.start();
  b.start();
  bool ok = false;
  a.manager().add_context(ContextParams{}, Bytes(200, 0x77),
                          [&](StatusCode code, const ResponseInfo&) {
                            ok = code == StatusCode::kAddContextSuccess;
                          });
  bed.simulator().run_for(Duration::seconds(3));
  EXPECT_TRUE(ok);
  EXPECT_EQ(got.size(), 200u);
}

TEST_F(NanOmniTest, BleStaysPrimaryWhenPresent) {
  auto& d = bed.add_device("a", {0, 0});
  OmniNodeOptions options = nan_options();
  options.ble = true;
  OmniNode node(d, bed.mesh(), options);
  node.start();
  bed.simulator().run_for(Duration::seconds(1));
  EXPECT_TRUE(node.manager().technology_engaged(Technology::kBle));
  EXPECT_FALSE(node.manager().technology_engaged(Technology::kWifiAware));
}

}  // namespace
}  // namespace omni
