#include <gtest/gtest.h>

#include "common/byte_buffer.h"

namespace omni {
namespace {

TEST(ByteBufferTest, IntegerRoundTrip) {
  ByteWriter w;
  w.u8(0xAB);
  w.u16(0x1234);
  w.u32(0xDEADBEEF);
  w.u64(0x0123456789ABCDEFull);
  Bytes wire = std::move(w).take();
  EXPECT_EQ(wire.size(), 1u + 2 + 4 + 8);

  ByteReader r(wire);
  EXPECT_EQ(r.u8().value(), 0xAB);
  EXPECT_EQ(r.u16().value(), 0x1234);
  EXPECT_EQ(r.u32().value(), 0xDEADBEEFu);
  EXPECT_EQ(r.u64().value(), 0x0123456789ABCDEFull);
  EXPECT_TRUE(r.exhausted());
}

TEST(ByteBufferTest, BigEndianOnWire) {
  ByteWriter w;
  w.u32(0x01020304);
  const Bytes& wire = w.bytes();
  EXPECT_EQ(wire[0], 0x01);
  EXPECT_EQ(wire[3], 0x04);
}

TEST(ByteBufferTest, BlobAndStringRoundTrip) {
  ByteWriter w;
  w.blob(Bytes{1, 2, 3});
  w.str("omni");
  Bytes wire = std::move(w).take();

  ByteReader r(wire);
  EXPECT_EQ(r.blob().value(), (Bytes{1, 2, 3}));
  EXPECT_EQ(r.str().value(), "omni");
}

TEST(ByteBufferTest, EmptyBlob) {
  ByteWriter w;
  w.blob({});
  ByteReader r(w.bytes());
  EXPECT_TRUE(r.blob().value().empty());
  EXPECT_TRUE(r.exhausted());
}

TEST(ByteBufferTest, TruncationIsAnErrorNotUb) {
  Bytes wire{0x01, 0x02};
  ByteReader r(wire);
  EXPECT_TRUE(r.u16().is_ok());
  EXPECT_FALSE(r.u16().is_ok());
  EXPECT_FALSE(r.u32().is_ok());
  EXPECT_FALSE(r.u64().is_ok());
  EXPECT_FALSE(r.raw(1).is_ok());
}

TEST(ByteBufferTest, BlobWithLyingLengthPrefix) {
  ByteWriter w;
  w.u32(1000);  // claims 1000 bytes follow
  w.u8(7);      // ...but only one does
  ByteReader r(w.bytes());
  EXPECT_FALSE(r.blob().is_ok());
}

TEST(ByteBufferTest, RawReadsExactly) {
  ByteWriter w;
  w.raw(Bytes{9, 8, 7, 6});
  ByteReader r(w.bytes());
  EXPECT_EQ(r.raw(2).value(), (Bytes{9, 8}));
  EXPECT_EQ(r.remaining(), 2u);
  EXPECT_EQ(r.raw(2).value(), (Bytes{7, 6}));
}

TEST(ByteBufferTest, ReserveConstructorDoesNotAffectContent) {
  ByteWriter w(128);
  EXPECT_EQ(w.size(), 0u);
  w.u8(1);
  EXPECT_EQ(w.size(), 1u);
}

}  // namespace
}  // namespace omni
