#include <gtest/gtest.h>

#include "radio/energy_meter.h"

namespace omni::radio {
namespace {

TimePoint at_s(double s) {
  return TimePoint::origin() + Duration::seconds(s);
}

TEST(EnergyMeterTest, IntervalChargeIntegrates) {
  sim::Simulator sim;
  EnergyMeter meter(sim);
  meter.charge(at_s(1), at_s(3), 100.0);  // 200 mAs
  EXPECT_DOUBLE_EQ(meter.total_mAs(at_s(0), at_s(10)), 200.0);
  EXPECT_DOUBLE_EQ(meter.average_ma(at_s(0), at_s(10)), 20.0);
  // Query window clips the segment.
  EXPECT_DOUBLE_EQ(meter.total_mAs(at_s(2), at_s(10)), 100.0);
  EXPECT_DOUBLE_EQ(meter.total_mAs(at_s(4), at_s(10)), 0.0);
}

TEST(EnergyMeterTest, OverlappingChargesAccumulate) {
  sim::Simulator sim;
  EnergyMeter meter(sim);
  meter.charge(at_s(0), at_s(2), 50.0);
  meter.charge(at_s(1), at_s(3), 50.0);
  EXPECT_DOUBLE_EQ(meter.average_ma(at_s(1), at_s(2)), 100.0);
}

TEST(EnergyMeterTest, ZeroOrNegativeSpanChargesIgnored) {
  sim::Simulator sim;
  EnergyMeter meter(sim);
  meter.charge(at_s(2), at_s(2), 100.0);
  meter.charge(at_s(3), at_s(1), 100.0);
  EXPECT_DOUBLE_EQ(meter.total_mAs(at_s(0), at_s(10)), 0.0);
}

TEST(EnergyMeterTest, LevelsIntegrateUntilChanged) {
  sim::Simulator sim;
  EnergyMeter meter(sim);
  meter.set_level("wifi", 92.1);
  sim.run_for(Duration::seconds(10));
  meter.clear_level("wifi");
  sim.run_for(Duration::seconds(10));
  EXPECT_NEAR(meter.total_mAs(at_s(0), at_s(20)), 921.0, 1e-6);
  EXPECT_NEAR(meter.average_ma(at_s(0), at_s(20)), 46.05, 1e-6);
}

TEST(EnergyMeterTest, LevelReplacementClosesOldSegment) {
  sim::Simulator sim;
  EnergyMeter meter(sim);
  meter.set_level("ble", 7.0);
  sim.run_for(Duration::seconds(5));
  meter.set_level("ble", 1.0);
  sim.run_for(Duration::seconds(5));
  EXPECT_NEAR(meter.total_mAs(at_s(0), at_s(10)), 7 * 5 + 1 * 5, 1e-6);
  EXPECT_DOUBLE_EQ(meter.level("ble"), 1.0);
}

TEST(EnergyMeterTest, OpenLevelIntegratedToQueryEnd) {
  sim::Simulator sim;
  EnergyMeter meter(sim);
  meter.set_level("x", 10.0);
  sim.run_for(Duration::seconds(4));
  EXPECT_NEAR(meter.total_mAs(at_s(0), at_s(4)), 40.0, 1e-6);
}

TEST(EnergyMeterTest, LevelTotalsSumAcrossTags) {
  sim::Simulator sim;
  EnergyMeter meter(sim);
  meter.set_level("a", 5.0);
  meter.set_level("b", 7.5);
  EXPECT_DOUBLE_EQ(meter.current_level_total(), 12.5);
  meter.clear_level("a");
  EXPECT_DOUBLE_EQ(meter.current_level_total(), 7.5);
}

TEST(BusyChargerTest, ChargesRequestedActiveTime) {
  sim::Simulator sim;
  EnergyMeter meter(sim);
  BusyCharger charger(meter, 100.0);
  double charged = charger.charge_active(at_s(0), at_s(10), 2.0);
  EXPECT_DOUBLE_EQ(charged, 2.0);
  EXPECT_DOUBLE_EQ(meter.total_mAs(at_s(0), at_s(10)), 200.0);
}

TEST(BusyChargerTest, CapsAtWallTime) {
  sim::Simulator sim;
  EnergyMeter meter(sim);
  BusyCharger charger(meter, 100.0);
  // Asking for 50 active seconds inside a 10 s window charges only 10.
  double charged = charger.charge_active(at_s(0), at_s(10), 50.0);
  EXPECT_DOUBLE_EQ(charged, 10.0);
  EXPECT_DOUBLE_EQ(meter.total_mAs(at_s(0), at_s(10)), 1000.0);
}

TEST(BusyChargerTest, ConcurrentFlowsNeverDoubleCharge) {
  sim::Simulator sim;
  EnergyMeter meter(sim);
  BusyCharger charger(meter, 100.0);
  // Two "flows" each claim 8 active seconds over the same 10 s window: the
  // watermark lets the second one charge only the 2 s remainder.
  EXPECT_DOUBLE_EQ(charger.charge_active(at_s(0), at_s(10), 8.0), 8.0);
  EXPECT_DOUBLE_EQ(charger.charge_active(at_s(0), at_s(10), 8.0), 2.0);
  EXPECT_DOUBLE_EQ(meter.total_mAs(at_s(0), at_s(10)), 1000.0);
}

TEST(BusyChargerTest, DisjointWindowsAreIndependent) {
  sim::Simulator sim;
  EnergyMeter meter(sim);
  BusyCharger charger(meter, 10.0);
  charger.charge_active(at_s(0), at_s(1), 1.0);
  charger.charge_active(at_s(5), at_s(6), 1.0);
  EXPECT_DOUBLE_EQ(meter.total_mAs(at_s(0), at_s(10)), 20.0);
}

}  // namespace
}  // namespace omni::radio
